//! The scenario-level adversarial battery for the chained-integrity
//! family: random generated routes × random attack placements (the
//! `chained` / `encapsulated` presets), driven end to end through the
//! mechanism API.
//!
//! Pinned in *both* directions (the acceptance criterion):
//!
//! * every truncation / substitution / reorder the generator places is
//!   detected — by `chained` without attribution, by `encapsulated`
//!   with the attacker named,
//! * every pure computation lie evades the family (and is caught by the
//!   re-execution `framework` on the same scenario), and every
//!   colluding-predecessor forgery evades it too.
//!
//! Case counts scale with `PROPTEST_CASES` (CI runs a boosted job).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use refstate_core::protocol::host_directory;
use refstate_crypto::DsaParams;
use refstate_fleet::{generate, GeneratedScenario, JourneyVerdict, MechanismConfig, Preset};
use refstate_mechanisms::api::{JourneyCtx, ProtectionMechanism};
use refstate_mechanisms::chained::{ChainedMac, EncapsulatedResults};
use refstate_mechanisms::fleet::FrameworkReExecution;
use refstate_platform::{EventLog, Host};

/// Instantiates a generated scenario's hosts and runs one mechanism over
/// it (fresh hosts per run — feeds are consumed by execution).
fn run_mechanism(
    scenario: &GeneratedScenario,
    mechanism: &dyn ProtectionMechanism,
    seed: u64,
) -> JourneyVerdict {
    let params = DsaParams::test_group_256();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xfeed_f00d);
    let mut hosts: Vec<Host> = Host::build_all(scenario.specs.clone(), &params, &mut rng);
    let directory = host_directory(&hosts);
    let config = MechanismConfig::default();
    let log = EventLog::new();
    let mut ctx = JourneyCtx::new(
        &mut hosts,
        scenario.route.clone(),
        scenario.agent.clone(),
        &directory,
        &config,
        &log,
        seed,
    );
    mechanism.run(&mut ctx)
}

proptest! {
    #![proptest_config(ProptestConfig::default())]

    /// `chained` over random `chained`-preset scenarios: chain
    /// manipulation detected (unattributed), computation lies and
    /// collusion missed — with the re-execution cross-check on the same
    /// scenario asserting the contrast is structural, not accidental.
    #[test]
    fn chained_mac_bandwidth_over_random_scenarios(seed in any::<u64>(), id in 0u64..4096) {
        let scenario = generate(seed, id, Preset::Chained);
        let verdict = run_mechanism(&scenario, &ChainedMac, seed ^ id);
        match &scenario.attacker {
            None => {
                prop_assert!(!verdict.detected, "false positive on an honest route");
                prop_assert!(verdict.completed);
            }
            Some((_, attack)) if attack.detectable_by_chained_integrity() => {
                prop_assert!(
                    verdict.detected,
                    "chained missed {:?} on route of {}",
                    attack,
                    scenario.route_len()
                );
                prop_assert!(
                    verdict.accused.is_empty(),
                    "chained MACs cannot attribute, yet accused {:?}",
                    verdict.accused
                );
                prop_assert!(verdict.completed, "owner-side detection is after-task");
            }
            Some((_, attack)) => {
                // Computation lies and colluding-predecessor forgeries:
                // the family's pinned blind spots.
                prop_assert!(
                    !verdict.detected,
                    "chained impossibly detected {:?}",
                    attack
                );
                if attack.detectable_by_reference_state() && !verdict.infra_error {
                    let reexec = run_mechanism(&scenario, &FrameworkReExecution, seed ^ id);
                    prop_assert!(
                        reexec.detected,
                        "re-execution must catch the same {:?}",
                        attack
                    );
                }
            }
        }
    }

    /// `encapsulated` over random `encapsulated`-preset scenarios: chain
    /// manipulation is detected *and* attributed to exactly the
    /// attacker, wherever the generator placed it (including the final
    /// hop, where only the owner's batched check can fire).
    #[test]
    fn encapsulated_attributes_random_chain_attacks(seed in any::<u64>(), id in 0u64..4096) {
        let scenario = generate(seed, id, Preset::Encapsulated);
        let verdict = run_mechanism(&scenario, &EncapsulatedResults, seed ^ id);
        match &scenario.attacker {
            None => {
                prop_assert!(!verdict.detected, "false positive on an honest route");
            }
            Some((attacker, attack)) if attack.detectable_by_chained_integrity() => {
                prop_assert!(
                    verdict.detected,
                    "encapsulated missed {:?} at {}",
                    attack,
                    attacker
                );
                prop_assert_eq!(
                    &verdict.accused,
                    &vec![attacker.clone()],
                    "wrong culprit for {:?}",
                    attack
                );
            }
            Some((_, attack)) => {
                prop_assert!(
                    !verdict.detected,
                    "encapsulated impossibly detected {:?}",
                    attack
                );
            }
        }
    }
}
