//! The telemetry determinism contract, enforced: recording is strictly
//! observational, so the deterministic `FleetReport` must be
//! **byte-for-byte identical** at every telemetry level (`off`,
//! `counters`, `full`) and at every worker count.
//!
//! Two layers of guarantee:
//!
//! * a property test runs small random fleets at all three levels in the
//!   same process and compares the rendered report JSON bytes, and
//! * the seed-42 golden fixtures (see `golden_report.rs`) are re-checked
//!   at `counters` and `full`, extending the cross-PR byte-identity
//!   guarantee from "telemetry off" to "telemetry at any level".
//!
//! The telemetry level is process-global, so these tests may race each
//! other's `set_level` calls when the harness runs them on parallel
//! threads — which is exactly the point: the report bytes must not
//! depend on the level, not even on a level that flips mid-run.

use proptest::prelude::*;
use refstate_fleet::{run_fleet, FleetConfig, Preset};
use refstate_telemetry as telemetry;

fn small_config(scenarios: u64, preset: Preset, workers: usize) -> FleetConfig {
    FleetConfig {
        scenarios,
        workers,
        seed: 42,
        preset,
        key_pool: 4,
        ..FleetConfig::default()
    }
}

fn report_json_at(config: &FleetConfig, level: telemetry::TelemetryLevel) -> String {
    telemetry::set_level(level);
    let json = run_fleet(config).report.to_json();
    telemetry::set_level(telemetry::TelemetryLevel::Off);
    // Keep the process-wide trace sink from accumulating across cases.
    let _ = telemetry::drain_trace();
    json
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]
    #[test]
    fn report_bytes_identical_across_telemetry_levels(
        scenarios in 4u64..=12,
        preset_chained in proptest::arbitrary::any::<bool>(),
        workers in 0usize..=4,
    ) {
        let preset = if preset_chained { Preset::Chained } else { Preset::Mixed };
        let config = small_config(scenarios, preset, workers);
        let off = report_json_at(&config, telemetry::TelemetryLevel::Off);
        let counters = report_json_at(&config, telemetry::TelemetryLevel::Counters);
        let full = report_json_at(&config, telemetry::TelemetryLevel::Full);
        prop_assert_eq!(&off, &counters);
        prop_assert_eq!(&off, &full);
    }
}

/// The golden-fixture configuration from `golden_report.rs`, re-run at a
/// non-default telemetry level and worker count.
fn check_golden_at(
    preset: Preset,
    fixture: &str,
    level: telemetry::TelemetryLevel,
    workers: usize,
) {
    let path = format!("{}/tests/fixtures/{fixture}", env!("CARGO_MANIFEST_DIR"));
    let committed = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {path}: {e} (run golden_report first)"));
    let config = FleetConfig {
        scenarios: 120,
        workers,
        seed: 42,
        preset,
        key_pool: 16,
        ..FleetConfig::default()
    };
    let json = report_json_at(&config, level);
    assert_eq!(
        json,
        committed.trim_end(),
        "the seed-42 {} report changed under --telemetry {} with {workers} \
         workers; telemetry must be strictly observational",
        preset.name(),
        level.name()
    );
}

#[test]
fn seed42_mixed_golden_report_is_level_invariant() {
    check_golden_at(
        Preset::Mixed,
        "seed42_mixed_report.json",
        telemetry::TelemetryLevel::Counters,
        4,
    );
    check_golden_at(
        Preset::Mixed,
        "seed42_mixed_report.json",
        telemetry::TelemetryLevel::Full,
        4,
    );
}

#[test]
fn seed42_mixed_golden_report_is_worker_invariant_at_full() {
    check_golden_at(
        Preset::Mixed,
        "seed42_mixed_report.json",
        telemetry::TelemetryLevel::Full,
        1,
    );
}

#[test]
fn seed42_chained_golden_report_is_level_invariant() {
    check_golden_at(
        Preset::Chained,
        "seed42_chained_report.json",
        telemetry::TelemetryLevel::Full,
        4,
    );
}
