//! Golden-report regression guard: the seed-42 fleet reports are
//! committed as fixtures and compared **byte for byte**, so a future
//! perf PR (cache policy, parallelism, arithmetic) cannot silently shift
//! a detection or attribution score. This extends the cached-vs-uncached
//! and worker-invariance guarantees (same-process) to a *cross-PR*
//! guarantee: the fixture bytes only change when a PR deliberately
//! regenerates them (`REGEN_GOLDEN=1 cargo test -p refstate-fleet --test
//! golden_report`) and the diff shows up in review.

use refstate_fleet::{run_fleet, FleetConfig, Preset};

fn golden_config(preset: Preset) -> FleetConfig {
    FleetConfig {
        scenarios: 120,
        workers: 4,
        seed: 42,
        preset,
        key_pool: 16,
        ..FleetConfig::default() // every builtin mechanism, cache on
    }
}

fn check_golden(preset: Preset, fixture: &str) {
    let path = format!("{}/tests/fixtures/{fixture}", env!("CARGO_MANIFEST_DIR"));
    let json = run_fleet(&golden_config(preset)).report.to_json();
    if std::env::var("REGEN_GOLDEN").is_ok() {
        std::fs::write(&path, format!("{json}\n")).expect("write fixture");
        return;
    }
    let committed = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {path}: {e} (REGEN_GOLDEN=1 to create)"));
    assert_eq!(
        json,
        committed.trim_end(),
        "the seed-42 {} report drifted from the committed fixture; if the \
         change is intentional, regenerate with REGEN_GOLDEN=1 and commit \
         the diff",
        preset.name()
    );
}

#[test]
fn seed42_mixed_fleet_report_matches_committed_fixture() {
    check_golden(Preset::Mixed, "seed42_mixed_report.json");
}

#[test]
fn seed42_chained_fleet_report_matches_committed_fixture() {
    // The same guarantee for the new mechanism family: chained-integrity
    // detection/attribution scores are pinned across PRs too.
    check_golden(Preset::Chained, "seed42_chained_report.json");
}

#[test]
fn seed42_cooperating_fleet_report_matches_committed_fixture() {
    // The disjoint-set preset: witness hosts make `cooperating` runnable,
    // and its cross-set collusion blind spot is pinned as a rate.
    check_golden(Preset::Cooperating, "seed42_cooperating_report.json");
}

#[test]
fn seed42_adaptive_fleet_report_matches_committed_fixture() {
    // The adaptive campaigns: pins the whole AdaptationReport (detection
    // latency, detection-under-adaptation, false accusations) byte for
    // byte across PRs.
    check_golden(Preset::Adaptive, "seed42_adaptive_report.json");
}
