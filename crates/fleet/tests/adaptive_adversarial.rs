//! The detection-under-adaptation battery: adaptive campaigns (the
//! `adaptive` preset) driven end to end, graded on the three properties
//! the campaign engine must uphold:
//!
//! * **no early detection** — a probe-then-cheat attacker is never
//!   flagged before its first real attack: the probe phase is provably
//!   outside every mechanism's bandwidth,
//! * **scheduling-free detection steps** — a campaign is detected at the
//!   same step whether the fleet ran on 1, 2, or 8 workers (the
//!   byte-determinism contract extended to the adaptation grades),
//! * **precision under churn** — every accusation names an actual
//!   attacker: host churn, stale-state replay, and infrastructure
//!   failures never produce a false accusation.
//!
//! Case counts scale with `PROPTEST_CASES` (CI runs a boosted job).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use refstate_core::protocol::host_directory;
use refstate_crypto::DsaParams;
use refstate_fleet::{
    generate, run_fleet, FleetConfig, GeneratedScenario, JourneyVerdict, MechanismConfig,
    MechanismRegistry, Preset, JOURNEYS_PER_CAMPAIGN,
};
use refstate_mechanisms::api::{JourneyCtx, ProtectionMechanism};
use refstate_platform::{EventLog, Host};

/// The checking mechanisms the battery drives per campaign step (the
/// ones that detect and attribute — `unprotected` and the chain-only
/// family grade differently and are covered by the fleet-level tests).
const CHECKERS: [&str; 4] = ["framework", "protocol", "traces", "cooperating"];

/// Instantiates a generated scenario's hosts and runs one mechanism over
/// it (fresh hosts per run — feeds are consumed by execution).
fn run_mechanism(
    scenario: &GeneratedScenario,
    mechanism: &dyn ProtectionMechanism,
    seed: u64,
) -> JourneyVerdict {
    let params = DsaParams::test_group_256();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xfeed_f00d);
    let mut hosts: Vec<Host> = Host::build_all(scenario.specs.clone(), &params, &mut rng);
    let directory = host_directory(&hosts);
    let config = MechanismConfig::default();
    let log = EventLog::new();
    let mut ctx = JourneyCtx::new(
        &mut hosts,
        scenario.route.clone(),
        scenario.agent.clone(),
        &directory,
        &config,
        &log,
        seed,
    );
    mechanism.run(&mut ctx)
}

/// Scans forward from `start` to the first campaign following `policy`
/// (each policy is drawn with probability 1/3, so the scan terminates
/// in a handful of steps).
fn find_campaign(seed: u64, start: u64, policy: &str) -> u64 {
    (start..start + 64)
        .find(|&campaign| {
            let scenario = generate(seed, campaign * JOURNEYS_PER_CAMPAIGN, Preset::Adaptive);
            scenario.campaign.expect("adaptive meta").policy == policy
        })
        .expect("every policy is drawn within 64 campaigns")
}

/// All journeys of one campaign, in step order.
fn campaign_steps(seed: u64, campaign: u64) -> Vec<GeneratedScenario> {
    (0..JOURNEYS_PER_CAMPAIGN)
        .map(|step| {
            generate(
                seed,
                campaign * JOURNEYS_PER_CAMPAIGN + step,
                Preset::Adaptive,
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A probe-then-cheat attacker is never detected before its first
    /// real attack: every probe-phase journey runs clean under every
    /// checking mechanism.
    #[test]
    fn probes_are_never_detected_before_the_first_attack(
        seed in any::<u64>(), start in 0u64..4096,
    ) {
        let registry = MechanismRegistry::builtin();
        let campaign = find_campaign(seed, start, "probe-then-cheat");
        let steps = campaign_steps(seed, campaign);
        let first_attack = steps[0]
            .campaign
            .as_ref()
            .and_then(|meta| meta.first_attack_step)
            .expect("probe campaigns cheat eventually");
        for scenario in &steps[..first_attack as usize] {
            let meta = scenario.campaign.as_ref().expect("adaptive meta");
            prop_assert!(!meta.real_attack, "the probe phase mounts no real attack");
            for name in CHECKERS {
                let mechanism = registry.get(name).expect("built in");
                let verdict = run_mechanism(scenario, mechanism.as_ref(), seed ^ scenario.id);
                prop_assert!(
                    !verdict.detected,
                    "{} flagged a probe at step {} (first attack at {})",
                    name, meta.step, first_attack
                );
                prop_assert!(verdict.accused.is_empty());
            }
        }
    }

    /// Precision under environmental stress: churned journeys die as
    /// infrastructure failures (no accusation), and every accusation any
    /// checker produces across the campaign names the actual attacker.
    #[test]
    fn stress_campaigns_never_produce_false_accusations(
        seed in any::<u64>(), start in 0u64..4096,
    ) {
        let registry = MechanismRegistry::builtin();
        let campaign = find_campaign(seed, start, "environmental-stress");
        for scenario in campaign_steps(seed, campaign) {
            for name in CHECKERS {
                let mechanism = registry.get(name).expect("built in");
                let verdict = run_mechanism(&scenario, mechanism.as_ref(), seed ^ scenario.id);
                if scenario.churned.is_some() {
                    prop_assert!(
                        !verdict.detected && verdict.accused.is_empty(),
                        "{} accused {:?} on a churned journey",
                        name, verdict.accused
                    );
                    prop_assert!(verdict.infra_error, "churn is an infrastructure failure");
                    continue;
                }
                let attacker = scenario.attacker.as_ref().map(|(host, _)| host);
                for accused in &verdict.accused {
                    prop_assert_eq!(
                        Some(accused), attacker,
                        "{} accused {} who attacked nobody", name, accused
                    );
                }
            }
        }
    }

    /// The coordinate policy's two collusion flavours split exactly along
    /// the mechanisms' pinned blind spots: route collusion evades the
    /// session protocol but not the witness set; cross-set collusion
    /// evades the witness set but not the session protocol. Either way
    /// the re-execution framework catches the tampering.
    #[test]
    fn coordinate_collusion_splits_along_the_blind_spots(
        seed in any::<u64>(), start in 0u64..4096,
    ) {
        let registry = MechanismRegistry::builtin();
        let campaign = find_campaign(seed, start, "coordinate");
        let steps = campaign_steps(seed, campaign);
        // Grade the first attacking step (the accomplice is fixed for
        // the whole campaign, so one step carries the contrast).
        let scenario = steps
            .iter()
            .find(|s| s.campaign.as_ref().is_some_and(|m| m.real_attack))
            .expect("coordinate campaigns attack");
        let cross_set = match &scenario.attacker {
            Some((_, refstate_platform::Attack::CollaborateTamper { accomplice, .. })) => {
                accomplice.as_str().starts_with('v')
            }
            other => return Err(TestCaseError::Fail(format!("unexpected attacker {other:?}"))),
        };
        let verdict = |name: &str| {
            let mechanism = registry.get(name).expect("built in");
            run_mechanism(scenario, mechanism.as_ref(), seed ^ scenario.id)
        };
        prop_assert!(verdict("framework").detected, "re-execution always catches tampering");
        let protocol = verdict("protocol");
        let cooperating = verdict("cooperating");
        if cross_set {
            prop_assert!(protocol.detected, "a witness accomplice is not the route successor");
            prop_assert!(!cooperating.detected, "the recruited witness vouches (pinned blind spot)");
        } else {
            prop_assert!(!protocol.detected, "the successor skips its check (§5.1)");
            prop_assert!(cooperating.detected, "route collusion cannot reach the witness set");
        }
    }
}

/// The determinism contract extended to campaigns: the fleet report —
/// including every adaptation grade — and the per-scenario detection
/// pattern are identical across worker counts {1, 2, 8}, so a campaign
/// is detected at the same step no matter how the fleet was scheduled.
#[test]
fn campaigns_detect_at_the_same_step_across_worker_counts() {
    let run_with = |workers: usize| {
        run_fleet(&FleetConfig {
            scenarios: 64,
            workers,
            seed: 42,
            preset: Preset::Adaptive,
            key_pool: 8,
            ..FleetConfig::default()
        })
    };
    let serial = run_with(1);
    let two = run_with(2);
    let eight = run_with(8);
    assert_eq!(serial.report.to_json(), two.report.to_json());
    assert_eq!(serial.report.to_json(), eight.report.to_json());
    let detection_pattern = |run: &refstate_fleet::FleetRun| -> Vec<(u64, Vec<(&str, bool)>)> {
        run.results
            .iter()
            .map(|r| {
                (
                    r.id,
                    r.runs.iter().map(|m| (m.mechanism, m.detected)).collect(),
                )
            })
            .collect()
    };
    assert_eq!(detection_pattern(&serial), detection_pattern(&two));
    assert_eq!(detection_pattern(&serial), detection_pattern(&eight));
    // The grades are present and meaningful: campaigns were attacked and
    // detection latency is a measured number, not an n/a.
    let adaptation = serial.report.adaptation.as_ref().expect("adaptive fleet");
    assert_eq!(adaptation.journeys_per_campaign, JOURNEYS_PER_CAMPAIGN);
    assert_eq!(adaptation.campaigns, 8);
    let framework = adaptation
        .mechanisms
        .iter()
        .find(|m| m.name == "framework")
        .expect("framework graded");
    assert!(framework.total.attacked > 0);
    assert!(framework.total.detected > 0);
}
