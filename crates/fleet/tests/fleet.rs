//! Integration tests for the fleet engine: the determinism contract, the
//! false-accusation canary, detection/attribution guarantees, and the
//! registry-driven dispatch (including the replicated-stage preset that
//! makes `replication` fleet-drivable).

use std::sync::Arc;

use refstate_fleet::{run_fleet, FleetConfig, MechanismRegistry, Preset, ProtectionMechanism};

fn mechanisms(names: &[&str]) -> Vec<Arc<dyn ProtectionMechanism>> {
    let registry = MechanismRegistry::builtin();
    names
        .iter()
        .map(|name| registry.get(name).expect("known mechanism"))
        .collect()
}

fn config(
    preset: Preset,
    mechanisms: Vec<Arc<dyn ProtectionMechanism>>,
    workers: usize,
) -> FleetConfig {
    FleetConfig {
        scenarios: 120,
        workers,
        seed: 42,
        preset,
        mechanisms,
        key_pool: 16,
        ..FleetConfig::default()
    }
}

fn all_builtin() -> Vec<Arc<dyn ProtectionMechanism>> {
    MechanismRegistry::builtin().all()
}

#[test]
fn same_seed_produces_byte_identical_report() {
    let a = run_fleet(&config(Preset::Mixed, all_builtin(), 4));
    let b = run_fleet(&config(Preset::Mixed, all_builtin(), 4));
    assert_eq!(a.report, b.report);
    assert_eq!(a.report.to_json(), b.report.to_json());
}

#[test]
fn report_is_invariant_under_worker_count() {
    // Scheduling must not leak into the deterministic surface: one worker
    // and seven workers see the same fleet.
    let serial = run_fleet(&config(Preset::Mixed, all_builtin(), 1));
    let parallel = run_fleet(&config(Preset::Mixed, all_builtin(), 7));
    assert_eq!(serial.report.to_json(), parallel.report.to_json());
}

#[test]
fn replicated_preset_is_invariant_under_worker_count() {
    // The replicated-stage family goes through a different topology and
    // mechanism set; its determinism contract is the same.
    let serial = run_fleet(&config(Preset::Replicated, all_builtin(), 1));
    let parallel = run_fleet(&config(Preset::Replicated, all_builtin(), 7));
    assert_eq!(serial.report.to_json(), parallel.report.to_json());
    let again = run_fleet(&config(Preset::Replicated, all_builtin(), 4));
    assert_eq!(serial.report.to_json(), again.report.to_json());
}

#[test]
fn replay_cache_does_not_change_the_report() {
    // The determinism guard for the replay cache: cached and uncached
    // runs must produce byte-identical FleetReport JSON — the cache is a
    // memo, never a semantic.
    let run_with = |cache: bool| {
        let mut c = config(Preset::Mixed, all_builtin(), 4);
        c.scenarios = 60;
        c.replay_cache = cache;
        run_fleet(&c)
    };
    let cached = run_with(true);
    let uncached = run_with(false);
    assert_eq!(cached.report.to_json(), uncached.report.to_json());
    assert!(cached.timing.replay_cache);
    assert!(!uncached.timing.replay_cache);
    assert!(
        cached.timing.replay.hits > 0,
        "mechanisms re-checking the same sessions must hit the cache"
    );
    assert_eq!(uncached.timing.replay.hits, 0);
    assert!(
        cached.timing.replay.replays < uncached.timing.replay.replays,
        "the cache must eliminate replays: {} vs {}",
        cached.timing.replay.replays,
        uncached.timing.replay.replays
    );
}

#[test]
fn cached_fleet_replays_fewer_than_journeys_times_hops() {
    // Single-threaded proof of the dedup (acceptance criterion): across a
    // mixed-preset fleet, the number of actual VM replays stays strictly
    // below journeys × hops — the bound an uncached per-check replay
    // discipline converges to.
    let mut c = config(Preset::Mixed, all_builtin(), 1);
    c.replay_cache = true;
    let run = run_fleet(&c);
    let journeys_times_hops: u64 = run
        .results
        .iter()
        .map(|r| (r.runs.len() * r.route_len) as u64)
        .sum();
    let stats = run.timing.replay;
    assert!(stats.hits > 0, "shared sessions must be answered by cache");
    assert!(
        stats.replays < journeys_times_hops,
        "replays ({}) must stay strictly below journeys × hops ({})",
        stats.replays,
        journeys_times_hops
    );
}

#[test]
fn check_worker_knob_does_not_change_the_report() {
    let run_with = |check_workers: usize| {
        let mut c = config(Preset::Mixed, all_builtin(), 2);
        c.scenarios = 40;
        c.adapter.check_workers = check_workers;
        run_fleet(&c)
    };
    let serial = run_with(1);
    let parallel = run_with(4);
    assert_eq!(serial.report.to_json(), parallel.report.to_json());
    assert_eq!(parallel.timing.check_workers, 4);
}

#[test]
fn different_seed_produces_different_fleet() {
    let a = run_fleet(&config(Preset::Mixed, mechanisms(&["unprotected"]), 4));
    let mut other = config(Preset::Mixed, mechanisms(&["unprotected"]), 4);
    other.seed = 43;
    let b = run_fleet(&other);
    assert_ne!(a.report.to_json(), b.report.to_json());
}

#[test]
fn all_honest_preset_has_zero_accusations() {
    let registry = MechanismRegistry::builtin();
    let run = run_fleet(&config(Preset::AllHonest, all_builtin(), 4));
    for mechanism in &run.report.mechanisms {
        let profile = registry.get(mechanism.name).expect("configured").profile();
        if !profile.compatible_with(false, false) {
            // Topology-incompatible with a spare-less linear preset
            // (replicated stages, disjoint sets): reported as n/a, not
            // as 120 clean journeys.
            assert!(mechanism.not_run());
            continue;
        }
        assert_eq!(
            mechanism.total.detected, 0,
            "{} flagged an honest fleet",
            mechanism.name
        );
        assert_eq!(
            mechanism.total.false_accusations, 0,
            "{} accused an honest host",
            mechanism.name
        );
        assert_eq!(mechanism.total.journeys, 120);
        assert_eq!(mechanism.total.completed, 120);
        assert_eq!(mechanism.total.infra_errors, 0);
    }
}

#[test]
fn single_tamperer_is_always_caught_and_attributed() {
    // The strong checking mechanisms must catch every detectable
    // single-tamperer attack and blame exactly the attacker.
    let run = run_fleet(&config(
        Preset::SingleTamperer,
        mechanisms(&["framework", "protocol"]),
        4,
    ));
    for mechanism in &run.report.mechanisms {
        assert_eq!(mechanism.total.journeys, 120);
        assert_eq!(
            mechanism.total.detected, 120,
            "{} missed a single-tamperer attack",
            mechanism.name
        );
        assert!(
            (mechanism.total.detection_rate() - 1.0).abs() < f64::EPSILON,
            "{} detection rate below 1.0",
            mechanism.name
        );
        assert_eq!(
            mechanism.total.correct_culprit, 120,
            "{} blamed the wrong host",
            mechanism.name
        );
        assert_eq!(mechanism.total.false_accusations, 0);
    }
}

#[test]
fn unprotected_baseline_detects_nothing() {
    let run = run_fleet(&config(
        Preset::SingleTamperer,
        mechanisms(&["unprotected"]),
        4,
    ));
    assert_eq!(run.report.mechanisms[0].total.detected, 0);
}

#[test]
fn input_forgery_stays_outside_the_bandwidth() {
    // The paper's §4.2 claim at fleet scale: no linear reference-state
    // mechanism flags input forgery/suppression or read attacks.
    let run = run_fleet(&config(
        Preset::InputForgeryHeavy,
        mechanisms(&["framework", "protocol", "traces"]),
        4,
    ));
    for mechanism in &run.report.mechanisms {
        assert_eq!(
            mechanism.total.detected, 0,
            "{} impossibly detected an input-level attack",
            mechanism.name
        );
    }
}

#[test]
fn collusion_beats_the_protocol_but_not_the_framework() {
    // §5.1's stated limitation, reproduced across a whole population:
    // consecutive-host collusion blinds the session-checking protocol;
    // the generic framework driver (no collusion modelling) still checks.
    let run = run_fleet(&config(
        Preset::ColludingPair,
        mechanisms(&["protocol", "framework"]),
        4,
    ));
    let protocol = &run.report.mechanisms[0];
    let framework = &run.report.mechanisms[1];
    assert_eq!(
        protocol.total.detected, 0,
        "the accomplice skips the check (§5.1)"
    );
    assert_eq!(framework.total.detected, 120);
}

#[test]
fn replicated_preset_scores_replication_alongside_the_others() {
    // The ROADMAP gap this preset closes: ServerReplication appears in
    // fleet reports with detection/attribution rates like every other
    // mechanism.
    let run = run_fleet(&config(Preset::Replicated, all_builtin(), 4));
    let replication = run
        .report
        .mechanisms
        .iter()
        .find(|m| m.name == "replication")
        .expect("replication configured");
    assert!(!replication.not_run());
    assert_eq!(replication.total.journeys, 120);
    assert!(
        replication.total.detected > 0,
        "replication detects attacks"
    );
    assert_eq!(
        replication.total.false_accusations, 0,
        "single attackers are always outvoted, never honest replicas"
    );
    // Every detection blamed exactly the attacking replica.
    assert_eq!(
        replication.total.correct_culprit,
        replication.total.detected
    );
    // State/control-flow attack classes are caught at rate 1.0 — the
    // attacker is a minority of one in a three-replica stage.
    for label in ["tamper-variable", "delete-variable", "scale-int"] {
        if let Some(cell) = replication.per_attack.get(label) {
            assert_eq!(
                cell.detected, cell.journeys,
                "replication missed a {label} attack"
            );
        }
    }
    // Replicated resources catch even forged inputs (§3.2) — the classes
    // linear mechanisms are blind to.
    if let Some(cell) = replication.per_attack.get("forge-input") {
        assert_eq!(cell.detected, cell.journeys);
    }
    // The linear mechanisms ran the same fleet on the primary path and
    // saw only the attackers sitting on it: strictly fewer detections
    // than replication, never a false accusation.
    let protocol = run
        .report
        .mechanisms
        .iter()
        .find(|m| m.name == "protocol")
        .expect("protocol configured");
    assert_eq!(protocol.total.journeys, 120);
    assert!(protocol.total.detected < replication.total.detected);
    assert_eq!(protocol.total.false_accusations, 0);
}

#[test]
fn per_attack_breakdown_covers_generated_labels() {
    let run = run_fleet(&config(Preset::Mixed, mechanisms(&["protocol"]), 4));
    let per_attack = &run.report.mechanisms[0].per_attack;
    let total: u64 = per_attack.values().map(|c| c.journeys).sum();
    assert_eq!(
        total, 120,
        "every journey lands in exactly one attack class"
    );
    assert!(per_attack.contains_key("honest"));
    assert!(
        per_attack.len() >= 4,
        "mixed fleet spans attack classes, got {:?}",
        per_attack.keys().collect::<Vec<_>>()
    );
}

#[test]
fn linear_preset_reports_replication_as_na() {
    let run = run_fleet(&config(Preset::Mixed, all_builtin(), 4));
    let table = run.report.render_table();
    assert!(
        table.contains("replication") && table.contains("n/a"),
        "replication renders as n/a on a linear preset:\n{table}"
    );
    let json = run.report.to_json();
    assert!(json.contains("\"mechanism\":\"replication\",\"ran\":false"));
    assert!(json.contains("\"detection_rate\":null"));
}

#[test]
fn report_json_is_well_formed_enough_to_round_trip_counts() {
    let run = run_fleet(&config(Preset::Mixed, mechanisms(&["unprotected"]), 2));
    let json = run.report.to_json();
    assert!(json.starts_with('{') && json.ends_with('}'));
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches('[').count(), json.matches(']').count());
    assert!(json.contains("\"seed\":42"));
    assert!(json.contains("\"scenarios\":120"));
    assert!(json.contains("\"mechanism\":\"unprotected\""));
}
