//! Integration tests for the fleet engine: the determinism contract, the
//! false-accusation canary, and detection/attribution guarantees.

use refstate_fleet::{run_fleet, FleetConfig, FleetMechanism, Preset};

fn config(preset: Preset, mechanisms: Vec<FleetMechanism>, workers: usize) -> FleetConfig {
    FleetConfig {
        scenarios: 120,
        workers,
        seed: 42,
        preset,
        mechanisms,
        key_pool: 16,
        ..FleetConfig::default()
    }
}

#[test]
fn same_seed_produces_byte_identical_report() {
    let a = run_fleet(&config(Preset::Mixed, FleetMechanism::ALL.to_vec(), 4));
    let b = run_fleet(&config(Preset::Mixed, FleetMechanism::ALL.to_vec(), 4));
    assert_eq!(a.report, b.report);
    assert_eq!(a.report.to_json(), b.report.to_json());
}

#[test]
fn report_is_invariant_under_worker_count() {
    // Scheduling must not leak into the deterministic surface: one worker
    // and seven workers see the same fleet.
    let serial = run_fleet(&config(Preset::Mixed, FleetMechanism::ALL.to_vec(), 1));
    let parallel = run_fleet(&config(Preset::Mixed, FleetMechanism::ALL.to_vec(), 7));
    assert_eq!(serial.report.to_json(), parallel.report.to_json());
}

#[test]
fn different_seed_produces_different_fleet() {
    let a = run_fleet(&config(Preset::Mixed, vec![FleetMechanism::Unprotected], 4));
    let mut other = config(Preset::Mixed, vec![FleetMechanism::Unprotected], 4);
    other.seed = 43;
    let b = run_fleet(&other);
    assert_ne!(a.report.to_json(), b.report.to_json());
}

#[test]
fn all_honest_preset_has_zero_accusations() {
    let run = run_fleet(&config(Preset::AllHonest, FleetMechanism::ALL.to_vec(), 4));
    for mechanism in &run.report.mechanisms {
        assert_eq!(
            mechanism.total.detected, 0,
            "{} flagged an honest fleet",
            mechanism.mechanism
        );
        assert_eq!(
            mechanism.total.false_accusations, 0,
            "{} accused an honest host",
            mechanism.mechanism
        );
        assert_eq!(mechanism.total.journeys, 120);
        assert_eq!(mechanism.total.completed, 120);
        assert_eq!(mechanism.total.infra_errors, 0);
    }
}

#[test]
fn single_tamperer_is_always_caught_and_attributed() {
    // The strong checking mechanisms must catch every detectable
    // single-tamperer attack and blame exactly the attacker.
    let run = run_fleet(&config(
        Preset::SingleTamperer,
        vec![
            FleetMechanism::FrameworkReExecution,
            FleetMechanism::SessionCheckingProtocol,
        ],
        4,
    ));
    for mechanism in &run.report.mechanisms {
        assert_eq!(mechanism.total.journeys, 120);
        assert_eq!(
            mechanism.total.detected, 120,
            "{} missed a single-tamperer attack",
            mechanism.mechanism
        );
        assert!(
            (mechanism.total.detection_rate() - 1.0).abs() < f64::EPSILON,
            "{} detection rate below 1.0",
            mechanism.mechanism
        );
        assert_eq!(
            mechanism.total.correct_culprit, 120,
            "{} blamed the wrong host",
            mechanism.mechanism
        );
        assert_eq!(mechanism.total.false_accusations, 0);
    }
}

#[test]
fn unprotected_baseline_detects_nothing() {
    let run = run_fleet(&config(
        Preset::SingleTamperer,
        vec![FleetMechanism::Unprotected],
        4,
    ));
    assert_eq!(run.report.mechanisms[0].total.detected, 0);
}

#[test]
fn input_forgery_stays_outside_the_bandwidth() {
    // The paper's §4.2 claim at fleet scale: no reference-state mechanism
    // flags input forgery/suppression or read attacks.
    let run = run_fleet(&config(
        Preset::InputForgeryHeavy,
        vec![
            FleetMechanism::FrameworkReExecution,
            FleetMechanism::SessionCheckingProtocol,
            FleetMechanism::ExecutionTraces,
        ],
        4,
    ));
    for mechanism in &run.report.mechanisms {
        assert_eq!(
            mechanism.total.detected, 0,
            "{} impossibly detected an input-level attack",
            mechanism.mechanism
        );
    }
}

#[test]
fn collusion_beats_the_protocol_but_not_the_framework() {
    // §5.1's stated limitation, reproduced across a whole population:
    // consecutive-host collusion blinds the session-checking protocol;
    // the generic framework driver (no collusion modelling) still checks.
    let run = run_fleet(&config(
        Preset::ColludingPair,
        vec![
            FleetMechanism::SessionCheckingProtocol,
            FleetMechanism::FrameworkReExecution,
        ],
        4,
    ));
    let protocol = &run.report.mechanisms[0];
    let framework = &run.report.mechanisms[1];
    assert_eq!(
        protocol.total.detected, 0,
        "the accomplice skips the check (§5.1)"
    );
    assert_eq!(framework.total.detected, 120);
}

#[test]
fn per_attack_breakdown_covers_generated_labels() {
    let run = run_fleet(&config(
        Preset::Mixed,
        vec![FleetMechanism::SessionCheckingProtocol],
        4,
    ));
    let per_attack = &run.report.mechanisms[0].per_attack;
    let total: u64 = per_attack.values().map(|c| c.journeys).sum();
    assert_eq!(
        total, 120,
        "every journey lands in exactly one attack class"
    );
    assert!(per_attack.contains_key("honest"));
    assert!(
        per_attack.len() >= 4,
        "mixed fleet spans attack classes, got {:?}",
        per_attack.keys().collect::<Vec<_>>()
    );
}

#[test]
fn report_json_is_well_formed_enough_to_round_trip_counts() {
    let run = run_fleet(&config(Preset::Mixed, vec![FleetMechanism::Unprotected], 2));
    let json = run.report.to_json();
    assert!(json.starts_with('{') && json.ends_with('}'));
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches('[').count(), json.matches(']').count());
    assert!(json.contains("\"seed\":42"));
    assert!(json.contains("\"scenarios\":120"));
    assert!(json.contains("\"mechanism\":\"unprotected\""));
}
