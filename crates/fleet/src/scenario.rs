//! The seeded scenario generator: randomized host topologies and attack
//! mixes, reproducible from `(fleet seed, scenario id)` alone.
//!
//! A scenario is one complete journey setup: a route of generated hosts
//! (trust mix, per-host input feeds, at most one attacker drawn from the
//! [`Attack`] taxonomy) plus the agent that walks the route summing one
//! input per host. Generation is a pure function of the fleet seed, the
//! scenario id, and the preset — workers can generate scenarios in any
//! order on any thread and always produce the same fleet.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use refstate_mechanisms::replication::StageSpec;
use refstate_platform::{AgentImage, Attack, HostId, HostSpec};
use refstate_vm::{assemble, DataState, Value};

/// The scenario families the generator can draw from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Preset {
    /// Every host honest; a false-accusation canary.
    AllHonest,
    /// Exactly one untrusted host mounts a state/control-flow attack the
    /// paper classifies as detectable.
    SingleTamperer,
    /// A tamperer whose *next* host agreed to skip the check (§5.1's
    /// stated limitation of the session-checking protocol).
    ColludingPair,
    /// Input-level attacks (forge/drop) plus read attacks — the paper's
    /// stated blind spots (§4.2).
    InputForgeryHeavy,
    /// Routes of 12–24 hops with a mixed attack draw; stresses retained
    /// state and per-hop costs.
    LongRoute,
    /// Replicated-stage topologies (§3.2): every middle stage runs on
    /// three identically provisioned replicas and the attacker hides in
    /// one of them. The only family that provides [`StageSpec`]s, so
    /// `replication` can be scored; linear mechanisms walk the primary
    /// path (`h0 → h1 → …`) and see the attacker only when it sits on
    /// that path.
    Replicated,
    /// Chain-manipulation attacks (truncate-tail, swap-two-hops,
    /// replace-partial-result) plus colluding-predecessor forgeries and
    /// a slice of computation lies — the family that scores the
    /// chained-integrity mechanisms against the re-execution ones in one
    /// report: `chained`/`encapsulated` catch the chain manipulation the
    /// reference-state mechanisms are blind to, and miss the computation
    /// lies they catch.
    Chained,
    /// The chained family on long routes (6–14 hops) with a slice of
    /// input forgeries instead of computation lies: stresses per-arrival
    /// chain checks, owner-side signature batches, and late attacker
    /// placements (the final host can only be caught by the owner).
    Encapsulated,
    /// Disjoint-set topologies for the cooperating-agents mechanism:
    /// linear routes plus 2–3 off-route witness hosts (`v0 …`). The
    /// attack mix includes cross-set collusion — the attacker recruits
    /// exactly the witness assigned to its hop — so `cooperating`'s
    /// pinned blind spot shows up as a rate next to the route-collusion
    /// blind spot of the session protocol.
    Cooperating,
    /// Adaptive adversary campaigns (see [`crate::campaign`]): every
    /// [`crate::campaign::JOURNEYS_PER_CAMPAIGN`] consecutive scenarios
    /// form one engagement against a fixed topology and a stateful
    /// attacker (probe-then-cheat, coordinated collusion, or
    /// environmental stress). Carries witness hosts, so the disjoint-set
    /// mechanism runs too; graded by the report's `AdaptationReport`.
    Adaptive,
    /// Uniform draw over the seven *linear* families above — the five
    /// classics plus the two chained families, so one mixed report
    /// scores every linear mechanism on and off its home turf
    /// (replicated stages change the topology, so
    /// [`Preset::Replicated`] stays a dedicated family to keep
    /// mixed-rate comparisons like-for-like).
    Mixed,
}

impl Preset {
    /// Every preset, including [`Preset::Mixed`].
    pub const ALL: [Preset; 11] = [
        Preset::AllHonest,
        Preset::SingleTamperer,
        Preset::ColludingPair,
        Preset::InputForgeryHeavy,
        Preset::LongRoute,
        Preset::Replicated,
        Preset::Chained,
        Preset::Encapsulated,
        Preset::Cooperating,
        Preset::Adaptive,
        Preset::Mixed,
    ];

    /// Display / CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            Preset::AllHonest => "all-honest",
            Preset::SingleTamperer => "single-tamperer",
            Preset::ColludingPair => "colluding-pair",
            Preset::InputForgeryHeavy => "input-forgery",
            Preset::LongRoute => "long-route",
            Preset::Replicated => "replicated",
            Preset::Chained => "chained",
            Preset::Encapsulated => "encapsulated",
            Preset::Cooperating => "cooperating",
            Preset::Adaptive => "adaptive",
            Preset::Mixed => "mixed",
        }
    }

    /// Parses a CLI name (see [`Preset::name`]).
    pub fn parse(s: &str) -> Option<Preset> {
        Preset::ALL.into_iter().find(|p| p.name() == s)
    }
}

impl std::fmt::Display for Preset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One fully generated scenario, ready to instantiate hosts from.
#[derive(Debug, Clone)]
pub struct GeneratedScenario {
    /// The scenario id (position in the fleet).
    pub id: u64,
    /// The concrete family this scenario was drawn as (never
    /// [`Preset::Mixed`]).
    pub kind: Preset,
    /// Host specs (replicas included); the first spec is the trusted home.
    pub specs: Vec<HostSpec>,
    /// Where the journey starts (always the home host).
    pub start: HostId,
    /// The primary linear route (`h0 → h1 → …`); for replicated
    /// scenarios this is the path through each stage's first replica.
    pub route: Vec<HostId>,
    /// Replica stages, present only for [`Preset::Replicated`] scenarios.
    pub stages: Option<Vec<StageSpec>>,
    /// The agent walking the route.
    pub agent: AgentImage,
    /// The attacker and its attack, when the scenario has one.
    pub attacker: Option<(HostId, Attack)>,
    /// The attack-class label for aggregation (`"honest"` when none).
    pub attack_label: &'static str,
    /// A route host that churned out of the network before the journey
    /// (its spec is omitted; the itinerary still names it). Only
    /// [`Preset::Adaptive`] campaigns produce churn.
    pub churned: Option<HostId>,
    /// Campaign membership, present only for [`Preset::Adaptive`]
    /// scenarios (see [`crate::campaign`]).
    pub campaign: Option<crate::campaign::CampaignMeta>,
}

impl GeneratedScenario {
    /// Number of hops on the primary route.
    pub fn route_len(&self) -> usize {
        self.route.len()
    }

    /// Total number of hosts, replicas included.
    pub fn host_count(&self) -> usize {
        self.specs.len()
    }
}

/// Mixes the fleet seed and scenario id into one 64-bit stream seed
/// (SplitMix64 finalizer over the pair).
pub fn scenario_seed(fleet_seed: u64, id: u64) -> u64 {
    let mut z = fleet_seed ^ id.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Builds the route-walking agent for an `n`-host journey: on every host
/// it consumes one `"n"` input, adds it into `total`, advances `hop`, and
/// either migrates to the next host or halts after the last one.
///
/// The shape deliberately matches the paper's measurement agent (and
/// `mechanisms::matrix`): state attacks on `total` are detectable by any
/// reference-state mechanism, input attacks are not.
pub fn build_route_agent(id: u64, n: usize) -> AgentImage {
    assert!(n >= 2, "a route needs at least two hosts");
    let mut asm = String::from(
        "input \"n\"\nload \"total\"\nadd\nstore \"total\"\nload \"hop\"\npush 1\nadd\nstore \"hop\"\n",
    );
    for hop in 1..n {
        asm.push_str(&format!("load \"hop\"\npush {hop}\neq\njnz to_{hop}\n"));
    }
    asm.push_str("halt\n");
    for hop in 1..n {
        asm.push_str(&format!("to_{hop}:\npush \"h{hop}\"\nmigrate\n"));
    }
    let program = assemble(&asm).expect("generated route program assembles");
    let mut state = DataState::new();
    state.set("total", Value::Int(0));
    state.set("hop", Value::Int(0));
    AgentImage::new(format!("fleet-{id}"), program, state)
}

/// Draws one detectable state/control-flow attack.
pub(crate) fn detectable_attack(rng: &mut StdRng) -> Attack {
    match rng.gen_range(0u8..5) {
        0 => Attack::TamperVariable {
            name: "total".into(),
            // Honest totals are positive sums; a negative forgery is
            // always an actual change of state.
            value: Value::Int(-(rng.gen_range(1i64..1_000_000))),
        },
        1 => Attack::DeleteVariable {
            name: "total".into(),
        },
        2 => Attack::ScaleIntVariable {
            name: "total".into(),
            factor: rng.gen_range(2i64..9),
        },
        3 => Attack::SkipExecution,
        // Redirecting to the home host is never the legitimate next hop
        // for an attacker at position >= 1.
        _ => Attack::RedirectMigration {
            to: HostId::new("h0"),
        },
    }
}

/// Draws one chain-manipulation attack the chained-integrity family
/// detects (the attacker at `pos` has `pos` predecessor entries to
/// manipulate; callers guarantee `pos >= 2` so every draw has teeth).
fn chain_attack(rng: &mut StdRng, pos: usize) -> Attack {
    match rng.gen_range(0u8..3) {
        0 => Attack::TruncateChainTail {
            drop: rng.gen_range(1usize..pos.max(2)),
        },
        1 => Attack::SwapChainEntries,
        _ => Attack::ReplacePartialResult,
    }
}

/// Draws one attack outside the reference-state bandwidth (§4.2).
pub(crate) fn undetectable_attack(rng: &mut StdRng) -> Attack {
    match rng.gen_range(0u8..4) {
        0 | 1 => Attack::ForgeInput {
            tag: "n".into(),
            value: Value::Int(-(rng.gen_range(1i64..1000))),
        },
        2 => Attack::DropInput {
            // Suppressing an input the agent never reads models the
            // paper's "party that compiles the input" attack without
            // starving the session (matches `mechanisms::matrix`).
            tag: "unused".into(),
        },
        _ => Attack::ReadState,
    }
}

/// Generates scenario `id` of the fleet.
pub fn generate(fleet_seed: u64, id: u64, preset: Preset) -> GeneratedScenario {
    if preset == Preset::Adaptive {
        // Campaigns seed from the campaign index, not the scenario id —
        // every step of a campaign shares one plan.
        return crate::campaign::generate_adaptive(fleet_seed, id);
    }
    let mut rng = StdRng::seed_from_u64(scenario_seed(fleet_seed, id));

    let kind = match preset {
        Preset::Mixed => match rng.gen_range(0u8..7) {
            0 => Preset::AllHonest,
            1 => Preset::SingleTamperer,
            2 => Preset::ColludingPair,
            3 => Preset::InputForgeryHeavy,
            4 => Preset::LongRoute,
            5 => Preset::Chained,
            _ => Preset::Encapsulated,
        },
        concrete => concrete,
    };

    if kind == Preset::Replicated {
        return generate_replicated(id, &mut rng);
    }
    if kind == Preset::Chained || kind == Preset::Encapsulated {
        return generate_chained(id, &mut rng, kind);
    }
    if kind == Preset::Cooperating {
        return generate_cooperating(id, &mut rng);
    }

    let route_len = match kind {
        Preset::LongRoute => rng.gen_range(12usize..25),
        _ => rng.gen_range(3usize..9),
    };

    // Attacker position: any non-home host. Collusion needs a successor,
    // so the colluding tamperer never sits on the last host.
    let (attacker_pos, attack) = match kind {
        Preset::AllHonest => (None, None),
        Preset::SingleTamperer => {
            let pos = rng.gen_range(1usize..route_len);
            (Some(pos), Some(detectable_attack(&mut rng)))
        }
        Preset::ColludingPair => {
            let pos = rng.gen_range(1usize..route_len - 1);
            let attack = Attack::CollaborateTamper {
                name: "total".into(),
                value: Value::Int(-(rng.gen_range(1i64..1_000_000))),
                accomplice: HostId::new(format!("h{}", pos + 1)),
            };
            (Some(pos), Some(attack))
        }
        Preset::InputForgeryHeavy => {
            let pos = rng.gen_range(1usize..route_len);
            (Some(pos), Some(undetectable_attack(&mut rng)))
        }
        Preset::LongRoute => {
            // 30% honest, 50% detectable, 20% outside the bandwidth.
            let roll = rng.gen_range(0u8..10);
            if roll < 3 {
                (None, None)
            } else {
                let pos = rng.gen_range(1usize..route_len);
                let attack = if roll < 8 {
                    detectable_attack(&mut rng)
                } else {
                    undetectable_attack(&mut rng)
                };
                (Some(pos), Some(attack))
            }
        }
        Preset::Replicated
        | Preset::Chained
        | Preset::Encapsulated
        | Preset::Cooperating
        | Preset::Adaptive
        | Preset::Mixed => {
            unreachable!("replicated, chained, cooperating, adaptive, and mixed are handled above")
        }
    };

    let mut specs = Vec::with_capacity(route_len);
    for pos in 0..route_len {
        let mut spec = HostSpec::new(format!("h{pos}"));
        // The home host is trusted by definition; attackers are never
        // trusted (the paper: "trusted hosts will not attack"); other
        // hosts are trusted with probability ~0.3.
        let is_attacker = attacker_pos == Some(pos);
        if pos == 0 || (!is_attacker && rng.gen_bool(0.3)) {
            spec = spec.trusted();
        }
        // Several copies of the summed input so control-flow attacks that
        // revisit a host hit the hop budget instead of starving the feed,
        // plus the never-read "unused" tag DropInput targets.
        let offer = rng.gen_range(1i64..1000);
        for _ in 0..3 {
            spec = spec.with_input("n", Value::Int(offer));
        }
        spec = spec.with_input("unused", Value::Int(0));
        if is_attacker {
            spec = spec.malicious(attack.clone().expect("attacker position implies attack"));
        }
        specs.push(spec);
    }

    let attacker = attacker_pos.map(|pos| {
        (
            HostId::new(format!("h{pos}")),
            attack.expect("attacker position implies attack"),
        )
    });
    let attack_label = attacker
        .as_ref()
        .map(|(_, a)| a.label())
        .unwrap_or("honest");

    GeneratedScenario {
        id,
        kind,
        start: HostId::new("h0"),
        route: (0..route_len)
            .map(|p| HostId::new(format!("h{p}")))
            .collect(),
        stages: None,
        agent: build_route_agent(id, route_len),
        specs,
        attacker,
        attack_label,
        churned: None,
        campaign: None,
    }
}

/// Generates one [`Preset::Replicated`] scenario: 3–6 stages, every
/// middle stage on three identically provisioned replicas (the paper's
/// replicated-resources deployment burden), single trusted home and
/// single final stage. At most one attacker, hidden in a random replica
/// of a random middle stage — on the primary path one time in three, so
/// linear mechanisms see only a fraction of the attacks `replication`
/// catches.
fn generate_replicated(id: u64, rng: &mut StdRng) -> GeneratedScenario {
    const REPLICAS: usize = 3;
    let stage_count = rng.gen_range(3usize..7);

    // 20% honest, 60% detectable state/control-flow attack, 20% outside
    // the reference-state bandwidth (where replication's replicated
    // resources still catch input forgery).
    let roll = rng.gen_range(0u8..10);
    let (attacker_stage, attacker_replica, attack) = if roll < 2 {
        (None, 0usize, None)
    } else {
        let stage = rng.gen_range(1usize..stage_count - 1);
        let replica = rng.gen_range(0usize..REPLICAS);
        let attack = if roll < 8 {
            detectable_attack(rng)
        } else {
            undetectable_attack(rng)
        };
        (Some(stage), replica, Some(attack))
    };

    let mut specs = Vec::new();
    let mut stages = Vec::with_capacity(stage_count);
    let mut route = Vec::with_capacity(stage_count);
    let mut attacker = None;
    for stage in 0..stage_count {
        let replicated = stage != 0 && stage != stage_count - 1;
        let replicas = if replicated { REPLICAS } else { 1 };
        // Replicas of a stage offer identical resources — the honest
        // majority's votes must agree byte-for-byte.
        let offer = rng.gen_range(1i64..1000);
        let mut ids = Vec::with_capacity(replicas);
        for replica in 0..replicas {
            let host = if replica == 0 {
                format!("h{stage}")
            } else {
                format!("h{stage}r{replica}")
            };
            let is_attacker = attacker_stage == Some(stage) && attacker_replica == replica;
            let mut spec = HostSpec::new(host.as_str());
            if stage == 0 || (!is_attacker && rng.gen_bool(0.3)) {
                spec = spec.trusted();
            }
            for _ in 0..3 {
                spec = spec.with_input("n", Value::Int(offer));
            }
            spec = spec.with_input("unused", Value::Int(0));
            if is_attacker {
                let attack = attack.clone().expect("attacker position implies attack");
                spec = spec.malicious(attack.clone());
                attacker = Some((HostId::new(host.as_str()), attack));
            }
            specs.push(spec);
            ids.push(host);
        }
        route.push(HostId::new(format!("h{stage}")));
        stages.push(StageSpec::new(ids));
    }

    let attack_label = attacker
        .as_ref()
        .map(|(_, a)| a.label())
        .unwrap_or("honest");

    GeneratedScenario {
        id,
        kind: Preset::Replicated,
        start: HostId::new("h0"),
        agent: build_route_agent(id, stage_count),
        route,
        stages: Some(stages),
        specs,
        attacker,
        attack_label,
        churned: None,
        campaign: None,
    }
}

/// Generates one [`Preset::Cooperating`] scenario: a linear route of
/// 4–10 hops plus 2–3 off-route witness hosts (`v0 …`), so mechanisms
/// whose profile demands disjoint sets are fleet-drivable. The mix is
/// ≈20% honest, 40% detectable tampering, 20% cross-set collusion (the
/// attacker recruits exactly the witness its hop is assigned —
/// `cooperating`'s pinned blind spot; the session protocol still catches
/// it because the accomplice is not the route successor), and 20%
/// attacks outside the reference-state bandwidth.
fn generate_cooperating(id: u64, rng: &mut StdRng) -> GeneratedScenario {
    let route_len = rng.gen_range(4usize..11);
    let witnesses = rng.gen_range(2usize..4);
    let roll = rng.gen_range(0u8..10);
    let pos = rng.gen_range(1usize..route_len);
    let (attacker_pos, attack) = match roll {
        0..=1 => (None, None),
        2..=5 => (Some(pos), Some(detectable_attack(rng))),
        6..=7 => (
            Some(pos),
            Some(Attack::CollaborateTamper {
                name: "total".into(),
                value: Value::Int(-(rng.gen_range(1i64..1_000_000))),
                // The witness assignment is deterministic (hop index
                // modulo witness-set size), so the recruiting attacker
                // knows exactly whom to buy.
                accomplice: HostId::new(format!("v{}", pos % witnesses)),
            }),
        ),
        _ => (Some(pos), Some(undetectable_attack(rng))),
    };

    let mut specs = Vec::with_capacity(route_len + witnesses);
    for pos in 0..route_len {
        let mut spec = HostSpec::new(format!("h{pos}"));
        let is_attacker = attacker_pos == Some(pos);
        if pos == 0 || (!is_attacker && rng.gen_bool(0.3)) {
            spec = spec.trusted();
        }
        let offer = rng.gen_range(1i64..1000);
        for _ in 0..3 {
            spec = spec.with_input("n", Value::Int(offer));
        }
        spec = spec.with_input("unused", Value::Int(0));
        if is_attacker {
            spec = spec.malicious(attack.clone().expect("attacker position implies attack"));
        }
        specs.push(spec);
    }
    for w in 0..witnesses {
        specs.push(HostSpec::new(format!("v{w}")));
    }

    let attacker = attacker_pos.map(|pos| {
        (
            HostId::new(format!("h{pos}")),
            attack.expect("attacker position implies attack"),
        )
    });
    let attack_label = attacker
        .as_ref()
        .map(|(_, a)| a.label())
        .unwrap_or("honest");

    GeneratedScenario {
        id,
        kind: Preset::Cooperating,
        start: HostId::new("h0"),
        route: (0..route_len)
            .map(|p| HostId::new(format!("h{p}")))
            .collect(),
        stages: None,
        agent: build_route_agent(id, route_len),
        specs,
        attacker,
        attack_label,
        churned: None,
        campaign: None,
    }
}

/// Generates one chained-integrity scenario ([`Preset::Chained`] /
/// [`Preset::Encapsulated`]): a linear route with one attacker at
/// position ≥ 2 (chain manipulation needs recorded predecessors). The
/// attack mix is mostly chain manipulation, with the family's two blind
/// spots sampled so fleet reports show the structural contrast:
///
/// * `chained` — 20% honest, 55% chain manipulation, 10%
///   colluding-predecessor forgery, 15% computation lies (which only the
///   re-execution mechanisms catch),
/// * `encapsulated` — longer routes (6–14 hops), 15% honest, 60% chain
///   manipulation, 10% collusion, 15% input forgery (which nothing
///   linear catches).
fn generate_chained(id: u64, rng: &mut StdRng, kind: Preset) -> GeneratedScenario {
    let route_len = match kind {
        Preset::Encapsulated => rng.gen_range(6usize..15),
        _ => rng.gen_range(4usize..9),
    };
    let roll = rng.gen_range(0u8..20);
    let pos = rng.gen_range(2usize..route_len);
    let (attacker_pos, attack) = match kind {
        Preset::Encapsulated => match roll {
            0..=2 => (None, None),
            3..=14 => (Some(pos), Some(chain_attack(rng, pos))),
            15..=16 => (
                Some(pos),
                Some(Attack::ForgeChainEntry {
                    accomplice: HostId::new(format!("h{}", pos - 1)),
                }),
            ),
            _ => (Some(pos), Some(undetectable_attack(rng))),
        },
        _ => match roll {
            0..=3 => (None, None),
            4..=14 => (Some(pos), Some(chain_attack(rng, pos))),
            15..=16 => (
                Some(pos),
                Some(Attack::ForgeChainEntry {
                    accomplice: HostId::new(format!("h{}", pos - 1)),
                }),
            ),
            _ => (Some(pos), Some(detectable_attack(rng))),
        },
    };
    // A colluding predecessor leaks its key: it must not be trusted.
    let accomplice_pos = match &attack {
        Some(Attack::ForgeChainEntry { .. }) => attacker_pos.map(|p| p - 1),
        _ => None,
    };

    let mut specs = Vec::with_capacity(route_len);
    for pos in 0..route_len {
        let mut spec = HostSpec::new(format!("h{pos}"));
        let is_attacker = attacker_pos == Some(pos);
        let is_accomplice = accomplice_pos == Some(pos);
        if pos == 0 || (!is_attacker && !is_accomplice && rng.gen_bool(0.3)) {
            spec = spec.trusted();
        }
        let offer = rng.gen_range(1i64..1000);
        for _ in 0..3 {
            spec = spec.with_input("n", Value::Int(offer));
        }
        spec = spec.with_input("unused", Value::Int(0));
        if is_attacker {
            spec = spec.malicious(attack.clone().expect("attacker position implies attack"));
        }
        specs.push(spec);
    }

    let attacker = attacker_pos.map(|pos| {
        (
            HostId::new(format!("h{pos}")),
            attack.expect("attacker position implies attack"),
        )
    });
    let attack_label = attacker
        .as_ref()
        .map(|(_, a)| a.label())
        .unwrap_or("honest");

    GeneratedScenario {
        id,
        kind,
        start: HostId::new("h0"),
        route: (0..route_len)
            .map(|p| HostId::new(format!("h{p}")))
            .collect(),
        stages: None,
        agent: build_route_agent(id, route_len),
        specs,
        attacker,
        attack_label,
        churned: None,
        campaign: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for id in 0..50 {
            let a = generate(42, id, Preset::Mixed);
            let b = generate(42, id, Preset::Mixed);
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.attack_label, b.attack_label);
            assert_eq!(a.route_len(), b.route_len());
            assert_eq!(a.agent, b.agent);
            assert_eq!(
                a.specs.iter().map(|s| s.trusted).collect::<Vec<_>>(),
                b.specs.iter().map(|s| s.trusted).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn different_seeds_differ() {
        let kinds_a: Vec<_> = (0..40)
            .map(|id| generate(1, id, Preset::Mixed).kind)
            .collect();
        let kinds_b: Vec<_> = (0..40)
            .map(|id| generate(2, id, Preset::Mixed).kind)
            .collect();
        assert_ne!(kinds_a, kinds_b);
    }

    #[test]
    fn all_honest_has_no_attacker() {
        for id in 0..50 {
            let s = generate(7, id, Preset::AllHonest);
            assert!(s.attacker.is_none());
            assert_eq!(s.attack_label, "honest");
            assert!(s.specs.iter().all(|spec| spec.behaviour.is_honest()));
        }
    }

    #[test]
    fn single_tamperer_has_one_untrusted_detectable_attacker() {
        for id in 0..50 {
            let s = generate(7, id, Preset::SingleTamperer);
            let (host, attack) = s.attacker.expect("attacker present");
            assert!(attack.detectable_by_reference_state(), "{attack:?}");
            let spec = s
                .specs
                .iter()
                .find(|spec| spec.id == host)
                .expect("attacker spec exists");
            assert!(!spec.trusted, "attackers are never trusted");
            assert_ne!(spec.id, s.start, "the home host never attacks");
            let malicious = s.specs.iter().filter(|s| !s.behaviour.is_honest()).count();
            assert_eq!(malicious, 1);
        }
    }

    #[test]
    fn colluding_pair_accomplice_is_successor() {
        for id in 0..50 {
            let s = generate(9, id, Preset::ColludingPair);
            let (host, attack) = s.attacker.clone().expect("attacker present");
            let Attack::CollaborateTamper { accomplice, .. } = attack else {
                panic!("colluding preset generates CollaborateTamper");
            };
            let pos: usize = host.as_str()[1..].parse().unwrap();
            assert_eq!(accomplice.as_str(), format!("h{}", pos + 1));
            assert!(pos + 1 < s.route_len(), "accomplice is on the route");
        }
    }

    #[test]
    fn input_forgery_attacks_are_outside_bandwidth() {
        for id in 0..50 {
            let s = generate(11, id, Preset::InputForgeryHeavy);
            let (_, attack) = s.attacker.expect("attacker present");
            assert!(!attack.detectable_by_reference_state(), "{attack:?}");
        }
    }

    #[test]
    fn long_routes_are_long() {
        for id in 0..30 {
            let s = generate(13, id, Preset::LongRoute);
            assert!((12..25).contains(&s.route_len()));
        }
    }

    #[test]
    fn mixed_draws_every_family() {
        let kinds: std::collections::BTreeSet<_> = (0..200)
            .map(|id| generate(42, id, Preset::Mixed).kind.name())
            .collect();
        assert!(
            kinds.len() >= 4,
            "mixed covers most families, got {kinds:?}"
        );
    }

    #[test]
    fn replicated_scenarios_have_staged_replicas() {
        let mut attackers_off_primary_path = 0;
        for id in 0..60 {
            let s = generate(17, id, Preset::Replicated);
            assert_eq!(s.kind, Preset::Replicated);
            let stages = s.stages.as_ref().expect("replicated topology");
            assert_eq!(stages.len(), s.route_len());
            assert_eq!(stages.first().unwrap().replicas.len(), 1);
            assert_eq!(stages.last().unwrap().replicas.len(), 1);
            for stage in &stages[1..stages.len() - 1] {
                assert_eq!(stage.replicas.len(), 3, "middle stages are replicated");
            }
            // The primary route is each stage's first replica.
            for (hop, stage) in s.route.iter().zip(stages) {
                assert_eq!(hop, &stage.replicas[0]);
            }
            // The attacker (if any) sits in a replicated middle stage.
            if let Some((host, _)) = &s.attacker {
                let stage = stages
                    .iter()
                    .find(|st| st.replicas.contains(host))
                    .expect("attacker is on a stage");
                assert_eq!(stage.replicas.len(), 3);
                if !s.route.contains(host) {
                    attackers_off_primary_path += 1;
                }
            }
        }
        assert!(
            attackers_off_primary_path > 0,
            "some attackers hide off the primary path"
        );
    }

    #[test]
    fn chained_presets_place_attackers_with_predecessors() {
        for preset in [Preset::Chained, Preset::Encapsulated] {
            let mut chain_attacks = 0;
            let mut blind_spots = 0;
            for id in 0..80 {
                let s = generate(23, id, preset);
                assert_eq!(s.kind, preset);
                assert!(s.stages.is_none());
                let Some((host, attack)) = &s.attacker else {
                    continue;
                };
                let pos: usize = host.as_str()[1..].parse().unwrap();
                if attack.targets_result_chain() {
                    assert!(
                        pos >= 2,
                        "chain attacks need recorded predecessors, got pos {pos}"
                    );
                }
                if let Attack::TruncateChainTail { drop } = attack {
                    assert!((1..pos).contains(drop) || *drop == 1, "{attack:?} at {pos}");
                }
                if let Attack::ForgeChainEntry { accomplice } = attack {
                    assert_eq!(accomplice.as_str(), format!("h{}", pos - 1));
                    let spec = s.specs.iter().find(|sp| &sp.id == accomplice).unwrap();
                    assert!(!spec.trusted, "a key-leaking accomplice is never trusted");
                }
                if attack.detectable_by_chained_integrity() {
                    chain_attacks += 1;
                } else {
                    blind_spots += 1;
                }
            }
            assert!(chain_attacks > 20, "{preset}: chain attacks dominate");
            assert!(
                blind_spots > 5,
                "{preset}: the family's blind spots are sampled too"
            );
        }
    }

    #[test]
    fn encapsulated_routes_are_longer_than_chained() {
        let avg = |preset: Preset| -> f64 {
            (0..60)
                .map(|id| generate(5, id, preset).route_len() as f64)
                .sum::<f64>()
                / 60.0
        };
        assert!(avg(Preset::Encapsulated) > avg(Preset::Chained) + 2.0);
    }

    #[test]
    fn linear_presets_and_mixed_have_no_stages() {
        for id in 0..80 {
            assert!(generate(42, id, Preset::Mixed).stages.is_none());
            assert!(generate(42, id, Preset::SingleTamperer).stages.is_none());
        }
    }

    #[test]
    fn cooperating_scenarios_carry_witnesses() {
        let mut cross_set = 0;
        for id in 0..80 {
            let s = generate(31, id, Preset::Cooperating);
            assert_eq!(s.kind, Preset::Cooperating);
            assert!(s.stages.is_none());
            let spares: Vec<_> = s
                .specs
                .iter()
                .filter(|sp| !s.route.contains(&sp.id))
                .collect();
            assert!((2..=3).contains(&spares.len()), "2–3 witnesses");
            assert!(spares.iter().all(|sp| sp.id.as_str().starts_with('v')));
            if let Some((host, Attack::CollaborateTamper { accomplice, .. })) = &s.attacker {
                if accomplice.as_str().starts_with('v') {
                    let pos: usize = host.as_str()[1..].parse().unwrap();
                    assert_eq!(
                        accomplice.as_str(),
                        format!("v{}", pos % spares.len()),
                        "cross-set collusion recruits the assigned witness"
                    );
                    cross_set += 1;
                }
            }
        }
        assert!(cross_set > 5, "cross-set collusion is sampled");
    }

    #[test]
    fn route_agent_program_assembles_for_all_lengths() {
        for n in 2..26 {
            let agent = build_route_agent(0, n);
            assert_eq!(agent.state.get_int("total"), Some(0));
        }
    }
}
