//! Fleet aggregation: detection/accusation/attribution rates per
//! mechanism × attack class, plus the (separately kept) timing report.
//!
//! [`FleetReport`] holds only counts derived from journey verdicts, so it
//! is bit-for-bit identical across runs with the same seed regardless of
//! worker count or machine speed. Wall-clock facts (throughput, latency
//! percentiles) live in [`FleetTiming`], which is *not* part of the
//! deterministic surface.
//!
//! Mechanisms are identified by their registry name. A configured
//! mechanism that ran **zero** journeys — filtered out by topology (e.g.
//! `replication` on a linear preset) — renders as `n/a`, and its JSON
//! rates are `null`: an absent measurement, never a fake `0.00` detection
//! rate. The same holds for attribution accuracy when nothing was
//! detected.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Duration;

use refstate_core::PipelineStatsSnapshot;
use refstate_telemetry::{HistogramSnapshot, MetricsSnapshot, TelemetryLevel};

use crate::engine::{MechanismRun, ScenarioResult};
use crate::json::JsonWriter;

/// Counters for one (mechanism, attack-class) cell.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CellStats {
    /// Journeys aggregated into this cell.
    pub journeys: u64,
    /// Journeys the mechanism flagged.
    pub detected: u64,
    /// Journeys where somebody *other than* the actual attacker was
    /// accused (including any accusation on an honest run).
    pub false_accusations: u64,
    /// Detected journeys in which the actual attacker was accused.
    pub correct_culprit: u64,
    /// Journeys that ran to their halt instruction.
    pub completed: u64,
    /// Journeys that died of an infrastructure failure.
    pub infra_errors: u64,
}

impl CellStats {
    fn absorb(&mut self, run: &MechanismRun) {
        self.journeys += 1;
        self.detected += run.detected as u64;
        self.false_accusations += run.false_accusation as u64;
        self.correct_culprit += matches!(run.correct_culprit, Some(true)) as u64;
        self.completed += run.completed as u64;
        self.infra_errors += run.infra_error as u64;
    }

    /// Detected fraction of this cell's journeys.
    pub fn detection_rate(&self) -> f64 {
        ratio(self.detected, self.journeys)
    }

    /// False-accusation fraction of this cell's journeys.
    pub fn false_accusation_rate(&self) -> f64 {
        ratio(self.false_accusations, self.journeys)
    }

    /// Among detections, the fraction that blamed the actual attacker.
    pub fn attribution_accuracy(&self) -> f64 {
        ratio(self.correct_culprit, self.detected)
    }

    fn write_json(&self, w: &mut JsonWriter) {
        w.field_u64("journeys", self.journeys);
        w.field_u64("detected", self.detected);
        w.field_u64("false_accusations", self.false_accusations);
        w.field_u64("correct_culprit", self.correct_culprit);
        w.field_u64("completed", self.completed);
        w.field_u64("infra_errors", self.infra_errors);
        // Zero-denominator rates are undefined measurements, not zeros.
        w.field_rate_or_null("detection_rate", self.detected, self.journeys);
        w.field_rate_or_null(
            "false_accusation_rate",
            self.false_accusations,
            self.journeys,
        );
        w.field_rate_or_null("attribution_accuracy", self.correct_culprit, self.detected);
    }
}

/// Renders `num/den` with three decimals, or `n/a` when the denominator
/// is zero (the rate is undefined, not zero).
fn fmt_rate(num: u64, den: u64) -> String {
    if den == 0 {
        "n/a".to_owned()
    } else {
        format!("{:.3}", num as f64 / den as f64)
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// One mechanism's aggregate over the whole fleet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MechanismReport {
    /// The mechanism's registry name.
    pub name: &'static str,
    /// Totals over every journey this mechanism ran.
    pub total: CellStats,
    /// Per-attack-class breakdown, keyed by attack label (`"honest"`
    /// included).
    pub per_attack: BTreeMap<&'static str, CellStats>,
}

impl MechanismReport {
    /// Returns `true` when the mechanism ran no journeys (filtered out or
    /// topology-incompatible with the preset) — render as `n/a`.
    pub fn not_run(&self) -> bool {
        self.total.journeys == 0
    }
}

/// Per-campaign counters for one (mechanism, policy) cell of an adaptive
/// fleet. All integer counts — the rates derive, so the cell is part of
/// the byte-deterministic surface.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdaptationCell {
    /// Campaigns this mechanism ran at least one journey of.
    pub campaigns: u64,
    /// Journeys aggregated across those campaigns.
    pub journeys: u64,
    /// Campaigns that mounted at least one real attack within the
    /// observed steps (probes, lie-low journeys, and churn don't count).
    pub attacked: u64,
    /// Attacked campaigns the mechanism flagged at or after the first
    /// real attack.
    pub detected: u64,
    /// Detections *before* the campaign's first real attack — a flag
    /// raised while the adversary was still probing or lying low.
    pub early_detections: u64,
    /// Journeys where somebody other than the actual attacker was
    /// accused.
    pub false_accusations: u64,
    /// Sum over detected campaigns of `first detected step − first
    /// attack step` (detection latency in journeys).
    pub latency_sum: u64,
}

impl AdaptationCell {
    /// Among attacked campaigns, the fraction the mechanism caught.
    pub fn detection_under_adaptation(&self) -> f64 {
        ratio(self.detected, self.attacked)
    }

    /// Mean detection latency in journeys (first detection step minus
    /// first attack step), over detected campaigns.
    pub fn mean_detection_latency(&self) -> f64 {
        ratio(self.latency_sum, self.detected)
    }

    /// False-accusation fraction of this cell's journeys.
    pub fn false_accusation_rate(&self) -> f64 {
        ratio(self.false_accusations, self.journeys)
    }

    fn write_json(&self, w: &mut JsonWriter) {
        w.field_u64("campaigns", self.campaigns);
        w.field_u64("journeys", self.journeys);
        w.field_u64("attacked", self.attacked);
        w.field_u64("detected", self.detected);
        w.field_u64("early_detections", self.early_detections);
        w.field_u64("false_accusations", self.false_accusations);
        w.field_u64("latency_sum", self.latency_sum);
        // Zero-denominator rates are undefined measurements, not zeros.
        w.field_rate_or_null("detection_under_adaptation", self.detected, self.attacked);
        w.field_rate_or_null(
            "mean_detection_latency_journeys",
            self.latency_sum,
            self.detected,
        );
        w.field_rate_or_null(
            "false_accusation_rate",
            self.false_accusations,
            self.journeys,
        );
    }
}

/// One mechanism's adaptation grades, total and per attacker policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MechanismAdaptation {
    /// The mechanism's registry name.
    pub name: &'static str,
    /// Totals over every campaign the mechanism ran.
    pub total: AdaptationCell,
    /// Per-policy breakdown, keyed by the campaign policy label.
    pub per_policy: BTreeMap<&'static str, AdaptationCell>,
}

/// The per-campaign grading of an adaptive fleet: detection latency (in
/// journeys), detection-under-adaptation rate, and false-accusation rate
/// per mechanism × attacker policy. Present on [`FleetReport`] only when
/// the fleet contained campaign scenarios ([`Preset::Adaptive`]
/// populations — see [`crate::campaign`]).
///
/// [`Preset::Adaptive`]: crate::scenario::Preset::Adaptive
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdaptationReport {
    /// Steps per campaign (see [`crate::campaign::JOURNEYS_PER_CAMPAIGN`]).
    pub journeys_per_campaign: u64,
    /// Distinct campaigns observed in the fleet.
    pub campaigns: u64,
    /// Per-mechanism grades, in configuration order; mechanisms that ran
    /// no campaign journeys (topology-incompatible) have no entry.
    pub mechanisms: Vec<MechanismAdaptation>,
}

/// Per-(mechanism, campaign) fold state while walking the id-ordered
/// scenario results.
struct CampaignTrack {
    policy: &'static str,
    first_attack: Option<u64>,
    max_step: u64,
    journeys: u64,
    first_detection: Option<u64>,
    early_detections: u64,
    false_accusations: u64,
}

impl CampaignTrack {
    fn absorb_into(&self, cell: &mut AdaptationCell) {
        cell.campaigns += 1;
        cell.journeys += self.journeys;
        cell.early_detections += self.early_detections;
        cell.false_accusations += self.false_accusations;
        if let Some(first) = self.first_attack {
            // A campaign truncated before its first attack step never
            // attacked anyone.
            if first <= self.max_step {
                cell.attacked += 1;
                if let Some(detected_at) = self.first_detection {
                    cell.detected += 1;
                    cell.latency_sum += detected_at - first;
                }
            }
        }
    }
}

/// Folds campaign-tagged results into the adaptation grades. `None` when
/// the fleet contained no campaign scenarios.
fn adaptation_from_results(
    mechanisms: &[&'static str],
    results: &[ScenarioResult],
) -> Option<AdaptationReport> {
    let mut tracks: BTreeMap<(&'static str, u64), CampaignTrack> = BTreeMap::new();
    let mut campaigns: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
    for result in results {
        let Some(meta) = &result.campaign else {
            continue;
        };
        campaigns.insert(meta.campaign);
        for run in &result.runs {
            let track = tracks
                .entry((run.mechanism, meta.campaign))
                .or_insert(CampaignTrack {
                    policy: meta.policy,
                    first_attack: meta.first_attack_step,
                    max_step: 0,
                    journeys: 0,
                    first_detection: None,
                    early_detections: 0,
                    false_accusations: 0,
                });
            track.max_step = track.max_step.max(meta.step);
            track.journeys += 1;
            track.false_accusations += run.false_accusation as u64;
            if run.detected {
                match meta.first_attack_step {
                    Some(first) if meta.step >= first => {
                        track.first_detection = Some(
                            track
                                .first_detection
                                .map_or(meta.step, |d| d.min(meta.step)),
                        );
                    }
                    _ => track.early_detections += 1,
                }
            }
        }
    }
    if tracks.is_empty() {
        return None;
    }
    let mechanisms = mechanisms
        .iter()
        .filter_map(|&name| {
            let mut total = AdaptationCell::default();
            let mut per_policy: BTreeMap<&'static str, AdaptationCell> = BTreeMap::new();
            for ((mechanism, _), track) in &tracks {
                if *mechanism != name {
                    continue;
                }
                track.absorb_into(&mut total);
                track.absorb_into(per_policy.entry(track.policy).or_default());
            }
            (total.campaigns > 0).then_some(MechanismAdaptation {
                name,
                total,
                per_policy,
            })
        })
        .collect();
    Some(AdaptationReport {
        journeys_per_campaign: crate::campaign::JOURNEYS_PER_CAMPAIGN,
        campaigns: campaigns.len() as u64,
        mechanisms,
    })
}

/// The deterministic fleet result: counts and rates only.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetReport {
    /// The fleet seed.
    pub seed: u64,
    /// The preset the fleet was generated from.
    pub preset: &'static str,
    /// Number of generated scenarios.
    pub scenarios: u64,
    /// Aggregates per mechanism, in configuration order.
    pub mechanisms: Vec<MechanismReport>,
    /// Per-campaign adaptation grades; `Some` only when the fleet ran
    /// adaptive campaigns.
    pub adaptation: Option<AdaptationReport>,
}

impl FleetReport {
    /// Aggregates scenario results (engine output order) into the report.
    /// Every configured mechanism gets a report entry — mechanisms with
    /// no runs (topology-incompatible with the preset) keep zero counts
    /// and render as `n/a`.
    pub fn from_results(
        seed: u64,
        preset: &'static str,
        mechanisms: &[&'static str],
        results: &[ScenarioResult],
    ) -> FleetReport {
        let mut per_mechanism: BTreeMap<&'static str, MechanismReport> = mechanisms
            .iter()
            .map(|&name| {
                (
                    name,
                    MechanismReport {
                        name,
                        total: CellStats::default(),
                        per_attack: BTreeMap::new(),
                    },
                )
            })
            .collect();
        for result in results {
            for run in &result.runs {
                let report = per_mechanism
                    .get_mut(&run.mechanism)
                    .expect("engine only runs configured mechanisms");
                report.total.absorb(run);
                report
                    .per_attack
                    .entry(result.attack_label)
                    .or_default()
                    .absorb(run);
            }
        }
        FleetReport {
            seed,
            preset,
            scenarios: results.len() as u64,
            mechanisms: mechanisms
                .iter()
                .map(|&name| per_mechanism.remove(name).expect("built above"))
                .collect(),
            adaptation: adaptation_from_results(mechanisms, results),
        }
    }

    /// Renders the human-readable table: one block per mechanism, one row
    /// per attack class. Mechanisms with no journeys render as `n/a`.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "fleet: {} scenarios, preset {}, seed {}",
            self.scenarios, self.preset, self.seed
        );
        for m in &self.mechanisms {
            let _ = writeln!(out);
            if m.not_run() {
                let _ = writeln!(
                    out,
                    "{:<20} n/a — ran no journeys under this preset \
                     (topology-incompatible or filtered out)",
                    m.name
                );
                continue;
            }
            let _ = writeln!(
                out,
                "{:<20} {:>9} {:>9} {:>8} {:>11} {:>11} {:>8} {:>7}",
                m.name,
                "journeys",
                "detected",
                "det.rate",
                "false-acc.",
                "attrib.acc.",
                "complete",
                "errors"
            );
            let mut rows: Vec<(&str, &CellStats)> =
                m.per_attack.iter().map(|(k, v)| (*k, v)).collect();
            rows.push(("TOTAL", &m.total));
            for (label, cell) in rows {
                let _ = writeln!(
                    out,
                    "{:<20} {:>9} {:>9} {:>8} {:>11} {:>11} {:>8} {:>7}",
                    label,
                    cell.journeys,
                    cell.detected,
                    fmt_rate(cell.detected, cell.journeys),
                    cell.false_accusations,
                    fmt_rate(cell.correct_culprit, cell.detected),
                    cell.completed,
                    cell.infra_errors
                );
            }
        }
        if let Some(adaptation) = &self.adaptation {
            let _ = writeln!(out);
            let _ = writeln!(
                out,
                "adaptation: {} campaigns × {} journeys",
                adaptation.campaigns, adaptation.journeys_per_campaign
            );
            let _ = writeln!(
                out,
                "{:<32} {:>9} {:>8} {:>8} {:>9} {:>8} {:>5} {:>9}",
                "mechanism / policy",
                "campaigns",
                "attacked",
                "detected",
                "det.adapt",
                "latency",
                "early",
                "false-acc"
            );
            for m in &adaptation.mechanisms {
                let mut rows: Vec<(String, &AdaptationCell)> = m
                    .per_policy
                    .iter()
                    .map(|(policy, cell)| (format!("  {policy}"), cell))
                    .collect();
                rows.insert(0, (m.name.to_owned(), &m.total));
                for (label, cell) in rows {
                    let _ = writeln!(
                        out,
                        "{:<32} {:>9} {:>8} {:>8} {:>9} {:>8} {:>5} {:>9}",
                        label,
                        cell.campaigns,
                        cell.attacked,
                        cell.detected,
                        fmt_rate(cell.detected, cell.attacked),
                        fmt_rate(cell.latency_sum, cell.detected),
                        cell.early_detections,
                        cell.false_accusations,
                    );
                }
            }
        }
        out
    }

    /// Canonical JSON for the deterministic portion of the fleet result.
    /// Identical bytes for identical seeds (any worker count).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_u64("seed", self.seed);
        w.field_str("preset", self.preset);
        w.field_u64("scenarios", self.scenarios);
        w.key("mechanisms");
        w.begin_array();
        for m in &self.mechanisms {
            w.begin_object();
            w.field_str("mechanism", m.name);
            w.field_bool("ran", !m.not_run());
            w.key("total");
            w.begin_object();
            m.total.write_json(&mut w);
            w.end_object();
            w.key("per_attack");
            w.begin_object();
            for (label, cell) in &m.per_attack {
                w.key(label);
                w.begin_object();
                cell.write_json(&mut w);
                w.end_object();
            }
            w.end_object();
            w.end_object();
        }
        w.end_array();
        // The key exists only when the fleet ran campaigns, so
        // non-adaptive reports keep their historical bytes.
        if let Some(adaptation) = &self.adaptation {
            w.key("adaptation");
            adaptation.write_json(&mut w);
        }
        w.end_object();
        w.finish()
    }
}

impl AdaptationReport {
    fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.field_u64("journeys_per_campaign", self.journeys_per_campaign);
        w.field_u64("campaigns", self.campaigns);
        w.key("mechanisms");
        w.begin_array();
        for m in &self.mechanisms {
            w.begin_object();
            w.field_str("mechanism", m.name);
            w.key("total");
            w.begin_object();
            m.total.write_json(w);
            w.end_object();
            w.key("per_policy");
            w.begin_object();
            for (policy, cell) in &m.per_policy {
                w.key(policy);
                w.begin_object();
                cell.write_json(w);
                w.end_object();
            }
            w.end_object();
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }

    /// Canonical JSON for the adaptation grades as a standalone object —
    /// the same bytes the `"adaptation"` key carries inside
    /// [`FleetReport::to_json`]. The bench harness embeds this in
    /// `BENCH_fleet.json`.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        self.write_json(&mut w);
        w.finish()
    }
}

/// Latency percentiles for one mechanism (journey wall time).
#[derive(Debug, Clone, Copy)]
pub struct LatencyPercentiles {
    /// Median.
    pub p50: Duration,
    /// 90th percentile.
    pub p90: Duration,
    /// 99th percentile.
    pub p99: Duration,
    /// Slowest observed journey.
    pub max: Duration,
}

impl LatencyPercentiles {
    /// Computes percentiles from raw per-journey latencies.
    pub fn from_latencies(latencies: &mut [Duration]) -> Option<LatencyPercentiles> {
        if latencies.is_empty() {
            return None;
        }
        latencies.sort_unstable();
        let pick = |q: f64| {
            let idx = ((latencies.len() as f64 - 1.0) * q).round() as usize;
            latencies[idx]
        };
        Some(LatencyPercentiles {
            p50: pick(0.50),
            p90: pick(0.90),
            p99: pick(0.99),
            max: *latencies.last().expect("non-empty"),
        })
    }
}

/// Count/duration summary of one verification stage, distilled from a
/// telemetry duration histogram (nanosecond samples, reported in µs).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageStats {
    /// Samples observed (e.g. cache probes that hit).
    pub count: u64,
    /// Total wall time spent in this stage, microseconds.
    pub total_us: f64,
    /// Median stage duration, microseconds (log-linear bucket upper bound,
    /// worst-case 12.5% relative error).
    pub p50_us: f64,
    /// 99th-percentile stage duration, microseconds.
    pub p99_us: f64,
}

impl StageStats {
    /// Distils a duration histogram (or its absence) into stage stats.
    pub fn from_histogram(histogram: Option<&HistogramSnapshot>) -> StageStats {
        match histogram {
            Some(h) if h.count > 0 => StageStats {
                count: h.count,
                total_us: h.sum as f64 / 1e3,
                p50_us: h.quantile(0.50) as f64 / 1e3,
                p99_us: h.quantile(0.99) as f64 / 1e3,
            },
            _ => StageStats::default(),
        }
    }
}

/// Where one mechanism's verification time went: cache hits vs full VM
/// replays vs signature verification. Built from the telemetry metric
/// delta of the run; part of [`FleetTiming`] (never [`FleetReport`] — the
/// deterministic surface carries no wall-clock facts).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageBreakdown {
    /// Replay-cache probes that hit (`verify.cache_hit`).
    pub cache_hit: StageStats,
    /// Full compiled-VM re-executions (`verify.replay`).
    pub replay: StageStats,
    /// Single DSA signature verifications (`crypto.verify`).
    pub sig_verify: StageStats,
}

impl StageBreakdown {
    /// Pulls the three stage histograms recorded under `mechanism`'s
    /// telemetry scope out of a metrics (delta) snapshot.
    pub fn from_metrics(metrics: &MetricsSnapshot, mechanism: &'static str) -> StageBreakdown {
        StageBreakdown {
            cache_hit: StageStats::from_histogram(metrics.histogram(mechanism, "verify.cache_hit")),
            replay: StageStats::from_histogram(metrics.histogram(mechanism, "verify.replay")),
            sig_verify: StageStats::from_histogram(metrics.histogram(mechanism, "crypto.verify")),
        }
    }

    /// `true` when no stage recorded a single sample (mechanism never
    /// touched the pipeline or crypto — e.g. `unprotected`).
    pub fn is_empty(&self) -> bool {
        self.cache_hit.count == 0 && self.replay.count == 0 && self.sig_verify.count == 0
    }
}

/// Wall-clock facts of one fleet run. Not deterministic; kept apart from
/// [`FleetReport`] on purpose.
#[derive(Debug, Clone)]
pub struct FleetTiming {
    /// Worker threads used.
    pub workers: usize,
    /// Total wall time of the run.
    pub wall: Duration,
    /// Scenarios completed per wall-clock second.
    pub scenarios_per_sec: f64,
    /// Journeys (scenario × mechanism) per wall-clock second.
    pub journeys_per_sec: f64,
    /// Latency percentiles per mechanism name, in run order (mechanisms
    /// that ran no journeys have no entry).
    pub latencies: Vec<(&'static str, LatencyPercentiles)>,
    /// Worker threads for owner-side bulk `check_sessions` passes inside
    /// each journey.
    pub check_workers: usize,
    /// Whether the run shared a replay cache across journeys.
    pub replay_cache: bool,
    /// The verification pipeline's counters: cache hits/misses, actual VM
    /// replays, evictions, and end-of-run cache occupancy.
    pub replay: PipelineStatsSnapshot,
    /// The telemetry level the run executed under.
    pub telemetry: TelemetryLevel,
    /// Per-mechanism verification-stage breakdown, in run order. Empty
    /// when telemetry was off (mechanisms whose stages recorded nothing,
    /// e.g. `unprotected`, have no entry).
    pub stages: Vec<(&'static str, StageBreakdown)>,
}

impl FleetTiming {
    /// Renders the human-readable timing block.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "timing: {:.2?} wall on {} workers — {:.0} scenarios/s, {:.0} journeys/s (telemetry {})",
            self.wall,
            self.workers,
            self.scenarios_per_sec,
            self.journeys_per_sec,
            self.telemetry.name(),
        );
        let _ = writeln!(
            out,
            "replay cache: {} — {} hits / {} misses ({:.1}% hit rate), {} replays, \
             {} evictions, occupancy {}/{}; check workers: {}",
            if self.replay_cache { "on" } else { "off" },
            self.replay.hits,
            self.replay.misses,
            self.replay.hit_rate() * 100.0,
            self.replay.replays,
            self.replay.evictions,
            self.replay.cache_entries,
            self.replay.cache_capacity,
            self.check_workers,
        );
        if !self.stages.is_empty() {
            let _ = writeln!(
                out,
                "{:<20} {:>16} {:>16} {:>16}",
                "stage (count/total)", "cache_hit", "replay", "sig_verify"
            );
            let cell = |s: &StageStats| format!("{}/{:.0}µs", s.count, s.total_us);
            for (mechanism, b) in &self.stages {
                let _ = writeln!(
                    out,
                    "{:<20} {:>16} {:>16} {:>16}",
                    mechanism,
                    cell(&b.cache_hit),
                    cell(&b.replay),
                    cell(&b.sig_verify),
                );
            }
        }
        let _ = writeln!(
            out,
            "{:<20} {:>10} {:>10} {:>10} {:>10}",
            "latency", "p50", "p90", "p99", "max"
        );
        for (mechanism, p) in &self.latencies {
            let _ = writeln!(
                out,
                "{:<20} {:>10.1?} {:>10.1?} {:>10.1?} {:>10.1?}",
                mechanism, p.p50, p.p90, p.p99, p.max
            );
        }
        out
    }

    /// JSON for the timing block (machine-readable bench trajectory).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_u64("workers", self.workers as u64);
        w.field_f64("wall_seconds", self.wall.as_secs_f64());
        w.field_f64("scenarios_per_sec", self.scenarios_per_sec);
        w.field_f64("journeys_per_sec", self.journeys_per_sec);
        w.field_u64("check_workers", self.check_workers as u64);
        w.field_str("telemetry", self.telemetry.name());
        w.key("replay");
        w.begin_object();
        w.field_bool("cache_enabled", self.replay_cache);
        w.field_u64("hits", self.replay.hits);
        w.field_u64("misses", self.replay.misses);
        w.field_u64("replays", self.replay.replays);
        w.field_f64("hit_rate", self.replay.hit_rate());
        w.field_u64("evictions", self.replay.evictions);
        w.field_u64("occupancy", self.replay.cache_entries);
        w.field_u64("capacity", self.replay.cache_capacity);
        w.end_object();
        w.key("stage_breakdown");
        w.begin_object();
        for (mechanism, b) in &self.stages {
            w.key(mechanism);
            w.begin_object();
            for (label, stage) in [
                ("cache_hit", &b.cache_hit),
                ("replay", &b.replay),
                ("sig_verify", &b.sig_verify),
            ] {
                w.key(label);
                w.begin_object();
                w.field_u64("count", stage.count);
                w.field_f64("total_us", stage.total_us);
                w.field_f64("p50_us", stage.p50_us);
                w.field_f64("p99_us", stage.p99_us);
                w.end_object();
            }
            w.end_object();
        }
        w.end_object();
        w.key("latency_percentiles");
        w.begin_object();
        for (mechanism, p) in &self.latencies {
            w.key(mechanism);
            w.begin_object();
            w.field_f64("p50_us", p.p50.as_secs_f64() * 1e6);
            w.field_f64("p90_us", p.p90.as_secs_f64() * 1e6);
            w.field_f64("p99_us", p.p99.as_secs_f64() * 1e6);
            w.field_f64("max_us", p.max.as_secs_f64() * 1e6);
            w.end_object();
        }
        w.end_object();
        w.end_object();
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_of_known_distribution() {
        let mut lats: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        let p = LatencyPercentiles::from_latencies(&mut lats).unwrap();
        assert_eq!(p.p50, Duration::from_millis(51));
        assert_eq!(p.p90, Duration::from_millis(90));
        assert_eq!(p.p99, Duration::from_millis(99));
        assert_eq!(p.max, Duration::from_millis(100));
    }

    #[test]
    fn percentiles_empty_is_none() {
        assert!(LatencyPercentiles::from_latencies(&mut []).is_none());
    }

    #[test]
    fn rates_handle_zero_denominators() {
        let cell = CellStats::default();
        assert_eq!(cell.detection_rate(), 0.0);
        assert_eq!(cell.attribution_accuracy(), 0.0);
        assert_eq!(fmt_rate(0, 0), "n/a");
        assert_eq!(fmt_rate(1, 2), "0.500");
    }

    #[test]
    fn adaptation_grades_latency_and_early_detection() {
        use crate::campaign::CampaignMeta;
        let meta = |campaign: u64, step: u64, first: Option<u64>| CampaignMeta {
            campaign,
            step,
            policy: "probe-then-cheat",
            first_attack_step: first,
            real_attack: first.is_some_and(|f| step >= f),
        };
        let run = |detected: bool, false_acc: bool| MechanismRun {
            mechanism: "protocol",
            detected,
            false_accusation: false_acc,
            correct_culprit: None,
            completed: true,
            infra_error: false,
            latency: Duration::ZERO,
        };
        let scenario = |id, runs, campaign| ScenarioResult {
            id,
            kind: "adaptive",
            attack_label: "tamper-variable",
            route_len: 4,
            runs,
            campaign: Some(campaign),
        };
        let mut results = Vec::new();
        // Campaign 0: first attack at step 2, detected at step 4 →
        // latency 2 journeys.
        for step in 0..6u64 {
            results.push(scenario(
                step,
                vec![run(step == 4, false)],
                meta(0, step, Some(2)),
            ));
        }
        // Campaign 1: never attacks; its step-0 detection is an early
        // flag and a false accusation, never a latency sample.
        for step in 0..6u64 {
            results.push(scenario(
                8 + step,
                vec![run(step == 0, step == 0)],
                meta(1, step, None),
            ));
        }
        // Campaign 2: truncated before its first attack step — not an
        // attacked campaign.
        for step in 0..3u64 {
            results.push(scenario(
                16 + step,
                vec![run(false, false)],
                meta(2, step, Some(5)),
            ));
        }
        let report = FleetReport::from_results(1, "adaptive", &["protocol"], &results);
        let adaptation = report.adaptation.as_ref().expect("campaigns present");
        assert_eq!(adaptation.campaigns, 3);
        let m = &adaptation.mechanisms[0];
        assert_eq!(m.total.campaigns, 3);
        assert_eq!(m.total.attacked, 1);
        assert_eq!(m.total.detected, 1);
        assert_eq!(m.total.latency_sum, 2);
        assert_eq!(m.total.early_detections, 1);
        assert_eq!(m.total.false_accusations, 1);
        assert_eq!(m.total.detection_under_adaptation(), 1.0);
        assert_eq!(m.total.mean_detection_latency(), 2.0);
        assert_eq!(m.per_policy["probe-then-cheat"], m.total);
        let json = report.to_json();
        assert!(json.contains("\"adaptation\":{\"journeys_per_campaign\":8"));
        assert!(json.contains("\"mean_detection_latency_journeys\":2.000000"));
        let table = report.render_table();
        assert!(table.contains("adaptation: 3 campaigns"));
        assert!(table.contains("probe-then-cheat"));
    }

    #[test]
    fn non_adaptive_fleets_emit_no_adaptation_key() {
        let report = FleetReport::from_results(1, "mixed", &["protocol"], &[]);
        assert!(report.adaptation.is_none());
        assert!(!report.to_json().contains("adaptation"));
        assert!(!report.render_table().contains("adaptation"));
    }

    #[test]
    fn mechanism_with_no_journeys_renders_na_not_zero() {
        let report = FleetReport::from_results(1, "all-honest", &["replication"], &[]);
        assert!(report.mechanisms[0].not_run());
        let table = report.render_table();
        assert!(table.contains("replication"));
        assert!(table.contains("n/a"));
        assert!(!table.contains("0.000"), "no fake 0.00 rates:\n{table}");
        let json = report.to_json();
        assert!(json.contains("\"ran\":false"));
        assert!(json.contains("\"detection_rate\":null"));
        assert!(json.contains("\"attribution_accuracy\":null"));
    }
}
