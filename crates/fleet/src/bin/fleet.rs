//! The fleet CLI: generate and run a scenario population, print the
//! detection table and machine-readable JSON metrics.
//!
//! ```text
//! cargo run --release -p refstate-fleet --bin fleet -- \
//!     --scenarios 10000 --workers 8 --seed 42 --preset replicated \
//!     --mechanisms protocol,traces,replication
//! ```
//!
//! Flags:
//!
//! * `--scenarios N` — number of generated scenarios (default 1000)
//! * `--workers N` — worker threads (default: all cores)
//! * `--seed S` — fleet seed (default 42)
//! * `--preset P` — scenario family (see `--help` for the list; default
//!   `mixed`; `replicated` generates the staged topologies that drive
//!   the `replication` mechanism)
//! * `--mechanisms LIST` — comma-separated mechanism filter, resolved
//!   through the registry (default: every registered mechanism)
//! * `--mechanism M` — single-mechanism form of the same filter;
//!   repeatable
//! * `--replay-cache` / `--no-replay-cache` — share (default) or disable
//!   the run-wide replay cache that dedups re-executions across journeys
//!   and mechanisms; the deterministic report is byte-identical either
//!   way (the determinism guard `replay_cache_does_not_change_the_report`
//!   pins it)
//! * `--check-workers N` — worker threads for owner-side bulk
//!   `check_sessions` passes inside each journey (default 1; `0` = one
//!   per core)
//! * `--telemetry off|counters|full` — observability level (default
//!   `off`; the deterministic report is byte-identical at every level,
//!   pinned by the telemetry determinism guard)
//! * `--trace-out PATH` — write the run's Chrome `trace_event` JSON
//!   (loadable in Perfetto / `chrome://tracing`; requires
//!   `--telemetry full`)
//! * `--metrics-out PATH` — write the run's metrics snapshot as JSONL
//!   (requires `--telemetry counters` or `full`)
//! * `--json-only` — suppress the human tables, emit only JSON
//! * `--no-json` — suppress the JSON blob

use refstate_fleet::{run_fleet, FleetConfig, MechanismRegistry, Preset, ProtectionMechanism};
use refstate_telemetry as telemetry;
use std::sync::Arc;

fn usage(registry: &MechanismRegistry, exit: i32) -> ! {
    eprintln!(
        "usage: fleet [--scenarios N] [--workers N] [--seed S] [--preset P] \
         [--mechanisms LIST] [--mechanism M]... \
         [--replay-cache|--no-replay-cache] [--check-workers N] \
         [--telemetry off|counters|full] [--trace-out PATH] \
         [--metrics-out PATH] [--json-only|--no-json]\n\
         presets: {}\n\
         mechanisms (registry):",
        Preset::ALL.map(|p| p.name()).join(" | "),
    );
    for mechanism in registry.iter() {
        eprintln!("  {:<14} {}", mechanism.name(), mechanism.description());
    }
    std::process::exit(exit);
}

/// Output-side options that don't live on [`FleetConfig`].
struct OutputOptions {
    json_only: bool,
    no_json: bool,
    telemetry: telemetry::TelemetryLevel,
    trace_out: Option<String>,
    metrics_out: Option<String>,
}

fn parse_args(registry: &MechanismRegistry) -> (FleetConfig, OutputOptions) {
    let mut config = FleetConfig::default();
    let mut mechanisms: Vec<Arc<dyn ProtectionMechanism>> = Vec::new();
    let mut json_only = false;
    let mut no_json = false;
    let mut level = telemetry::TelemetryLevel::Off;
    let mut trace_out = None;
    let mut metrics_out = None;

    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    let value = |i: &mut usize| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| usage(registry, 2))
    };
    let add = |list: &mut Vec<Arc<dyn ProtectionMechanism>>,
               mechanism: Arc<dyn ProtectionMechanism>| {
        if !list.iter().any(|m| m.name() == mechanism.name()) {
            list.push(mechanism);
        }
    };
    while i < args.len() {
        match args[i].as_str() {
            "--scenarios" => {
                config.scenarios = value(&mut i).parse().unwrap_or_else(|_| usage(registry, 2))
            }
            "--workers" => {
                config.workers = value(&mut i).parse().unwrap_or_else(|_| usage(registry, 2))
            }
            "--seed" => config.seed = value(&mut i).parse().unwrap_or_else(|_| usage(registry, 2)),
            "--preset" => {
                let name = value(&mut i);
                config.preset = Preset::parse(&name).unwrap_or_else(|| {
                    eprintln!("unknown preset {name:?}");
                    usage(registry, 2)
                });
            }
            "--mechanisms" => {
                let list = value(&mut i);
                let parsed = registry.parse_list(&list).unwrap_or_else(|err| {
                    eprintln!("{err}");
                    usage(registry, 2)
                });
                for mechanism in parsed {
                    add(&mut mechanisms, mechanism);
                }
            }
            "--mechanism" => {
                let name = value(&mut i);
                // Same resolution (and error message) as --mechanisms.
                let parsed = registry.parse_list(&name).unwrap_or_else(|err| {
                    eprintln!("{err}");
                    usage(registry, 2)
                });
                for mechanism in parsed {
                    add(&mut mechanisms, mechanism);
                }
            }
            "--replay-cache" => config.replay_cache = true,
            "--no-replay-cache" => config.replay_cache = false,
            "--check-workers" => {
                config.adapter.check_workers =
                    value(&mut i).parse().unwrap_or_else(|_| usage(registry, 2))
            }
            "--telemetry" => {
                let name = value(&mut i);
                level = telemetry::TelemetryLevel::parse(&name).unwrap_or_else(|| {
                    eprintln!("unknown telemetry level {name:?} (off | counters | full)");
                    usage(registry, 2)
                });
            }
            "--trace-out" => trace_out = Some(value(&mut i)),
            "--metrics-out" => metrics_out = Some(value(&mut i)),
            "--json-only" => json_only = true,
            "--no-json" => no_json = true,
            "--help" | "-h" => usage(registry, 0),
            other => {
                eprintln!("unknown flag {other:?}");
                usage(registry, 2);
            }
        }
        i += 1;
    }
    if !mechanisms.is_empty() {
        config.mechanisms = mechanisms;
    }
    if json_only && no_json {
        eprintln!("--json-only and --no-json are mutually exclusive");
        usage(registry, 2);
    }
    if trace_out.is_some() && level != telemetry::TelemetryLevel::Full {
        eprintln!("--trace-out requires --telemetry full (the trace timeline only records there)");
        usage(registry, 2);
    }
    if metrics_out.is_some() && level == telemetry::TelemetryLevel::Off {
        eprintln!("--metrics-out requires --telemetry counters or full");
        usage(registry, 2);
    }
    (
        config,
        OutputOptions {
            json_only,
            no_json,
            telemetry: level,
            trace_out,
            metrics_out,
        },
    )
}

fn write_artifact(path: &str, what: &str, contents: String) {
    match std::fs::write(path, contents) {
        Ok(()) => eprintln!("wrote {what} to {path}"),
        Err(e) => {
            eprintln!("could not write {what} to {path}: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let registry = MechanismRegistry::builtin();
    let (config, opts) = parse_args(&registry);
    telemetry::set_level(opts.telemetry);
    let run = run_fleet(&config);

    if !opts.json_only {
        print!("{}", run.report.render_table());
        println!();
        print!("{}", run.timing.render());
    }
    if !opts.no_json {
        if !opts.json_only {
            println!();
        }
        println!(
            "{{\"report\":{},\"timing\":{}}}",
            run.report.to_json(),
            run.timing.to_json()
        );
    }

    if let Some(path) = &opts.trace_out {
        let events = telemetry::drain_trace();
        write_artifact(
            path,
            "Chrome trace",
            telemetry::export::chrome_trace_json(&events),
        );
    }
    if let Some(path) = &opts.metrics_out {
        let metrics = run.metrics.clone().unwrap_or_default();
        write_artifact(
            path,
            "metrics JSONL",
            telemetry::export::metrics_jsonl(&metrics),
        );
    }
}
