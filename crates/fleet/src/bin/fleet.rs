//! The fleet CLI: generate and run a scenario population, print the
//! detection table and machine-readable JSON metrics.
//!
//! ```text
//! cargo run --release -p refstate-fleet --bin fleet -- \
//!     --scenarios 10000 --workers 8 --seed 42 --preset mixed
//! ```
//!
//! Flags:
//!
//! * `--scenarios N` — number of generated scenarios (default 1000)
//! * `--workers N` — worker threads (default: all cores)
//! * `--seed S` — fleet seed (default 42)
//! * `--preset P` — `all-honest` | `single-tamperer` | `colluding-pair` |
//!   `input-forgery` | `long-route` | `mixed` (default `mixed`)
//! * `--mechanism M` — repeatable; `unprotected` | `appraisal` |
//!   `framework` | `protocol` | `traces` (default: all five)
//! * `--json-only` — suppress the human tables, emit only JSON
//! * `--no-json` — suppress the JSON blob

use refstate_fleet::{run_fleet, FleetConfig, FleetMechanism, Preset};

fn usage(exit: i32) -> ! {
    eprintln!(
        "usage: fleet [--scenarios N] [--workers N] [--seed S] [--preset P] \
         [--mechanism M]... [--json-only|--no-json]\n\
         presets: {}\n\
         mechanisms: {}",
        Preset::ALL.map(|p| p.name()).join(" | "),
        FleetMechanism::ALL.map(|m| m.name()).join(" | "),
    );
    std::process::exit(exit);
}

fn parse_args() -> (FleetConfig, bool, bool) {
    let mut config = FleetConfig::default();
    let mut mechanisms: Vec<FleetMechanism> = Vec::new();
    let mut json_only = false;
    let mut no_json = false;

    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    let value = |i: &mut usize| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| usage(2))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--scenarios" => config.scenarios = value(&mut i).parse().unwrap_or_else(|_| usage(2)),
            "--workers" => config.workers = value(&mut i).parse().unwrap_or_else(|_| usage(2)),
            "--seed" => config.seed = value(&mut i).parse().unwrap_or_else(|_| usage(2)),
            "--preset" => {
                let name = value(&mut i);
                config.preset = Preset::parse(&name).unwrap_or_else(|| {
                    eprintln!("unknown preset {name:?}");
                    usage(2)
                });
            }
            "--mechanism" => {
                let name = value(&mut i);
                let mechanism = FleetMechanism::parse(&name).unwrap_or_else(|| {
                    eprintln!("unknown mechanism {name:?}");
                    usage(2)
                });
                if !mechanisms.contains(&mechanism) {
                    mechanisms.push(mechanism);
                }
            }
            "--json-only" => json_only = true,
            "--no-json" => no_json = true,
            "--help" | "-h" => usage(0),
            other => {
                eprintln!("unknown flag {other:?}");
                usage(2);
            }
        }
        i += 1;
    }
    if !mechanisms.is_empty() {
        config.mechanisms = mechanisms;
    }
    if json_only && no_json {
        eprintln!("--json-only and --no-json are mutually exclusive");
        usage(2);
    }
    (config, json_only, no_json)
}

fn main() {
    let (config, json_only, no_json) = parse_args();
    let run = run_fleet(&config);

    if !json_only {
        print!("{}", run.report.render_table());
        println!();
        print!("{}", run.timing.render());
    }
    if !no_json {
        if !json_only {
            println!();
        }
        println!(
            "{{\"report\":{},\"timing\":{}}}",
            run.report.to_json(),
            run.timing.to_json()
        );
    }
}
