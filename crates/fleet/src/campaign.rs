//! Adaptive adversary campaigns: stateful attackers that persist across
//! journeys.
//!
//! The per-scenario generator in [`crate::scenario`] draws every attack
//! independently — an attacker has no memory, so a mechanism's detection
//! rate says nothing about how fast it pins down an adversary that
//! *adapts*. A campaign groups [`JOURNEYS_PER_CAMPAIGN`] consecutive
//! scenario ids into one continuing engagement against a fixed topology
//! and a single stateful attacker following one of three policies:
//!
//! * **probe-then-cheat** — the attacker mounts only read probes (real
//!   attacks, but provably outside the reference-state bandwidth) until
//!   `k` journeys have passed unobserved, then switches to a mixed
//!   attack draw. Detection latency measures how quickly each mechanism
//!   reacts once the cheating starts.
//! * **coordinate** — two colluding hosts share state across journeys:
//!   after lying low, the attacker tampers every journey with a fixed
//!   accomplice — either its route successor (the §5.1 move that defeats
//!   the session protocol) or the witness assigned to its hop (the
//!   cross-set move that defeats cooperating agents).
//! * **environmental-stress** — the campaign degrades the environment
//!   instead of the computation: journeys where a route host has churned
//!   away mid-journey (an infrastructure failure, *not* an attack — no
//!   accusation may come out of it), interleaved with replays of stale
//!   agent state remembered from the previous journey.
//!
//! # Determinism
//!
//! The attacker's "memory" is never fed back from verdicts: a campaign
//! plan is a pure function of `(fleet seed, campaign index)`, generated
//! by folding one RNG stream through all of the campaign's steps. Any
//! worker can therefore regenerate the full plan for any step, and the
//! fleet stays byte-deterministic for a fixed seed regardless of worker
//! count — the same contract as [`crate::scenario::generate`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use refstate_platform::{Attack, HostId, HostSpec};
use refstate_vm::Value;

use crate::scenario::{
    build_route_agent, detectable_attack, scenario_seed, undetectable_attack, GeneratedScenario,
    Preset,
};

/// Journeys per campaign: scenario id `i` is step `i % 8` of campaign
/// `i / 8`.
pub const JOURNEYS_PER_CAMPAIGN: u64 = 8;

/// Domain-separation tag mixed into the campaign-level seed so campaign
/// plans never collide with per-scenario RNG streams.
const CAMPAIGN_TAG: u64 = 0xada2_7ca3_b5ee_d000;

/// Which campaign a scenario belongs to and what its attacker was doing
/// at this step; carried on [`GeneratedScenario`] and copied into the
/// engine's per-scenario results so the report can grade adaptation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignMeta {
    /// The campaign index (`scenario id / JOURNEYS_PER_CAMPAIGN`).
    pub campaign: u64,
    /// This scenario's step within the campaign (`id % JOURNEYS_PER_CAMPAIGN`).
    pub step: u64,
    /// The attacker policy driving the whole campaign.
    pub policy: &'static str,
    /// The first step at which the campaign mounts a real attack
    /// (probes, lie-low journeys, and churn are not attacks); `None`
    /// when the campaign never attacks.
    pub first_attack_step: Option<u64>,
    /// This step mounts a real attack (detection latency counts from the
    /// first such step).
    pub real_attack: bool,
}

/// One step of a campaign plan.
#[derive(Debug, Clone, PartialEq, Eq)]
struct StepPlan {
    /// The attack mounted this journey (`None`: honest or churn-only).
    attack: Option<Attack>,
    /// A route position whose host has churned away before the journey
    /// (its spec is omitted — the journey dies of an unknown host).
    churned: Option<usize>,
    /// This step is a real attack (see [`CampaignMeta::real_attack`]).
    real_attack: bool,
    /// The attack-class label for aggregation.
    label: &'static str,
}

/// A fully unrolled campaign: fixed topology plus one [`StepPlan`] per
/// journey, regenerated identically by any worker.
#[derive(Debug, Clone)]
struct CampaignPlan {
    route_len: usize,
    /// Off-route witness hosts (`v0 …`) so the disjoint-set mechanism is
    /// drivable; every campaign carries 2–3.
    witnesses: usize,
    trusted: Vec<bool>,
    /// The stateful attacker's fixed route position (never the home,
    /// never the last hop — the coordinate policy needs a successor).
    attacker_pos: usize,
    policy: &'static str,
    /// Per-step, per-position input offers — they vary across steps so a
    /// replayed previous-journey state is actually stale.
    offers: Vec<Vec<i64>>,
    steps: Vec<StepPlan>,
    first_attack_step: Option<u64>,
}

impl CampaignPlan {
    /// Unrolls campaign `campaign` of the fleet. Pure in
    /// `(fleet_seed, campaign)`.
    fn generate(fleet_seed: u64, campaign: u64) -> CampaignPlan {
        let mut rng = StdRng::seed_from_u64(scenario_seed(fleet_seed, CAMPAIGN_TAG ^ campaign));
        let route_len = rng.gen_range(4usize..9);
        let witnesses = rng.gen_range(2usize..4);
        let mut trusted: Vec<bool> = (0..route_len)
            .map(|pos| pos == 0 || rng.gen_bool(0.3))
            .collect();
        trusted[0] = true;
        // The attacker keeps a successor on the route (coordinate needs
        // one) and is never trusted.
        let candidates: Vec<usize> = (1..route_len - 1).filter(|&p| !trusted[p]).collect();
        let attacker_pos = if candidates.is_empty() {
            trusted[1] = false;
            1
        } else {
            candidates[rng.gen_range(0..candidates.len())]
        };

        let policy_pick = rng.gen_range(0u8..3);
        let offers: Vec<Vec<i64>> = (0..JOURNEYS_PER_CAMPAIGN)
            .map(|_| (0..route_len).map(|_| rng.gen_range(1i64..1000)).collect())
            .collect();

        let steps = match policy_pick {
            0 => {
                // Probe until k journeys pass unobserved, then cheat.
                let k = rng.gen_range(2u64..5);
                (0..JOURNEYS_PER_CAMPAIGN)
                    .map(|step| {
                        if step < k {
                            StepPlan {
                                attack: Some(Attack::ReadState),
                                churned: None,
                                real_attack: false,
                                label: "read-state",
                            }
                        } else {
                            let attack = if rng.gen_range(0u8..10) < 7 {
                                detectable_attack(&mut rng)
                            } else {
                                undetectable_attack(&mut rng)
                            };
                            StepPlan {
                                label: attack.label(),
                                attack: Some(attack),
                                churned: None,
                                real_attack: true,
                            }
                        }
                    })
                    .collect()
            }
            1 => {
                // Lie low, then tamper every journey with one fixed
                // accomplice shared across the whole campaign.
                let lie_low = rng.gen_range(1u64..4);
                let accomplice = if rng.gen_bool(0.5) {
                    // Route collusion: the successor skips its check.
                    HostId::new(format!("h{}", attacker_pos + 1))
                } else {
                    // Cross-set collusion: recruit the witness assigned
                    // to the attacker's hop.
                    HostId::new(format!("v{}", attacker_pos % witnesses))
                };
                (0..JOURNEYS_PER_CAMPAIGN)
                    .map(|step| {
                        if step < lie_low {
                            StepPlan {
                                attack: None,
                                churned: None,
                                real_attack: false,
                                label: "honest",
                            }
                        } else {
                            StepPlan {
                                attack: Some(Attack::CollaborateTamper {
                                    name: "total".into(),
                                    value: Value::Int(-(rng.gen_range(1i64..1_000_000))),
                                    accomplice: accomplice.clone(),
                                }),
                                churned: None,
                                real_attack: true,
                                label: "collaborate-tamper",
                            }
                        }
                    })
                    .collect()
            }
            _ => {
                // Degrade the environment: churn and stale-state replay.
                let warmup = rng.gen_range(1u64..3);
                let mut steps = Vec::with_capacity(JOURNEYS_PER_CAMPAIGN as usize);
                for step in 0..JOURNEYS_PER_CAMPAIGN {
                    if step < warmup {
                        steps.push(StepPlan {
                            attack: None,
                            churned: None,
                            real_attack: false,
                            label: "honest",
                        });
                    } else if rng.gen_bool(0.5) {
                        // A route host leaves the network mid-journey:
                        // an infrastructure failure, not an attack.
                        steps.push(StepPlan {
                            attack: None,
                            churned: Some(rng.gen_range(1usize..route_len)),
                            real_attack: false,
                            label: "churn",
                        });
                    } else {
                        // Replay the previous journey's final total as
                        // this journey's resulting state. Nudge on the
                        // (rare) collision with the honest partial sum
                        // at the attacker — stale means *different*.
                        let step_idx = step as usize;
                        let mut stale: i64 = offers[step_idx - 1].iter().sum();
                        let partial: i64 = offers[step_idx][..=attacker_pos].iter().sum();
                        if stale == partial {
                            stale += 1;
                        }
                        steps.push(StepPlan {
                            attack: Some(Attack::ReplayStaleState {
                                name: "total".into(),
                                value: Value::Int(stale),
                            }),
                            churned: None,
                            real_attack: true,
                            label: "replay-stale-state",
                        });
                    }
                }
                steps
            }
        };
        let policy = match policy_pick {
            0 => "probe-then-cheat",
            1 => "coordinate",
            _ => "environmental-stress",
        };
        let first_attack_step = steps
            .iter()
            .position(|s: &StepPlan| s.real_attack)
            .map(|p| p as u64);

        CampaignPlan {
            route_len,
            witnesses,
            trusted,
            attacker_pos,
            policy,
            offers,
            steps,
            first_attack_step,
        }
    }
}

/// Generates scenario `id` of an adaptive fleet: step `id % 8` of
/// campaign `id / 8`, instantiated from the campaign's unrolled plan.
pub fn generate_adaptive(fleet_seed: u64, id: u64) -> GeneratedScenario {
    let campaign = id / JOURNEYS_PER_CAMPAIGN;
    let step = (id % JOURNEYS_PER_CAMPAIGN) as usize;
    let plan = CampaignPlan::generate(fleet_seed, campaign);
    let step_plan = &plan.steps[step];

    let mut specs = Vec::with_capacity(plan.route_len + plan.witnesses);
    for pos in 0..plan.route_len {
        if step_plan.churned == Some(pos) {
            continue; // the host left the network — no spec, no keys
        }
        let mut spec = HostSpec::new(format!("h{pos}"));
        if plan.trusted[pos] {
            spec = spec.trusted();
        }
        let offer = plan.offers[step][pos];
        for _ in 0..3 {
            spec = spec.with_input("n", Value::Int(offer));
        }
        spec = spec.with_input("unused", Value::Int(0));
        if pos == plan.attacker_pos {
            if let Some(attack) = &step_plan.attack {
                spec = spec.malicious(attack.clone());
            }
        }
        specs.push(spec);
    }
    for w in 0..plan.witnesses {
        specs.push(HostSpec::new(format!("v{w}")));
    }

    let attacker = step_plan
        .attack
        .clone()
        .map(|attack| (HostId::new(format!("h{}", plan.attacker_pos)), attack));

    GeneratedScenario {
        id,
        kind: Preset::Adaptive,
        start: HostId::new("h0"),
        route: (0..plan.route_len)
            .map(|p| HostId::new(format!("h{p}")))
            .collect(),
        stages: None,
        agent: build_route_agent(id, plan.route_len),
        specs,
        attacker,
        attack_label: step_plan.label,
        churned: step_plan.churned.map(|pos| HostId::new(format!("h{pos}"))),
        campaign: Some(CampaignMeta {
            campaign,
            step: step as u64,
            policy: plan.policy,
            first_attack_step: plan.first_attack_step,
            real_attack: step_plan.real_attack,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plans(seed: u64, n: u64) -> Vec<CampaignPlan> {
        (0..n).map(|c| CampaignPlan::generate(seed, c)).collect()
    }

    #[test]
    fn plans_are_deterministic() {
        for campaign in 0..20 {
            let a = CampaignPlan::generate(42, campaign);
            let b = CampaignPlan::generate(42, campaign);
            assert_eq!(a.steps, b.steps);
            assert_eq!(a.trusted, b.trusted);
            assert_eq!(a.offers, b.offers);
            assert_eq!(a.attacker_pos, b.attacker_pos);
        }
    }

    #[test]
    fn scenario_generation_matches_its_plan() {
        for id in 0..64 {
            let s = generate_adaptive(42, id);
            let meta = s.campaign.as_ref().expect("campaign meta present");
            assert_eq!(meta.campaign, id / JOURNEYS_PER_CAMPAIGN);
            assert_eq!(meta.step, id % JOURNEYS_PER_CAMPAIGN);
            assert_eq!(s.kind, Preset::Adaptive);
            // Off-route witness hosts are always present (spares).
            let spares = s
                .specs
                .iter()
                .filter(|spec| !s.route.contains(&spec.id))
                .count();
            assert!((2..=3).contains(&spares), "got {spares} witnesses");
        }
    }

    #[test]
    fn probe_then_cheat_probes_before_the_first_attack() {
        let mut seen = 0;
        let mut detectable = 0;
        for plan in plans(42, 40) {
            if plan.policy != "probe-then-cheat" {
                continue;
            }
            seen += 1;
            let first = plan.first_attack_step.expect("probe campaigns cheat") as usize;
            assert!((2..5).contains(&first), "k in 2..5, got {first}");
            for step in &plan.steps[..first] {
                assert_eq!(step.attack, Some(Attack::ReadState));
                assert!(!step.real_attack, "probes are not attacks");
            }
            for step in &plan.steps[first..] {
                assert!(step.real_attack);
                let attack = step.attack.as_ref().expect("cheat steps attack");
                detectable += attack.detectable_by_reference_state() as usize;
            }
        }
        assert!(seen > 5, "probe-then-cheat is drawn");
        assert!(
            detectable > seen,
            "the cheat phase mounts catchable attacks"
        );
    }

    #[test]
    fn coordinate_keeps_one_accomplice_for_the_whole_campaign() {
        let mut route_collusion = 0;
        let mut cross_set = 0;
        for plan in plans(42, 60) {
            if plan.policy != "coordinate" {
                continue;
            }
            let accomplices: std::collections::BTreeSet<String> = plan
                .steps
                .iter()
                .filter_map(|s| match &s.attack {
                    Some(Attack::CollaborateTamper { accomplice, .. }) => {
                        Some(accomplice.to_string())
                    }
                    _ => None,
                })
                .collect();
            assert_eq!(accomplices.len(), 1, "the partner persists across journeys");
            let accomplice = accomplices.into_iter().next().unwrap();
            if accomplice == format!("h{}", plan.attacker_pos + 1) {
                route_collusion += 1;
            } else {
                assert_eq!(
                    accomplice,
                    format!("v{}", plan.attacker_pos % plan.witnesses),
                    "cross-set collusion recruits the assigned witness"
                );
                cross_set += 1;
            }
        }
        assert!(route_collusion > 0 && cross_set > 0, "both flavours drawn");
    }

    #[test]
    fn stale_replay_differs_from_the_honest_partial_sum() {
        let mut replays = 0;
        for plan in plans(42, 60) {
            for (idx, step) in plan.steps.iter().enumerate() {
                let Some(Attack::ReplayStaleState { value, .. }) = &step.attack else {
                    continue;
                };
                replays += 1;
                let partial: i64 = plan.offers[idx][..=plan.attacker_pos].iter().sum();
                assert_ne!(value, &Value::Int(partial), "stale means different");
            }
        }
        assert!(replays > 10, "environmental stress replays stale state");
    }

    #[test]
    fn churned_steps_omit_the_host_but_keep_the_route() {
        let mut churned = 0;
        for id in 0..400 {
            let s = generate_adaptive(42, id);
            let Some(gone) = &s.churned else { continue };
            churned += 1;
            assert!(s.route.contains(gone), "the itinerary still names it");
            assert!(
                !s.specs.iter().any(|spec| &spec.id == gone),
                "the churned host has no spec"
            );
            assert!(s.attacker.is_none(), "churn is not an attack");
            assert_eq!(s.attack_label, "churn");
        }
        assert!(churned > 10, "churn occurs");
    }

    #[test]
    fn attacker_is_untrusted_and_keeps_a_successor() {
        for plan in plans(7, 40) {
            assert!(plan.attacker_pos >= 1);
            assert!(plan.attacker_pos < plan.route_len - 1);
            assert!(!plan.trusted[plan.attacker_pos]);
        }
    }
}
