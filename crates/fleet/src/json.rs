//! A minimal, dependency-free JSON emitter.
//!
//! The fleet reports need canonical, byte-stable JSON (the determinism
//! test compares raw bytes), so floating-point fields derived from
//! count ratios are emitted with a fixed `{:.6}` format rather than a
//! shortest-round-trip algorithm.

use std::fmt::Write as _;

/// An append-only JSON writer with automatic comma placement.
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    /// One "has entries already" flag per open container.
    has_entries: Vec<bool>,
    /// Set between a `key()` and its value: the value continues the
    /// current entry instead of starting a new one.
    after_key: bool,
}

impl JsonWriter {
    /// A fresh writer.
    pub fn new() -> JsonWriter {
        JsonWriter::default()
    }

    /// Emits the separating comma when starting a new entry in the
    /// current container.
    fn start_entry(&mut self) {
        if self.after_key {
            self.after_key = false;
            return;
        }
        if let Some(has) = self.has_entries.last_mut() {
            if *has {
                self.out.push(',');
            }
            *has = true;
        }
    }

    /// Opens `{`.
    pub fn begin_object(&mut self) {
        self.start_entry();
        self.out.push('{');
        self.has_entries.push(false);
    }

    /// Closes `}`.
    pub fn end_object(&mut self) {
        self.has_entries.pop();
        self.out.push('}');
    }

    /// Opens `[`.
    pub fn begin_array(&mut self) {
        self.start_entry();
        self.out.push('[');
        self.has_entries.push(false);
    }

    /// Closes `]`.
    pub fn end_array(&mut self) {
        self.has_entries.pop();
        self.out.push(']');
    }

    /// Emits an object key; the next emitted value belongs to it.
    pub fn key(&mut self, key: &str) {
        self.start_entry();
        self.push_string(key);
        self.out.push(':');
        self.after_key = true;
    }

    /// `"key": <u64>`.
    pub fn field_u64(&mut self, key: &str, value: u64) {
        self.key(key);
        self.start_entry();
        let _ = write!(self.out, "{value}");
    }

    /// `"key": "<str>"`.
    pub fn field_str(&mut self, key: &str, value: &str) {
        self.key(key);
        self.start_entry();
        self.push_string(value);
    }

    /// `"key": <f64>` with fixed 6-decimal formatting (byte-stable).
    pub fn field_f64(&mut self, key: &str, value: f64) {
        self.key(key);
        self.start_entry();
        let _ = write!(self.out, "{value:.6}");
    }

    /// `"key": <num/den>` as a fixed-format rate (0 when `den` is 0).
    pub fn field_rate(&mut self, key: &str, num: u64, den: u64) {
        let rate = if den == 0 {
            0.0
        } else {
            num as f64 / den as f64
        };
        self.field_f64(key, rate);
    }

    /// `"key": <num/den>` as a fixed-format rate, or `null` when `den` is
    /// 0 — an *undefined* measurement (e.g. the attribution accuracy of a
    /// mechanism that detected nothing, or any rate of a mechanism that
    /// ran no journeys), as opposed to a measured zero.
    pub fn field_rate_or_null(&mut self, key: &str, num: u64, den: u64) {
        if den == 0 {
            self.field_null(key);
        } else {
            self.field_f64(key, num as f64 / den as f64);
        }
    }

    /// `"key": null`.
    pub fn field_null(&mut self, key: &str) {
        self.key(key);
        self.start_entry();
        self.out.push_str("null");
    }

    /// `"key": true|false`.
    pub fn field_bool(&mut self, key: &str, value: bool) {
        self.key(key);
        self.start_entry();
        self.out.push_str(if value { "true" } else { "false" });
    }

    /// Returns the serialized JSON.
    pub fn finish(self) -> String {
        debug_assert!(self.has_entries.is_empty(), "unclosed JSON container");
        self.out
    }

    fn push_string(&mut self, s: &str) {
        self.out.push('"');
        for c in s.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(self.out, "\\u{:04x}", c as u32);
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_structure_with_commas() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_u64("a", 1);
        w.field_str("b", "x\"y");
        w.key("c");
        w.begin_array();
        w.begin_object();
        w.field_f64("r", 0.5);
        w.end_object();
        w.begin_object();
        w.field_rate("r", 1, 4);
        w.end_object();
        w.end_array();
        w.key("d");
        w.begin_object();
        w.end_object();
        w.end_object();
        assert_eq!(
            w.finish(),
            r#"{"a":1,"b":"x\"y","c":[{"r":0.500000},{"r":0.250000}],"d":{}}"#
        );
    }

    #[test]
    fn null_and_bool_fields() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_rate_or_null("undefined", 0, 0);
        w.field_rate_or_null("half", 1, 2);
        w.field_bool("ran", false);
        w.end_object();
        assert_eq!(
            w.finish(),
            r#"{"undefined":null,"half":0.500000,"ran":false}"#
        );
    }

    #[test]
    fn control_chars_escaped() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("k", "a\nb\u{1}");
        w.end_object();
        assert_eq!(w.finish(), "{\"k\":\"a\\nb\\u0001\"}");
    }
}
