//! The journey scheduler: a crossbeam-channel worker pool driving
//! thousands of protected journeys concurrently.
//!
//! The idiom mirrors `refstate_platform::ThreadedNetwork`: channels carry
//! the work, each worker owns its state, and the main thread joins on a
//! results channel. Three properties make the pool fleet-grade:
//!
//! * **per-scenario RNG streams** — every scenario derives its own seed
//!   from `(fleet seed, scenario id)`, so results do not depend on which
//!   worker ran it or in what order (worker-count invariance),
//! * **pooled key material** — DSA key generation dominates host
//!   construction, so workers draw host keys from a pre-generated pool
//!   (deterministically indexed by scenario and position) through
//!   [`Host::with_keys`] instead of generating per journey,
//! * **deterministic result ordering** — results are collected and sorted
//!   by scenario id before aggregation, so the [`FleetReport`] is
//!   byte-identical for a fixed seed.
//!
//! Mechanism dispatch goes exclusively through the
//! [`refstate_mechanisms::api`] surface: the engine resolves
//! [`ProtectionMechanism`]s from a [`MechanismRegistry`] (or takes them
//! directly in [`FleetConfig::mechanisms`]), checks each profile's
//! topology against the generated scenario, and hands compatible
//! mechanisms a [`JourneyCtx`]. A mechanism whose profile is incompatible
//! with a scenario (e.g. `replication` on a stage-less linear route) is
//! skipped and surfaces as `n/a` in the report rather than a fake 0.00
//! rate.

use std::fmt;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use rand::rngs::StdRng;
use rand::SeedableRng;
use refstate_core::protocol::host_directory;
use refstate_core::{ReplayCache, VerificationPipeline};
use refstate_crypto::{DsaKeyPair, DsaParams};
use refstate_mechanisms::api::{
    run_instrumented, JourneyCtx, JourneyVerdict, MechanismConfig, MechanismRegistry,
    ProtectionMechanism,
};
use refstate_platform::{Event, EventLog, Host};
use refstate_telemetry as telemetry;

use crate::campaign::CampaignMeta;
use crate::report::{FleetReport, FleetTiming, LatencyPercentiles, StageBreakdown};
use crate::scenario::{self, GeneratedScenario, Preset};

/// Configuration of one fleet run.
#[derive(Clone)]
pub struct FleetConfig {
    /// Number of scenarios to generate and run.
    pub scenarios: u64,
    /// Worker threads (0 = one per available core).
    pub workers: usize,
    /// The fleet seed; fixes the entire scenario population.
    pub seed: u64,
    /// The scenario family to draw from.
    pub preset: Preset,
    /// The mechanisms to run each scenario under (resolve them from a
    /// [`MechanismRegistry`]; defaults to every built-in mechanism).
    pub mechanisms: Vec<Arc<dyn ProtectionMechanism>>,
    /// Size of the pre-generated DSA key pool hosts draw from.
    pub key_pool: usize,
    /// Shared mechanism configuration.
    pub adapter: MechanismConfig,
    /// Share one [`ReplayCache`] across every journey, mechanism, and
    /// worker of the run (on by default), so duplicate re-executions of
    /// the same session collapse into cache hits. Off reproduces the
    /// replay-per-check behaviour; the [`FleetReport`] is byte-identical
    /// either way (pinned by a test — the cache is a memo, not a
    /// semantic).
    ///
    /// The owner-side check-worker knob lives on
    /// [`MechanismConfig::check_workers`] (`adapter.check_workers`).
    pub replay_cache: bool,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            scenarios: 1000,
            workers: 0,
            seed: 42,
            preset: Preset::Mixed,
            mechanisms: MechanismRegistry::builtin().all(),
            key_pool: 64,
            adapter: MechanismConfig::default(),
            replay_cache: true,
        }
    }
}

impl fmt::Debug for FleetConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FleetConfig")
            .field("scenarios", &self.scenarios)
            .field("workers", &self.workers)
            .field("seed", &self.seed)
            .field("preset", &self.preset)
            .field(
                "mechanisms",
                &self.mechanisms.iter().map(|m| m.name()).collect::<Vec<_>>(),
            )
            .field("key_pool", &self.key_pool)
            .finish_non_exhaustive()
    }
}

impl FleetConfig {
    /// The effective worker count (resolves 0 to the machine's
    /// parallelism).
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        }
    }

    /// The configured mechanism names, in run order.
    pub fn mechanism_names(&self) -> Vec<&'static str> {
        self.mechanisms.iter().map(|m| m.name()).collect()
    }
}

/// One mechanism's verdict on one scenario, scored against the scenario's
/// actual attacker.
#[derive(Debug, Clone)]
pub struct MechanismRun {
    /// The mechanism's registry name.
    pub mechanism: &'static str,
    /// The mechanism flagged the run.
    pub detected: bool,
    /// Somebody other than the actual attacker was accused.
    pub false_accusation: bool,
    /// `Some(true)` when the detection blamed the actual attacker;
    /// `Some(false)` when it blamed someone else; `None` when nothing was
    /// detected or the scenario had no attacker.
    pub correct_culprit: Option<bool>,
    /// The journey ran to its halt instruction.
    pub completed: bool,
    /// The journey died of an infrastructure failure.
    pub infra_error: bool,
    /// Wall time of this journey (excluded from the deterministic report).
    pub latency: Duration,
}

/// Everything one scenario produced across its mechanism runs.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// The scenario id.
    pub id: u64,
    /// The concrete scenario family it was drawn as.
    pub kind: &'static str,
    /// The attack-class label (`"honest"` when no attacker).
    pub attack_label: &'static str,
    /// Route length of the scenario (primary path).
    pub route_len: usize,
    /// One entry per *compatible* configured mechanism, in configuration
    /// order (topology-incompatible mechanisms are absent — they surface
    /// as `n/a` in the report).
    pub runs: Vec<MechanismRun>,
    /// Campaign membership when the scenario was drawn from an adaptive
    /// campaign (see [`crate::campaign`]); feeds the report's
    /// [`AdaptationReport`](crate::report::AdaptationReport).
    pub campaign: Option<CampaignMeta>,
}

/// A completed fleet run.
#[derive(Debug)]
pub struct FleetRun {
    /// The deterministic aggregate (counts and rates).
    pub report: FleetReport,
    /// Wall-clock facts (throughput, latency percentiles).
    pub timing: FleetTiming,
    /// Raw per-scenario results, ordered by scenario id.
    pub results: Vec<ScenarioResult>,
    /// Telemetry metrics accumulated by this run (a delta over the
    /// process-wide collector, so concurrent runs don't bleed into each
    /// other's exports). `None` when telemetry is off.
    pub metrics: Option<telemetry::MetricsSnapshot>,
}

/// Scores a verdict against the scenario's actual attacker.
fn score(
    mechanism: &'static str,
    verdict: JourneyVerdict,
    scenario: &GeneratedScenario,
    latency: Duration,
) -> MechanismRun {
    let attacker = scenario.attacker.as_ref().map(|(host, _)| host);
    let false_accusation = verdict
        .accused
        .iter()
        .any(|accused| Some(accused) != attacker);
    let correct_culprit = if verdict.detected {
        attacker.map(|a| verdict.accused.contains(a))
    } else {
        None
    };
    MechanismRun {
        mechanism,
        detected: verdict.detected,
        false_accusation,
        correct_culprit,
        completed: verdict.completed,
        infra_error: verdict.infra_error,
        latency,
    }
}

/// Runs every compatible configured mechanism over scenario `id` (fresh
/// hosts per mechanism — feeds are consumed by execution).
fn run_scenario(
    id: u64,
    config: &FleetConfig,
    keys: &[DsaKeyPair],
    pipeline: &Arc<VerificationPipeline>,
) -> ScenarioResult {
    let scenario = scenario::generate(config.seed, id, config.preset);
    let has_stages = scenario.stages.is_some();
    // Off-route hosts (replicas or witness spares) make the disjoint-set
    // topology drivable.
    let has_spares = scenario
        .specs
        .iter()
        .any(|spec| !scenario.route.contains(&spec.id));
    // Campaign steps run under one span so traces group each journey by
    // its engagement.
    let _campaign_span = scenario
        .campaign
        .as_ref()
        .map(|_| telemetry::span("fleet.campaign.step", "fleet"));
    let mut runs = Vec::with_capacity(config.mechanisms.len());
    for mechanism in &config.mechanisms {
        if !mechanism.profile().compatible_with(has_stages, has_spares) {
            continue;
        }
        let mut hosts: Vec<Host> = scenario
            .specs
            .iter()
            .enumerate()
            .map(|(pos, spec)| {
                let key =
                    keys[(id as usize).wrapping_mul(31).wrapping_add(pos) % keys.len()].clone();
                // pos+1 keeps h0's stream distinct from the generator's
                // own seed for this scenario (pos 0 would XOR with zero).
                let session_seed =
                    scenario::scenario_seed(config.seed, id ^ ((pos as u64 + 1) << 48));
                Host::with_keys(spec.clone(), key, session_seed)
            })
            .collect();
        let directory = host_directory(&hosts);
        let log = EventLog::new();
        if let Some(gone) = &scenario.churned {
            log.record(Event::HostChurned { host: gone.clone() });
        }
        let start = Instant::now();
        // The ctx's own RNG stream: scenario-derived, scheduling-free.
        let ctx_seed = scenario::scenario_seed(config.seed, id ^ (1u64 << 63));
        let mut ctx = JourneyCtx::new(
            &mut hosts,
            scenario.route.clone(),
            scenario.agent.clone(),
            &directory,
            &config.adapter,
            &log,
            ctx_seed,
        )
        .with_pipeline(pipeline.clone());
        if let Some(stages) = &scenario.stages {
            ctx = ctx.with_stages(stages.clone());
        }
        let verdict = run_instrumented(mechanism.as_ref(), &mut ctx);
        let latency = start.elapsed();
        runs.push(score(mechanism.name(), verdict, &scenario, latency));
    }
    ScenarioResult {
        id,
        kind: scenario.kind.name(),
        attack_label: scenario.attack_label,
        route_len: scenario.route_len(),
        runs,
        campaign: scenario.campaign,
    }
}

/// Runs the whole fleet and aggregates the results.
///
/// Deterministic for a fixed `config.seed` (and mechanism/preset
/// selection): the [`FleetReport`] — including its canonical JSON — is
/// byte-identical across runs and worker counts. Timing is not.
pub fn run_fleet(config: &FleetConfig) -> FleetRun {
    assert!(
        !config.mechanisms.is_empty(),
        "configure at least one mechanism"
    );
    assert!(config.key_pool > 0, "key pool must be non-empty");
    let started = Instant::now();
    let workers = config.effective_workers();

    // Telemetry is observational only: everything below feeds FleetTiming
    // and the exported artifacts, never the deterministic FleetReport. The
    // delta keeps this run's metrics separable even when other fleets ran
    // earlier in the same process (the collector is process-global).
    let metrics_before = telemetry::enabled().then(telemetry::snapshot);

    // One verification pipeline for the whole run: every journey's
    // re-execution funnels through it, and with the cache on, duplicate
    // sessions across hops, replicas, and mechanisms replay once.
    let pipeline = Arc::new(if config.replay_cache {
        VerificationPipeline::with_cache(Arc::new(ReplayCache::new()))
    } else {
        VerificationPipeline::uncached()
    });

    // One shared DSA group and key pool (generation is the expensive
    // part; hosts index into the pool deterministically).
    let keygen = telemetry::span("fleet.keygen", "fleet");
    let params = DsaParams::test_group_256();
    let mut key_rng = StdRng::seed_from_u64(config.seed ^ 0x5ee3_d00d_cafe_f00d);
    let keys: Vec<DsaKeyPair> = (0..config.key_pool)
        .map(|_| DsaKeyPair::generate(&params, &mut key_rng))
        .collect();
    // Build every pooled key's fixed-base verification table up front:
    // the worker threads' clones share the caches, so no journey pays a
    // first-use table build inside its measured latency.
    for key in &keys {
        key.public().precompute();
    }
    drop(keygen);

    // The ThreadedNetwork idiom: a pre-filled job queue, cloned receivers,
    // one results channel back to the collector.
    let (job_tx, job_rx): (Sender<u64>, Receiver<u64>) = unbounded();
    let (result_tx, result_rx): (Sender<ScenarioResult>, Receiver<ScenarioResult>) = unbounded();
    for id in 0..config.scenarios {
        job_tx.send(id).expect("queue open");
    }
    drop(job_tx); // workers drain until empty

    let mut handles = Vec::with_capacity(workers);
    for worker in 0..workers as u32 {
        let job_rx = job_rx.clone();
        let result_tx = result_tx.clone();
        let config = config.clone();
        let keys = keys.clone();
        let pipeline = pipeline.clone();
        handles.push(thread::spawn(move || {
            loop {
                // Queue wait vs run time: the wait timer only records when
                // a job actually arrives (the final empty-queue recv is
                // shutdown, not contention).
                let wait = telemetry::Timer::start();
                let Ok(id) = job_rx.recv() else { break };
                wait.finish("fleet.queue_wait", "fleet");
                let busy = telemetry::Timer::start();
                let result = run_scenario(id, &config, &keys, &pipeline);
                let spent = busy.finish("fleet.scenario", "fleet");
                telemetry::count_indexed("fleet.worker.scenarios", worker, 1);
                telemetry::count_indexed("fleet.worker.busy_us", worker, spent.as_micros() as u64);
                if result_tx.send(result).is_err() {
                    return; // collector gone; shut down quietly
                }
            }
        }));
    }
    drop(result_tx);

    let mut results: Vec<ScenarioResult> = Vec::with_capacity(config.scenarios as usize);
    while let Ok(result) = result_rx.recv() {
        results.push(result);
    }
    for handle in handles {
        let _ = handle.join();
    }
    // Deterministic ordering regardless of worker interleaving.
    results.sort_unstable_by_key(|r| r.id);

    let wall = started.elapsed();
    let names = config.mechanism_names();
    let report = FleetReport::from_results(config.seed, config.preset.name(), &names, &results);
    let journeys = results.iter().map(|r| r.runs.len() as u64).sum::<u64>();
    let latencies = names
        .iter()
        .filter_map(|&mechanism| {
            let mut lats: Vec<Duration> = results
                .iter()
                .flat_map(|r| &r.runs)
                .filter(|run| run.mechanism == mechanism)
                .map(|run| run.latency)
                .collect();
            LatencyPercentiles::from_latencies(&mut lats).map(|p| (mechanism, p))
        })
        .collect();
    // This run's metric delta: stage breakdowns key on the mechanism name
    // each worker set as its telemetry scope while the journey ran.
    let metrics = metrics_before.map(|before| telemetry::snapshot().delta_since(&before));
    let stages = match &metrics {
        Some(delta) => names
            .iter()
            .map(|&name| (name, StageBreakdown::from_metrics(delta, name)))
            .filter(|(_, breakdown)| !breakdown.is_empty())
            .collect(),
        None => Vec::new(),
    };
    let timing = FleetTiming {
        workers,
        wall,
        scenarios_per_sec: results.len() as f64 / wall.as_secs_f64().max(f64::EPSILON),
        journeys_per_sec: journeys as f64 / wall.as_secs_f64().max(f64::EPSILON),
        latencies,
        check_workers: config.adapter.check_workers,
        replay_cache: config.replay_cache,
        replay: pipeline.snapshot(),
        telemetry: telemetry::level(),
        stages,
    };

    FleetRun {
        report,
        timing,
        results,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mechanisms(names: &[&str]) -> Vec<Arc<dyn ProtectionMechanism>> {
        let registry = MechanismRegistry::builtin();
        names
            .iter()
            .map(|name| registry.get(name).expect("known mechanism"))
            .collect()
    }

    fn small_config(names: &[&str]) -> FleetConfig {
        FleetConfig {
            scenarios: 40,
            workers: 4,
            seed: 7,
            preset: Preset::Mixed,
            mechanisms: mechanisms(names),
            key_pool: 8,
            ..FleetConfig::default()
        }
    }

    #[test]
    fn results_are_ordered_and_complete() {
        let run = run_fleet(&small_config(&["protocol"]));
        assert_eq!(run.results.len(), 40);
        assert!(run.results.windows(2).all(|w| w[0].id < w[1].id));
        assert!(run.results.iter().all(|r| r.runs.len() == 1));
        assert_eq!(run.report.scenarios, 40);
    }

    #[test]
    fn timing_has_percentiles_per_mechanism() {
        let run = run_fleet(&small_config(&["unprotected", "framework"]));
        assert_eq!(run.timing.latencies.len(), 2);
        assert!(run.timing.journeys_per_sec > 0.0);
        for (_, p) in &run.timing.latencies {
            assert!(p.p50 <= p.p90 && p.p90 <= p.p99 && p.p99 <= p.max);
        }
    }

    #[test]
    fn incompatible_mechanisms_are_skipped_not_zeroed() {
        // Replication cannot run a linear mixed fleet: zero journeys (an
        // n/a report row), never a fake detection count.
        let run = run_fleet(&small_config(&["replication", "unprotected"]));
        assert!(run.results.iter().all(|r| r.runs.len() == 1));
        let replication = &run.report.mechanisms[0];
        assert_eq!(replication.name, "replication");
        assert_eq!(replication.total.journeys, 0);
        assert_eq!(run.report.mechanisms[1].total.journeys, 40);
        // No latency percentile row for a mechanism that never ran.
        assert_eq!(run.timing.latencies.len(), 1);
    }
}
