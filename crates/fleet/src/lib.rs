//! # refstate-fleet — the fleet-scale scenario engine
//!
//! The paper's evaluation (and `refstate-mechanisms::matrix`) runs a
//! *single* hand-built journey per mechanism. This crate judges the
//! mechanisms the way the related work demands — across *populations* of
//! hosts and attack mixes:
//!
//! * [`scenario`] — a seeded generator producing randomized host
//!   topologies (route length, trust mix, per-host input feeds) and
//!   attack draws from the `Attack` taxonomy, organized into
//!   [`Preset`]s (`all-honest`, `single-tamperer`, `colluding-pair`,
//!   `input-forgery`, `long-route`, `replicated`, `mixed`) — the
//!   `replicated` family generates staged replica topologies so the
//!   topology-changing `replication` mechanism is fleet-drivable, and
//!   the `cooperating` family adds off-route witness hosts for the
//!   disjoint-set mechanism,
//! * [`campaign`] — adaptive adversary campaigns: stateful attackers
//!   (probe-then-cheat, coordinated collusion, environmental stress)
//!   persisting across the journeys of the `adaptive` preset, graded by
//!   the report's [`AdaptationReport`] (detection latency in journeys,
//!   detection-under-adaptation rate, false-accusation rate),
//! * [`engine`] — a crossbeam-channel worker pool (the
//!   `ThreadedNetwork` idiom) driving thousands of protected journeys
//!   concurrently, with per-scenario RNG streams, a pooled DSA key
//!   directory, and results ordered by scenario id; every mechanism is
//!   dispatched through the [`MechanismRegistry`] — no engine code names
//!   a concrete mechanism,
//! * [`report`] — [`FleetReport`]: detection rate, false-accusation
//!   rate, and culprit-attribution accuracy per mechanism × attack
//!   class (deterministic, byte-stable JSON; a mechanism that ran no
//!   journeys reports `n/a`/`null`, never a fake 0.00), plus
//!   [`FleetTiming`]: journeys/sec and latency percentiles
//!   (deliberately kept out of the deterministic surface).
//!
//! The `fleet` binary is the CLI face:
//!
//! ```text
//! cargo run --release -p refstate-fleet --bin fleet -- \
//!     --scenarios 10000 --workers 8 --seed 42 --preset replicated \
//!     --mechanisms protocol,traces,replication
//! ```
//!
//! # Determinism contract
//!
//! For a fixed `(seed, preset, mechanisms)` the engine produces the same
//! [`FleetReport`] — byte-identical [`FleetReport::to_json`] output —
//! regardless of worker count, scheduling, or machine. Everything
//! wall-clock-dependent lives in [`FleetTiming`].
//!
//! # Example
//!
//! ```
//! use refstate_fleet::{run_fleet, FleetConfig, MechanismRegistry, Preset};
//!
//! let registry = MechanismRegistry::builtin();
//! let config = FleetConfig {
//!     scenarios: 50,
//!     workers: 2,
//!     seed: 7,
//!     preset: Preset::SingleTamperer,
//!     mechanisms: vec![registry.get("protocol").expect("built in")],
//!     ..FleetConfig::default()
//! };
//! let run = run_fleet(&config);
//! let protocol = &run.report.mechanisms[0];
//! assert_eq!(protocol.total.journeys, 50);
//! assert_eq!(protocol.total.detected, 50, "every single-tamperer caught");
//! assert_eq!(protocol.total.false_accusations, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod engine;
pub mod json;
pub mod report;
pub mod scenario;

pub use campaign::{generate_adaptive, CampaignMeta, JOURNEYS_PER_CAMPAIGN};
pub use engine::{run_fleet, FleetConfig, FleetRun, MechanismRun, ScenarioResult};
pub use refstate_mechanisms::api::{
    JourneyCtx, JourneyVerdict, MechanismConfig, MechanismProfile, MechanismRegistry,
    ProtectionMechanism, RouteTopology, UnknownMechanism,
};
pub use report::{
    AdaptationCell, AdaptationReport, CellStats, FleetReport, FleetTiming, LatencyPercentiles,
    MechanismAdaptation, MechanismReport, StageBreakdown, StageStats,
};
pub use scenario::{generate, GeneratedScenario, Preset};
