//! Vendored shim for the subset of `criterion` this workspace's benches
//! use. It is a *timing stub*: each benchmark is warmed up, run long
//! enough for a stable mean, and reported as a single line — no
//! statistics, plots, or saved baselines.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver (mirror of `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_owned(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks (mirror of `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub sizes runs by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub sizes runs by time.
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Records the per-iteration workload so reports can show a rate.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&label, self.throughput, f);
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I, P, F>(&mut self, id: I, input: &P, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher, &P),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&label, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark identifier (mirror of `criterion::BenchmarkId`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Conversion into a display label for bench ids.
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Per-iteration workload descriptor for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Passed to the benchmark closure; call [`Bencher::iter`].
#[derive(Debug, Default)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, choosing an iteration count that runs for roughly
    /// 100 ms (min 10 iterations).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up / calibration pass.
        let t = Instant::now();
        black_box(routine());
        let once = t.elapsed().max(Duration::from_nanos(50));
        let target = Duration::from_millis(100);
        let iters = (target.as_nanos() / once.as_nanos()).clamp(10, 1_000_000) as u64;

        let t = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed = t.elapsed();
        self.iterations = iters;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, throughput: Option<Throughput>, mut f: F) {
    let mut bencher = Bencher::default();
    f(&mut bencher);
    if bencher.iterations == 0 {
        println!("{label:<48} (no iterations recorded)");
        return;
    }
    let per_iter = bencher.elapsed.as_secs_f64() / bencher.iterations as f64;
    let rate = match throughput {
        Some(Throughput::Bytes(n)) => {
            format!("  {:>10.1} MiB/s", n as f64 / per_iter / (1024.0 * 1024.0))
        }
        Some(Throughput::Elements(n)) => {
            format!("  {:>10.0} elem/s", n as f64 / per_iter)
        }
        None => String::new(),
    };
    println!(
        "{label:<48} {:>12}/iter  ({} iters){rate}",
        format_duration(per_iter),
        bencher.iterations
    );
}

fn format_duration(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Collects benchmark functions into one runner (mirror of
/// `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups (mirror of
/// `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs() {
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10).throughput(Throughput::Bytes(64));
        group.bench_with_input(BenchmarkId::new("x", 1), &41u32, |b, &v| {
            b.iter(|| v + 1);
        });
        group.finish();
    }
}
