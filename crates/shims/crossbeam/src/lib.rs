//! Vendored shim for the `crossbeam::channel` subset used by this
//! workspace: multi-producer multi-consumer channels with `recv_timeout`.
//!
//! Built over `std::sync::mpsc`; the receiver side is shared behind a
//! mutex so it can be cloned across worker threads (crossbeam channels are
//! MPMC, `std::sync::mpsc` is MPSC). Blocking receives never hold the
//! mutex while waiting — they poll `try_recv` in short slices — so one
//! blocked receiver cannot starve its clones or freeze another clone's
//! `recv_timeout`. The cost is up to ~200 µs of wake-up latency per
//! message, irrelevant for the signalling patterns here. Capacity bounds
//! are advisory: [`channel::bounded`] returns an unbounded queue, which
//! only ever makes senders *less* blocking than real crossbeam.

#![forbid(unsafe_code)]

/// Channel types (mirror of `crossbeam::channel`).
pub mod channel {
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};
    use std::time::{Duration, Instant};

    /// How long a blocked receiver sleeps between `try_recv` polls.
    const POLL_INTERVAL: Duration = Duration::from_micros(200);

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// The sending half of a channel. Cloneable (multi-producer).
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, failing if all receivers are gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// The receiving half of a channel. Cloneable (multi-consumer): clones
    /// share one underlying queue, so each message is delivered to exactly
    /// one receiver.
    pub struct Receiver<T>(Arc<Mutex<mpsc::Receiver<T>>>);

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Receiver<T> {
        fn inner(&self) -> std::sync::MutexGuard<'_, mpsc::Receiver<T>> {
            self.0
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
        }

        /// Blocks until a message arrives or all senders are gone.
        ///
        /// Implemented as a poll loop so the shared queue lock is never
        /// held while waiting (see the module docs).
        pub fn recv(&self) -> Result<T, RecvError> {
            loop {
                match self.try_recv() {
                    Ok(value) => return Ok(value),
                    Err(TryRecvError::Disconnected) => return Err(RecvError),
                    Err(TryRecvError::Empty) => std::thread::sleep(POLL_INTERVAL),
                }
            }
        }

        /// Blocks until a message arrives, the timeout expires, or all
        /// senders are gone. Never holds the queue lock while waiting.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            loop {
                match self.try_recv() {
                    Ok(value) => return Ok(value),
                    Err(TryRecvError::Disconnected) => return Err(RecvTimeoutError::Disconnected),
                    Err(TryRecvError::Empty) => {
                        let now = Instant::now();
                        if now >= deadline {
                            return Err(RecvTimeoutError::Timeout);
                        }
                        std::thread::sleep(POLL_INTERVAL.min(deadline - now));
                    }
                }
            }
        }

        /// Returns a pending message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner().try_recv()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(Arc::new(Mutex::new(rx))))
    }

    /// Creates a "bounded" channel. The bound is advisory in this shim —
    /// the queue never blocks senders.
    pub fn bounded<T>(_cap: usize) -> (Sender<T>, Receiver<T>) {
        unbounded()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, RecvTimeoutError};
    use std::time::Duration;

    #[test]
    fn send_recv_round_trip() {
        let (tx, rx) = unbounded();
        tx.send(41u32).unwrap();
        tx.send(1).unwrap();
        assert_eq!(rx.recv().unwrap(), 41);
        assert_eq!(rx.recv().unwrap(), 1);
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = bounded::<u8>(1);
        let err = rx.recv_timeout(Duration::from_millis(10)).unwrap_err();
        assert!(matches!(err, RecvTimeoutError::Timeout));
    }

    #[test]
    fn disconnected_when_senders_dropped() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn cloned_receivers_share_one_queue() {
        let (tx, rx) = unbounded();
        let rx2 = rx.clone();
        for i in 0..100u32 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut seen = Vec::new();
        let a = std::thread::spawn(move || {
            let mut got = Vec::new();
            while let Ok(v) = rx.try_recv() {
                got.push(v);
            }
            got
        });
        while let Ok(v) = rx2.try_recv() {
            seen.push(v);
        }
        seen.extend(a.join().unwrap());
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn blocked_clone_does_not_freeze_siblings() {
        // One clone parked in recv() must not starve another clone's
        // recv_timeout() while senders are still alive.
        let (tx, rx) = unbounded::<u8>();
        let rx2 = rx.clone();
        let parked = std::thread::spawn(move || rx.recv());
        let err = rx2
            .recv_timeout(Duration::from_millis(50))
            .expect_err("queue is empty, timeout must fire");
        assert!(matches!(err, RecvTimeoutError::Timeout));
        tx.send(9).unwrap();
        assert_eq!(parked.join().unwrap().unwrap(), 9);
    }

    #[test]
    fn works_across_threads() {
        let (tx, rx) = unbounded();
        let h = std::thread::spawn(move || tx.send(7u64).unwrap());
        assert_eq!(rx.recv().unwrap(), 7);
        h.join().unwrap();
    }
}
