//! Vendored shim for the subset of `rand` 0.8 used by this workspace.
//!
//! Provides [`RngCore`], [`SeedableRng`], the range-sampling [`Rng`]
//! extension trait, and [`rngs::StdRng`] — a xoshiro256++ generator seeded
//! through SplitMix64. Deterministic for a fixed seed, `Send + Sync`-safe
//! by value, and dependency-free. The value stream differs from the real
//! `StdRng` (ChaCha12); everything in this repository that relies on
//! seeded determinism only relies on *self*-consistency.

#![forbid(unsafe_code)]

use std::ops::Range;

/// The core of a random number generator (mirror of `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// Convenience sampling methods layered over [`RngCore`] (mirror of
/// `rand::Rng`, restricted to the integer ranges this workspace samples).
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open). Panics on empty ranges.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(self, range)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p));
        // 53 high bits give a uniform double in [0, 1).
        let v = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        v < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types uniformly sampleable from a half-open range.
pub trait SampleUniform: Sized {
    /// Samples uniformly from `[range.start, range.end)`.
    fn sample<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end - range.start) as u64;
                // Debiased multiply-shift (Lemire); span is far below 2^63
                // in all uses, so a simple rejection loop is cheap.
                let zone = u64::MAX - (u64::MAX % span);
                loop {
                    let v = rng.next_u64();
                    if v < zone {
                        return range.start + (v % span) as $t;
                    }
                }
            }
        }
    )*};
}

impl_sample_uniform_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as i128 - range.start as i128) as u64;
                let zone = u64::MAX - (u64::MAX % span);
                loop {
                    let v = rng.next_u64();
                    if v < zone {
                        return (range.start as i128 + (v % span) as i128) as $t;
                    }
                }
            }
        }
    )*};
}

impl_sample_uniform_signed!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

/// Named generators (mirror of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256++.
    ///
    /// # Examples
    ///
    /// ```
    /// use rand::{RngCore, SeedableRng};
    /// let mut a = rand::rngs::StdRng::seed_from_u64(7);
    /// let mut b = rand::rngs::StdRng::seed_from_u64(7);
    /// assert_eq!(a.next_u64(), b.next_u64());
    /// ```
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let s = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn dyn_rng_core_usable() {
        let mut rng = StdRng::seed_from_u64(5);
        let dynr: &mut dyn RngCore = &mut rng;
        let _ = dynr.next_u64();
        let mut buf = [0u8; 4];
        dynr.fill_bytes(&mut buf);
    }
}
