//! Vendored shim for the `parking_lot` subset used by this workspace: a
//! non-poisoning [`Mutex`] whose `lock()` returns the guard directly.
//!
//! Built over `std::sync::Mutex`; a poisoned lock is recovered rather than
//! propagated, matching parking_lot's no-poisoning semantics.

#![forbid(unsafe_code)]

use std::fmt;

/// A mutual-exclusion primitive (mirror of `parking_lot::Mutex`).
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1u32);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn shared_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn into_inner_returns_value() {
        let m = Mutex::new(String::from("x"));
        assert_eq!(m.into_inner(), "x");
    }
}
