//! String-pattern strategies: `impl Strategy for &str`.
//!
//! The real proptest compiles the string as a full regex; this shim
//! supports the subset the workspace's tests actually write — a single
//! atom (`.` or a `[...]` character class) followed by an optional
//! quantifier (`*`, `+`, or `{a,b}`) — and falls back to treating the
//! pattern as a literal when it contains no metacharacters.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Atom {
    /// `.` — any printable char (ASCII-weighted, occasionally wider).
    AnyChar,
    /// `[...]` — one of an explicit set.
    Class(Vec<char>),
}

impl Atom {
    fn draw(&self, rng: &mut TestRng) -> char {
        match self {
            Atom::AnyChar => match rng.below(8) {
                0 => char::from_u32(0x00A0 + rng.below(0x500) as u32).unwrap_or('¤'),
                _ => (0x20u8 + rng.below(0x5F) as u8) as char,
            },
            Atom::Class(set) => set[rng.below(set.len() as u64) as usize],
        }
    }
}

#[derive(Debug, Clone)]
struct Pattern {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse_class(chars: &[char]) -> Option<(Atom, usize)> {
    // chars[0] == '['; find the closing bracket and expand ranges.
    let close = chars.iter().position(|&c| c == ']')?;
    let body = &chars[1..close];
    let mut set = Vec::new();
    let mut i = 0;
    while i < body.len() {
        if i + 2 < body.len() && body[i + 1] == '-' {
            let (lo, hi) = (body[i] as u32, body[i + 2] as u32);
            for c in lo..=hi {
                if let Some(c) = char::from_u32(c) {
                    set.push(c);
                }
            }
            i += 3;
        } else {
            set.push(body[i]);
            i += 1;
        }
    }
    if set.is_empty() {
        return None;
    }
    Some((Atom::Class(set), close + 1))
}

fn parse(pattern: &str) -> Option<Pattern> {
    let chars: Vec<char> = pattern.chars().collect();
    if chars.is_empty() {
        return Some(Pattern {
            atom: Atom::AnyChar,
            min: 0,
            max: 0,
        });
    }
    let (atom, consumed) = match chars[0] {
        '.' => (Atom::AnyChar, 1),
        '[' => parse_class(&chars)?,
        _ => return None,
    };
    let rest: String = chars[consumed..].iter().collect();
    let (min, max) = match rest.as_str() {
        "" => (1, 1),
        "*" => (0, 32),
        "+" => (1, 32),
        spec if spec.starts_with('{') && spec.ends_with('}') => {
            let body = &spec[1..spec.len() - 1];
            match body.split_once(',') {
                Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
                None => {
                    let n = body.trim().parse().ok()?;
                    (n, n)
                }
            }
        }
        _ => return None,
    };
    Some(Pattern { atom, min, max })
}

/// Characters with no regex meaning — patterns made only of these are
/// treated as literals.
fn is_literal(pattern: &str) -> bool {
    !pattern.chars().any(|c| {
        matches!(
            c,
            '.' | '[' | ']' | '*' | '+' | '{' | '}' | '?' | '(' | ')' | '|' | '\\' | '^' | '$'
        )
    })
}

impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        if let Some(p) = parse(self) {
            let len = if p.max > p.min {
                p.min + rng.below((p.max - p.min + 1) as u64) as usize
            } else {
                p.min
            };
            return (0..len).map(|_| p.atom.draw(rng)).collect();
        }
        if is_literal(self) {
            return (*self).to_owned();
        }
        panic!(
            "proptest shim: unsupported string pattern {self:?} \
             (supported: literal, or `.`/`[...]` with `*`, `+`, `{{a,b}}`)"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn rng() -> TestRng {
        TestRng::for_test("string-tests")
    }

    #[test]
    fn dot_star_varies_length() {
        let mut r = rng();
        let lens: Vec<usize> = (0..64)
            .map(|_| ".*".generate(&mut r).chars().count())
            .collect();
        assert!(lens.contains(&0) || lens.iter().any(|&l| l > 0));
        assert!(lens.iter().all(|&l| l <= 32));
    }

    #[test]
    fn bounded_repeat_respects_bounds() {
        let mut r = rng();
        for _ in 0..256 {
            let s = ".{1,6}".generate(&mut r);
            let n = s.chars().count();
            assert!((1..=6).contains(&n), "bad length {n}");
        }
    }

    #[test]
    fn class_draws_from_set() {
        let mut r = rng();
        for _ in 0..128 {
            let s = "[a-c]{2,4}".generate(&mut r);
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    #[test]
    fn literal_passes_through() {
        let mut r = rng();
        assert_eq!("hello world".generate(&mut r), "hello world");
    }

    #[test]
    fn exact_repeat() {
        let mut r = rng();
        let s = ".{8}".generate(&mut r);
        assert_eq!(s.chars().count(), 8);
    }
}
