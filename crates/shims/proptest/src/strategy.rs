//! The [`Strategy`] trait and the combinators this workspace uses.

use std::ops::{Range, RangeFrom, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type (no shrinking in this shim).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (*self.start() as i128 + rng.below(span as u64) as i128) as $t
            }
        }
        impl Strategy for RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                (self.start..=<$t>::MAX).generate(rng)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// 128-bit ranges need wider arithmetic than the i128-based macro above.
impl Strategy for RangeFrom<u128> {
    type Value = u128;
    fn generate(&self, rng: &mut TestRng) -> u128 {
        let raw = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        if self.start == 0 {
            return raw;
        }
        let span = u128::MAX - self.start + 1;
        self.start + raw % span
    }
}

impl Strategy for Range<u128> {
    type Value = u128;
    fn generate(&self, rng: &mut TestRng) -> u128 {
        assert!(self.start < self.end, "empty range strategy");
        let raw = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        self.start + raw % (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
