//! `any::<T>()` — whole-domain strategies for primitive types.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Mostly ASCII with occasional wider code points, always valid.
        match rng.below(8) {
            0 => char::from_u32(0x00A0 + rng.below(0x500) as u32).unwrap_or('¤'),
            _ => (0x20u8 + rng.below(0x5F) as u8) as char,
        }
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::from_bits(rng.next_u64())
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A whole-domain strategy for `T` (mirror of `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
