//! `option::of` — strategies for `Option<T>`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Generates `Some` three times out of four, `None` otherwise (matching
/// real proptest's default weighting).
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// See [`of`].
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}
