//! Test configuration, case errors, and the deterministic generator the
//! [`proptest!`](crate::proptest) runner draws from.

/// Per-test configuration (mirror of `proptest::test_runner::ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate honours the PROPTEST_CASES environment variable;
        // so does the shim, so CI can run boosted adversarial batteries
        // without code changes. The baseline default is 32 (the real
        // crate's 256 is too slow for the from-scratch-crypto suites in
        // debug builds) — tests that pass an explicit
        // `ProptestConfig::with_cases(n)` are unaffected either way.
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.trim().parse::<u32>().ok())
            .filter(|&cases| cases > 0)
            .unwrap_or(32);
        ProptestConfig { cases }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed — the property is violated.
    Fail(String),
    /// A `prop_assume!` precondition failed — draw a fresh case.
    Reject(String),
}

/// The deterministic generator used to produce test cases (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from the test function's name, so every run of
    /// the suite sees the same cases.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name, folded into a fixed tweak.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Returns the next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_cases_honour_proptest_cases_env() {
        // Only this test touches the variable in-process; the proptest!
        // suites read it once per test function and a transiently
        // different count is harmless, so set/restore suffices.
        std::env::set_var("PROPTEST_CASES", "7");
        assert_eq!(ProptestConfig::default().cases, 7);
        std::env::set_var("PROPTEST_CASES", "not-a-number");
        assert_eq!(ProptestConfig::default().cases, 32);
        std::env::set_var("PROPTEST_CASES", "0");
        assert_eq!(ProptestConfig::default().cases, 32);
        std::env::remove_var("PROPTEST_CASES");
        assert_eq!(ProptestConfig::default().cases, 32);
    }
}
