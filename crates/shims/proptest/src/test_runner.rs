//! Test configuration, case errors, and the deterministic generator the
//! [`proptest!`](crate::proptest) runner draws from.

/// Per-test configuration (mirror of `proptest::test_runner::ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default is 256; 32 keeps the from-scratch-crypto test
        // suites fast in debug builds while still exercising variety.
        ProptestConfig { cases: 32 }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed — the property is violated.
    Fail(String),
    /// A `prop_assume!` precondition failed — draw a fresh case.
    Reject(String),
}

/// The deterministic generator used to produce test cases (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from the test function's name, so every run of
    /// the suite sees the same cases.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name, folded into a fixed tweak.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Returns the next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }
}
