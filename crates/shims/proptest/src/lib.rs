//! Vendored shim for the subset of `proptest` this workspace's property
//! tests use: the [`proptest!`] macro, `prop_assert*` / `prop_assume!`,
//! [`any`](arbitrary::any), integer-range / tuple / string-pattern
//! strategies, `collection::{vec, btree_map}`, `option::of`, and
//! `prop_map`.
//!
//! Differences from the real crate: no shrinking, no failure persistence,
//! and string strategies support only the simple-pattern subset the tests
//! use (`.` or a `[...]` class followed by `*`, `+`, or `{a,b}`). Each
//! test function draws its cases from a generator seeded from the test's
//! name, so runs are deterministic.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The glob-import surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines deterministic property tests. See the crate docs for the
/// supported subset.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_inner! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_inner! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_inner {
    (config = ($cfg:expr);
     $($(#[$meta:meta])*
       fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(16).max(16);
                while accepted < config.cases && attempts < max_attempts {
                    attempts += 1;
                    $(let $pat = $crate::strategy::Strategy::generate(&$strat, &mut rng);)*
                    #[allow(clippy::redundant_closure_call)]
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || { let _ = $body; Ok(()) })();
                    match outcome {
                        Ok(()) => accepted += 1,
                        Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case {}/{} failed: {}",
                                accepted + 1,
                                config.cases,
                                msg
                            );
                        }
                    }
                }
                assert!(
                    accepted >= config.cases.min(1),
                    "proptest: every generated case was rejected by prop_assume!"
                );
            }
        )*
    };
}

/// Asserts a condition inside a property test, failing the case (not the
/// whole process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// `prop_assert!(left == right)` with value reporting.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l == r, "assertion failed: `{:?}` == `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// `prop_assert!(left != right)` with value reporting.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l != r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l != r, $($fmt)*);
    }};
}

/// Discards the current case (drawing a fresh one) when the precondition
/// does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_owned(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn doubled() -> impl Strategy<Value = u64> {
        (0u64..1000).prop_map(|v| v * 2)
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(a in 10usize..20, b in -5i64..5) {
            prop_assert!((10..20).contains(&a));
            prop_assert!((-5..5).contains(&b));
        }

        #[test]
        fn any_and_tuples((x, y) in (any::<u8>(), any::<i64>())) {
            let _ = (x, y);
            prop_assert_eq!(x as u64 as u8, x);
            prop_assert_ne!(y as i128 - 1, y as i128);
        }

        #[test]
        fn prop_map_applies(v in doubled()) {
            prop_assert_eq!(v % 2, 0);
        }

        #[test]
        fn vec_sizes_respected(v in crate::collection::vec(any::<u32>(), 3..6)) {
            prop_assert!((3..6).contains(&v.len()));
        }

        #[test]
        fn btree_map_generates(m in crate::collection::btree_map(".{1,4}", any::<u8>(), 0..6)) {
            prop_assert!(m.len() < 6);
        }

        #[test]
        fn option_of_generates(o in crate::option::of(any::<u16>())) {
            let _ = o;
        }

        #[test]
        fn string_patterns(s in ".{2,5}") {
            prop_assert!((2..=5).contains(&s.chars().count()), "len {} of {:?}", s.len(), s);
        }

        #[test]
        fn assume_rejects_cases(v in 0u32..100) {
            prop_assume!(v % 2 == 0);
            prop_assert_eq!(v % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_form_parses(v in 0u8..10) {
            prop_assert!(v < 10);
        }
    }

    #[test]
    fn determinism_same_test_name_same_stream() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::for_test("x");
        let mut b = crate::test_runner::TestRng::for_test("x");
        let s = 0u64..u64::MAX;
        for _ in 0..32 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
