//! Collection strategies: `vec` and `btree_map`.

use std::collections::BTreeMap;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A size specification for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl SizeRange {
    fn draw(&self, rng: &mut TestRng) -> usize {
        if self.max > self.min {
            self.min + rng.below((self.max - self.min + 1) as u64) as usize
        } else {
            self.min
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

/// Strategy for `Vec<T>` with sizes drawn from the given range.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.draw(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeMap<K, V>`; key collisions may make the map smaller
/// than the drawn size, matching real proptest's behaviour.
pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    BTreeMapStrategy {
        key,
        value,
        size: size.into(),
    }
}

/// See [`btree_map`].
#[derive(Debug, Clone)]
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.draw(rng);
        (0..n)
            .map(|_| (self.key.generate(rng), self.value.generate(rng)))
            .collect()
    }
}
