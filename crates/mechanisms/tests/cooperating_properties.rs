//! Mechanism-level adversarial properties for Roth's cooperating agents:
//! random disjoint host-set splits × random attack placements, driven
//! through the uniform mechanism API.
//!
//! The battery pins both directions of the mechanism's bandwidth
//! (mirroring the chained-integrity battery's style):
//!
//! * tampering anywhere in the worker set is always caught by the peer
//!   agent's witness — and attributed to exactly the attacker — for
//!   every route length, witness-set size, and placement,
//! * synchronized two-set collusion (the attacker recruits exactly the
//!   witness assigned to its hop, vouching with real identities) passes:
//!   the pinned blind spot.
//!
//! Case counts scale with `PROPTEST_CASES` (CI runs a boosted job).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use refstate_core::protocol::host_directory;
use refstate_crypto::DsaParams;
use refstate_mechanisms::api::{JourneyCtx, JourneyVerdict, MechanismConfig, ProtectionMechanism};
use refstate_mechanisms::cooperating::CooperatingAgents;
use refstate_platform::EventLog;
use refstate_platform::{AgentImage, Attack, Host, HostId, HostSpec};
use refstate_vm::{assemble, DataState, Value};

/// The route agent for an `n`-hop linear journey `h0 … h{n-1}`: adds one
/// input per host into `total` (same shape as the fleet generator's).
fn route_agent(n: usize) -> AgentImage {
    let mut src = String::from(
        "input \"n\"\nload \"total\"\nadd\nstore \"total\"\n\
         load \"hop\"\npush 1\nadd\nstore \"hop\"\n",
    );
    for i in 1..n {
        src.push_str(&format!("load \"hop\"\npush {i}\neq\njnz to_{i}\n"));
    }
    src.push_str("halt\n");
    for i in 1..n {
        src.push_str(&format!("to_{i}:\npush \"h{i}\"\nmigrate\n"));
    }
    let program = assemble(&src).expect("route agent assembles");
    let mut state = DataState::new();
    state.set("total", Value::Int(0));
    state.set("hop", Value::Int(0));
    AgentImage::new("coop-prop", program, state)
}

/// A random disjoint split: `n` route hosts `h0 … h{n-1}` (home trusted)
/// plus `w` off-route witness hosts `v0 … v{w-1}`, with `attack` mounted
/// at route position `pos`.
fn split_hosts(n: usize, w: usize, pos: usize, attack: Option<Attack>, seed: u64) -> Vec<Host> {
    let mut specs = Vec::with_capacity(n + w);
    for i in 0..n {
        let offer = 1 + ((seed >> (i % 48)) % 997) as i64;
        let mut spec = HostSpec::new(format!("h{i}")).with_input("n", Value::Int(offer));
        if i == 0 {
            spec = spec.trusted();
        }
        if i == pos {
            if let Some(attack) = attack.clone() {
                spec = spec.malicious(attack);
            }
        }
        specs.push(spec);
    }
    for i in 0..w {
        specs.push(HostSpec::new(format!("v{i}")));
    }
    let params = DsaParams::test_group_256();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xc0_0b_5e_ed);
    Host::build_all(specs, &params, &mut rng)
}

fn run_split(n: usize, w: usize, pos: usize, attack: Option<Attack>, seed: u64) -> JourneyVerdict {
    let mut hosts = split_hosts(n, w, pos, attack, seed);
    let directory = host_directory(&hosts);
    let config = MechanismConfig::default();
    let log = EventLog::new();
    let route: Vec<HostId> = (0..n).map(|i| HostId::new(format!("h{i}"))).collect();
    let mut ctx = JourneyCtx::new(
        &mut hosts,
        route,
        route_agent(n),
        &directory,
        &config,
        &log,
        seed,
    );
    CooperatingAgents.run(&mut ctx)
}

/// The state attacks a disjoint-set witness must catch at any placement.
fn state_attack(pick: u8) -> Attack {
    match pick % 4 {
        0 => Attack::TamperVariable {
            name: "total".into(),
            value: Value::Int(-7),
        },
        1 => Attack::DeleteVariable {
            name: "total".into(),
        },
        2 => Attack::ScaleIntVariable {
            name: "total".into(),
            factor: 3,
        },
        _ => Attack::SkipExecution,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::default())]

    /// Honest journeys complete clean for every split shape.
    #[test]
    fn honest_splits_run_clean(seed in any::<u64>(), n in 2usize..8, w in 1usize..4) {
        let verdict = run_split(n, w, 0, None, seed);
        prop_assert!(!verdict.detected, "false positive on an honest split");
        prop_assert!(verdict.completed);
    }

    /// Single-set tampering — a state attack anywhere in the worker set —
    /// is always caught by the peer agent and attributed to exactly the
    /// attacker, for every split shape and placement.
    #[test]
    fn single_set_tampering_is_always_caught(
        seed in any::<u64>(), n in 2usize..8, w in 1usize..4, pos in 1usize..7, pick in any::<u8>(),
    ) {
        let pos = 1 + pos % (n - 1);
        let attack = state_attack(pick);
        let verdict = run_split(n, w, pos, Some(attack.clone()), seed);
        prop_assert!(
            verdict.detected,
            "witness missed {:?} at h{} (n={}, w={})", attack, pos, n, w
        );
        prop_assert_eq!(
            &verdict.accused,
            &vec![HostId::new(format!("h{pos}"))],
            "wrong culprit for {:?}", attack
        );
    }

    /// Route-internal collusion buys nothing: an accomplice in the worker
    /// set (the §5.1 move that defeats the session protocol) cannot reach
    /// the check, which runs on the disjoint witness set.
    #[test]
    fn route_collusion_is_always_caught(
        seed in any::<u64>(), n in 3usize..8, w in 1usize..4, pos in 1usize..7,
    ) {
        let pos = 1 + pos % (n - 1);
        // Recruit the next route host (wrapping to the home for the tail).
        let accomplice = format!("h{}", (pos + 1) % n);
        let verdict = run_split(
            n, w, pos,
            Some(Attack::CollaborateTamper {
                name: "total".into(),
                value: Value::Int(-7),
                accomplice: HostId::new(accomplice),
            }),
            seed,
        );
        prop_assert!(verdict.detected, "route collusion at h{pos} evaded the witness set");
        prop_assert_eq!(&verdict.accused, &vec![HostId::new(format!("h{pos}"))]);
    }

    /// The blindness, pinned as a passing assertion: synchronized
    /// two-set collusion — the attacker recruits exactly the witness
    /// assigned to its hop (`v{pos % w}`), which vouches under its real
    /// identity — passes at every placement. Recruiting any *other*
    /// witness is caught.
    #[test]
    fn recruiting_the_assigned_witness_always_passes(
        seed in any::<u64>(), n in 2usize..8, w in 1usize..4, pos in 1usize..7,
    ) {
        let pos = 1 + pos % (n - 1);
        let assigned = format!("v{}", pos % w);
        let verdict = run_split(
            n, w, pos,
            Some(Attack::CollaborateTamper {
                name: "total".into(),
                value: Value::Int(-7),
                accomplice: HostId::new(assigned.clone()),
            }),
            seed,
        );
        prop_assert!(
            !verdict.detected,
            "two-set collusion with {} is outside the design bandwidth", assigned
        );
        prop_assert!(verdict.completed);

        if w > 1 {
            let wrong = format!("v{}", (pos + 1) % w);
            let verdict = run_split(
                n, w, pos,
                Some(Attack::CollaborateTamper {
                    name: "total".into(),
                    value: Value::Int(-7),
                    accomplice: HostId::new(wrong.clone()),
                }),
                seed,
            );
            prop_assert!(
                verdict.detected,
                "recruiting the unassigned witness {} must not help", wrong
            );
        }
    }
}
