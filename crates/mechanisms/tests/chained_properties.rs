//! Chain-level adversarial properties for the chained-integrity family:
//! random chains × random manipulation placements, verified without any
//! hosts or VM — the pure cryptographic core of [`verify_mac_chain`].
//!
//! The battery pins both directions of the family's bandwidth:
//! truncation, reordering, and substitution are detected at every
//! placement; a forgery made *with* the victim's key (the colluding
//! predecessor) passes.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use refstate_crypto::sha256;
use refstate_mechanisms::chained::{verify_mac_chain, ChainLink, ChainSecret};
use refstate_platform::{AgentId, HostId};

/// Builds an honest `n`-link chain under `secret`: route `h0 … h{n-1}`,
/// per-hop result digests derived from `salt`.
fn honest_chain(secret: &ChainSecret, agent: &AgentId, n: usize, salt: u64) -> Vec<ChainLink> {
    let anchor = secret.anchor(agent);
    let mut links: Vec<ChainLink> = Vec::with_capacity(n);
    for i in 0..n {
        let next = (i + 1 < n).then(|| HostId::new(format!("h{}", i + 1)));
        let mut link = ChainLink {
            seq: i as u64,
            executor: HostId::new(format!("h{i}")),
            result_digest: sha256(format!("result-{salt}-{i}").as_bytes()),
            next,
            mac: anchor,
        };
        let prev = links.last().map(|l| l.mac).unwrap_or(anchor);
        link.mac = ChainLink::chain_mac(secret, &prev, &link);
        links.push(link);
    }
    links
}

fn final_digest(links: &[ChainLink]) -> refstate_crypto::Digest {
    links.last().expect("non-empty chain").result_digest
}

proptest! {
    /// The honest chain always verifies, for every length and secret.
    #[test]
    fn honest_chains_verify_clean(seed in any::<u64>(), n in 1usize..12) {
        let secret = ChainSecret::from_rng(&mut StdRng::seed_from_u64(seed));
        let agent = AgentId::new("prop");
        let links = honest_chain(&secret, &agent, n, seed);
        let verdict = verify_mac_chain(
            &links, &secret, &agent, &HostId::new("h0"), &final_digest(&links),
        );
        prop_assert!(!verdict.tampered(), "honest chain flagged: {:?}", verdict);
    }

    /// Truncating any non-empty tail is detected (the surviving last
    /// link's next-hop commitment dangles), at every placement.
    #[test]
    fn truncation_is_always_detected(seed in any::<u64>(), n in 2usize..12, cut in 1usize..11) {
        let secret = ChainSecret::from_rng(&mut StdRng::seed_from_u64(seed));
        let agent = AgentId::new("prop");
        let links = honest_chain(&secret, &agent, n, seed);
        let cut = cut.min(n - 1);
        let truncated = &links[..n - cut];
        let verdict = verify_mac_chain(
            truncated, &secret, &agent, &HostId::new("h0"),
            &final_digest(truncated),
        );
        prop_assert!(verdict.tampered(), "dropped {} tail links undetected", cut);
    }

    /// Swapping any two distinct slots is detected, at every placement.
    #[test]
    fn reordering_is_always_detected(seed in any::<u64>(), n in 2usize..12, a in 0usize..11, b in 0usize..11) {
        let secret = ChainSecret::from_rng(&mut StdRng::seed_from_u64(seed));
        let agent = AgentId::new("prop");
        let mut links = honest_chain(&secret, &agent, n, seed);
        let (a, b) = (a % n, b % n);
        prop_assume!(a != b);
        links.swap(a, b);
        let verdict = verify_mac_chain(
            &links, &secret, &agent, &HostId::new("h0"), &final_digest(&links),
        );
        prop_assert!(verdict.tampered(), "swap({}, {}) of {} undetected", a, b, n);
    }

    /// Substituting any slot's recorded partial result is detected: the
    /// victim's MAC no longer covers the entry.
    #[test]
    fn substitution_is_always_detected(seed in any::<u64>(), n in 1usize..12, victim in 0usize..11) {
        let secret = ChainSecret::from_rng(&mut StdRng::seed_from_u64(seed));
        let agent = AgentId::new("prop");
        let mut links = honest_chain(&secret, &agent, n, seed);
        let victim = victim % n;
        links[victim].result_digest = sha256(format!("forged-{seed}").as_bytes());
        let verdict = verify_mac_chain(
            &links, &secret, &agent, &HostId::new("h0"), &final_digest(&links),
        );
        prop_assert!(verdict.tampered(), "substitution at {} of {} undetected", victim, n);
    }

    /// An adversary who rebuilds the whole suffix with a *guessed*
    /// secret still fails: the MACs key on the owner's secret.
    #[test]
    fn rekeyed_suffix_is_always_detected(seed in any::<u64>(), n in 2usize..10, from in 0usize..9) {
        let secret = ChainSecret::from_rng(&mut StdRng::seed_from_u64(seed));
        let wrong = ChainSecret::from_rng(&mut StdRng::seed_from_u64(seed ^ 0xdead_beef));
        let agent = AgentId::new("prop");
        let mut links = honest_chain(&secret, &agent, n, seed);
        let from = from % n;
        // Rewrite slot `from` and recompute every MAC from there on with
        // the guessed secret — internally consistent, wrongly keyed.
        links[from].result_digest = sha256(b"forged");
        for i in from..n {
            let prev = if i == 0 {
                wrong.anchor(&agent)
            } else {
                links[i - 1].mac
            };
            links[i].mac = ChainLink::chain_mac(&wrong, &prev, &links[i]);
        }
        let verdict = verify_mac_chain(
            &links, &secret, &agent, &HostId::new("h0"), &final_digest(&links),
        );
        prop_assert!(verdict.tampered(), "rekeyed suffix from {} undetected", from);
    }

    /// The blindness, pinned as a passing assertion: a forgery computed
    /// with the victim's *real* key (the colluding predecessor leaked
    /// it) re-chains validly and passes verification at every placement.
    #[test]
    fn keyed_collusion_forgery_always_passes(seed in any::<u64>(), n in 2usize..10, victim in 0usize..9) {
        let secret = ChainSecret::from_rng(&mut StdRng::seed_from_u64(seed));
        let agent = AgentId::new("prop");
        let mut links = honest_chain(&secret, &agent, n, seed);
        let victim = victim % n;
        links[victim].result_digest = sha256(b"forged-with-real-key");
        // The colluders hold the real keys for the rewritten suffix.
        for i in victim..n {
            let prev = if i == 0 {
                secret.anchor(&agent)
            } else {
                links[i - 1].mac
            };
            links[i].mac = ChainLink::chain_mac(&secret, &prev, &links[i]);
        }
        let verdict = verify_mac_chain(
            &links, &secret, &agent, &HostId::new("h0"), &final_digest(&links),
        );
        prop_assert!(
            !verdict.tampered(),
            "a forgery under the real keys is outside the design bandwidth, got {:?}",
            verdict
        );
    }
}
