//! A Merkle hash tree over execution-step digests.
//!
//! Used by the proof-verification mechanism to commit to a full execution
//! transcript while allowing logarithmic-size openings of individual steps.

use refstate_crypto::{Digest, Sha256};

/// Domain-separation prefixes so leaves can never collide with interior
/// nodes.
const LEAF_PREFIX: u8 = 0x00;
const NODE_PREFIX: u8 = 0x01;

fn hash_leaf(data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(&[LEAF_PREFIX]);
    h.update(data);
    h.finalize()
}

fn hash_node(left: &Digest, right: &Digest) -> Digest {
    let mut h = Sha256::new();
    h.update(&[NODE_PREFIX]);
    h.update(left.as_bytes());
    h.update(right.as_bytes());
    h.finalize()
}

/// A Merkle tree with duplicated-last-node padding for odd widths.
///
/// # Examples
///
/// ```
/// use refstate_mechanisms::MerkleTree;
///
/// let leaves: Vec<Vec<u8>> = (0u8..5).map(|i| vec![i]).collect();
/// let tree = MerkleTree::build(leaves.iter().map(|l| l.as_slice()));
/// let path = tree.open(3).unwrap();
/// assert!(path.verify(&leaves[3], tree.root()));
/// assert!(!path.verify(&leaves[2], tree.root()));
/// ```
#[derive(Debug, Clone)]
pub struct MerkleTree {
    /// levels[0] = leaf digests, levels.last() = [root].
    levels: Vec<Vec<Digest>>,
}

/// An opening: the sibling path from a leaf to the root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerklePath {
    /// The leaf index this path opens.
    pub index: usize,
    /// Sibling digests, one per level, bottom-up.
    pub siblings: Vec<Digest>,
}

impl MerkleTree {
    /// Builds a tree over the given leaf payloads.
    ///
    /// # Panics
    ///
    /// Panics if no leaves are supplied.
    pub fn build<'a>(leaves: impl IntoIterator<Item = &'a [u8]>) -> Self {
        let leaf_digests: Vec<Digest> = leaves.into_iter().map(hash_leaf).collect();
        assert!(
            !leaf_digests.is_empty(),
            "Merkle tree needs at least one leaf"
        );
        let mut levels = vec![leaf_digests];
        while levels.last().expect("non-empty").len() > 1 {
            let prev = levels.last().expect("non-empty");
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            for pair in prev.chunks(2) {
                let left = &pair[0];
                let right = pair.get(1).unwrap_or(left);
                next.push(hash_node(left, right));
            }
            levels.push(next);
        }
        MerkleTree { levels }
    }

    /// The root digest.
    pub fn root(&self) -> &Digest {
        &self.levels.last().expect("non-empty")[0]
    }

    /// The number of leaves.
    pub fn len(&self) -> usize {
        self.levels[0].len()
    }

    /// Returns `true` if the tree has exactly one leaf.
    pub fn is_empty(&self) -> bool {
        false // a tree always has at least one leaf; see build()
    }

    /// Opens leaf `index`, returning its authentication path.
    pub fn open(&self, index: usize) -> Option<MerklePath> {
        if index >= self.len() {
            return None;
        }
        let mut siblings = Vec::with_capacity(self.levels.len() - 1);
        let mut i = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling_index = if i.is_multiple_of(2) { i + 1 } else { i - 1 };
            let sibling = level.get(sibling_index).unwrap_or(&level[i]);
            siblings.push(*sibling);
            i /= 2;
        }
        Some(MerklePath { index, siblings })
    }
}

impl MerklePath {
    /// Verifies that `leaf_payload` is the leaf at `self.index` of the tree
    /// with the given root.
    pub fn verify(&self, leaf_payload: &[u8], root: &Digest) -> bool {
        let mut acc = hash_leaf(leaf_payload);
        let mut i = self.index;
        for sibling in &self.siblings {
            acc = if i.is_multiple_of(2) {
                hash_node(&acc, sibling)
            } else {
                hash_node(sibling, &acc)
            };
            i /= 2;
        }
        acc == *root
    }
}

/// Derives `k` pseudo-random distinct indices below `n` from a seed digest
/// (Fiat–Shamir style: the prover cannot predict which steps are audited
/// before committing to the root).
pub fn challenge_indices(seed: &Digest, context: &[u8], n: usize, k: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut counter: u32 = 0;
    while out.len() < k.min(n) {
        let mut h = Sha256::new();
        h.update(seed.as_bytes());
        h.update(context);
        h.update(&counter.to_le_bytes());
        let digest = h.finalize();
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&digest.as_bytes()[..8]);
        let idx = (u64::from_le_bytes(raw) % n as u64) as usize;
        if !out.contains(&idx) {
            out.push(idx);
        }
        counter += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use refstate_crypto::sha256;

    fn leaves(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("leaf-{i}").into_bytes()).collect()
    }

    #[test]
    fn every_leaf_opens_and_verifies() {
        for n in [1usize, 2, 3, 4, 5, 8, 9, 31, 64] {
            let data = leaves(n);
            let tree = MerkleTree::build(data.iter().map(|l| l.as_slice()));
            assert_eq!(tree.len(), n);
            for (i, leaf) in data.iter().enumerate() {
                let path = tree.open(i).expect("in range");
                assert!(path.verify(leaf, tree.root()), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn wrong_leaf_fails() {
        let data = leaves(10);
        let tree = MerkleTree::build(data.iter().map(|l| l.as_slice()));
        let path = tree.open(4).unwrap();
        assert!(!path.verify(&data[5], tree.root()));
        assert!(!path.verify(b"forged", tree.root()));
    }

    #[test]
    fn wrong_index_fails() {
        let data = leaves(8);
        let tree = MerkleTree::build(data.iter().map(|l| l.as_slice()));
        let mut path = tree.open(2).unwrap();
        path.index = 3;
        assert!(!path.verify(&data[2], tree.root()));
    }

    #[test]
    fn wrong_root_fails() {
        let data = leaves(8);
        let tree = MerkleTree::build(data.iter().map(|l| l.as_slice()));
        let other = MerkleTree::build([b"x".as_slice()]);
        let path = tree.open(0).unwrap();
        assert!(!path.verify(&data[0], other.root()));
    }

    #[test]
    fn root_is_deterministic_and_content_sensitive() {
        let a = MerkleTree::build(leaves(5).iter().map(|l| l.as_slice()));
        let b = MerkleTree::build(leaves(5).iter().map(|l| l.as_slice()));
        assert_eq!(a.root(), b.root());
        let mut changed = leaves(5);
        changed[2][0] ^= 1;
        let c = MerkleTree::build(changed.iter().map(|l| l.as_slice()));
        assert_ne!(a.root(), c.root());
    }

    #[test]
    fn out_of_range_open_is_none() {
        let tree = MerkleTree::build(leaves(3).iter().map(|l| l.as_slice()));
        assert!(tree.open(3).is_none());
    }

    #[test]
    #[should_panic(expected = "at least one leaf")]
    fn empty_tree_panics() {
        let _ = MerkleTree::build(std::iter::empty::<&[u8]>());
    }

    #[test]
    fn leaf_node_domain_separation() {
        // A single-leaf tree's root is the leaf hash; an attacker cannot
        // present an interior node as a leaf because of the prefix bytes.
        let t = MerkleTree::build([b"data".as_slice()]);
        assert_eq!(*t.root(), hash_leaf(b"data"));
        assert_ne!(*t.root(), sha256(b"data"));
    }

    #[test]
    fn challenges_deterministic_distinct_in_range() {
        let seed = sha256(b"root");
        let a = challenge_indices(&seed, b"ctx", 100, 10);
        let b = challenge_indices(&seed, b"ctx", 100, 10);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        assert!(a.iter().all(|&i| i < 100));
        let unique: std::collections::BTreeSet<_> = a.iter().collect();
        assert_eq!(unique.len(), 10);
        // Different context → different challenge set (overwhelmingly).
        let c = challenge_indices(&seed, b"other", 100, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn challenges_clamp_to_n() {
        let seed = sha256(b"root");
        let a = challenge_indices(&seed, b"", 3, 10);
        assert_eq!(a.len(), 3);
    }
}
