//! The first-class mechanism API: one pluggable trait, one registry, one
//! journey context.
//!
//! The paper's thesis is that state appraisal, replication, traces,
//! proofs, and the reference-state framework are *instances of one
//! abstraction* — a check moment × reference data × checking algorithm.
//! This module makes that abstraction a Rust API:
//!
//! * [`ProtectionMechanism`] — the trait every mechanism implements: a
//!   registry [`name`](ProtectionMechanism::name), a
//!   [`MechanismProfile`] declaring what the mechanism needs (check
//!   moment, reference data, route topology, signatures), and one
//!   [`run`](ProtectionMechanism::run) entry point over a
//!   [`JourneyCtx`],
//! * [`MechanismRegistry`] — the single dispatch table the fleet engine,
//!   detection matrix, CLI, and benches all resolve mechanisms through
//!   (by name; new mechanisms plug in without touching any engine),
//! * [`JourneyCtx`] — everything one journey owns: the hosts, the
//!   planned route (and replica [`StageSpec`]s when the topology is
//!   replicated), the PKI [`KeyDirectory`], a deterministic RNG stream,
//!   and a [`VerificationQueue`] so signature checks can defer into one
//!   batch at journey end,
//! * [`JourneyVerdict`] — the uniform result every mechanism reports, so
//!   aggregate detection/attribution rates are comparable across
//!   mechanisms.
//!
//! The six paper mechanisms live in [`crate::fleet`] and the
//! chained-integrity family in [`crate::chained`];
//! [`MechanismRegistry::builtin`] registers them all.

use std::fmt;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use refstate_core::protocol::{
    settle_deferred, DeferredJourney, ProtocolConfig, ProtocolOutcome, SettleStats,
};
use refstate_core::rules::{CmpOp, Expr, Pred, RuleSet};
use refstate_core::{CheckMoment, ReferenceDataRequest, VerificationPipeline};
use refstate_crypto::{KeyDirectory, VerificationQueue};
use refstate_platform::{AgentImage, EventLog, Host, HostId};
use refstate_telemetry as telemetry;
use refstate_vm::ExecConfig;

use crate::replication::StageSpec;

/// The route shape a mechanism can drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteTopology {
    /// One agent walks one linear route, a session per host.
    Linear,
    /// Every stage executes on a set of replica hosts in parallel
    /// (§3.2's server replication); requires the scenario to provide
    /// [`StageSpec`]s.
    ReplicatedStages,
    /// One worker agent walks the linear route while a cooperating
    /// witness agent runs over the *disjoint* set of off-route hosts,
    /// cross-checking each interim reference state (Roth's cooperating
    /// agents); requires the scenario to provide at least one host that
    /// is not on the primary route.
    DisjointSets,
}

impl fmt::Display for RouteTopology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteTopology::Linear => f.write_str("linear route"),
            RouteTopology::ReplicatedStages => f.write_str("replicated stages"),
            RouteTopology::DisjointSets => f.write_str("disjoint cooperating sets"),
        }
    }
}

/// What a mechanism declares about itself: the paper's taxonomy axes plus
/// the execution-shape facts an engine needs for dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MechanismProfile {
    /// When checks run (`None` for the unprotected baseline, which never
    /// checks).
    pub moment: Option<CheckMoment>,
    /// The reference data the mechanism consumes (§3.5's requester
    /// interfaces).
    pub reference_data: ReferenceDataRequest,
    /// The route shape the mechanism needs.
    pub topology: RouteTopology,
    /// Whether the mechanism signs/verifies statements (and therefore
    /// needs the PKI directory and can profit from the deferred
    /// [`VerificationQueue`]).
    pub uses_signatures: bool,
}

impl MechanismProfile {
    /// Whether this mechanism can run a scenario shape: topology-changing
    /// mechanisms need replica stages, disjoint-set mechanisms need at
    /// least one off-route host for the witness set, and linear
    /// mechanisms always have a (primary) route to walk.
    pub fn compatible_with(&self, scenario_has_stages: bool, scenario_has_spares: bool) -> bool {
        match self.topology {
            RouteTopology::Linear => true,
            RouteTopology::ReplicatedStages => scenario_has_stages,
            RouteTopology::DisjointSets => scenario_has_spares,
        }
    }

    /// [`MechanismProfile::compatible_with`] for callers that only know
    /// whether stages exist: staged scenarios always carry off-route
    /// replicas, so the spare-host answer follows the stage answer.
    pub fn compatible_with_stages(&self, scenario_has_stages: bool) -> bool {
        self.compatible_with(scenario_has_stages, scenario_has_stages)
    }
}

/// Shared per-journey configuration every mechanism runs under, so
/// aggregate rates compare like with like.
#[derive(Debug, Clone)]
pub struct MechanismConfig {
    /// Execution limits for sessions and checks, applied uniformly (the
    /// protocol mechanism overrides its [`ProtocolConfig::exec`] and
    /// `max_hops` with these shared values).
    pub exec: ExecConfig,
    /// Config for the session-checking protocol (its `exec` and
    /// `max_hops` are superseded by the shared fields above).
    pub protocol: ProtocolConfig,
    /// Rule set for state appraisal. The default expresses what a
    /// programmer of the route agent plausibly writes (`total` defined
    /// and non-negative) — rule-preserving attacks pass it, matching the
    /// §4.1 "lower end of the scale".
    pub rules: RuleSet,
    /// Hop budget for the unchecked drivers.
    pub max_hops: usize,
    /// Defer per-hop signature checks into the journey's
    /// [`VerificationQueue`] and settle them in one batch at journey end
    /// (see `refstate_core::protocol::run_protected_journey_batched`).
    /// On by default: it does not change verdicts for any attack in the
    /// taxonomy (none forge signatures) and removes the per-hop
    /// verification from the latency path.
    pub defer_signatures: bool,
    /// Worker threads for owner-side bulk `check_sessions` passes (`0` =
    /// one per available core); plumbed into
    /// `refstate_core::framework::ProtectionConfig::check_workers`.
    /// Verdict order is worker-invariant. Defaults to 1: fleet engines
    /// already saturate the cores with journey workers, so nested check
    /// parallelism is opt-in.
    pub check_workers: usize,
}

impl Default for MechanismConfig {
    fn default() -> Self {
        MechanismConfig {
            exec: ExecConfig::default(),
            protocol: ProtocolConfig::default(),
            rules: RuleSet::new()
                .rule("total-defined", Pred::Defined("total".into()))
                .rule(
                    "total-non-negative",
                    Pred::cmp(CmpOp::Ge, Expr::var("total"), Expr::int(0)),
                ),
            max_hops: 64,
            defer_signatures: true,
            check_workers: 1,
        }
    }
}

/// Everything one journey owns while a mechanism drives it.
///
/// An engine builds one context per (scenario, mechanism) pair — hosts
/// are consumed by execution — and hands it to
/// [`ProtectionMechanism::run`]. The context carries:
///
/// * the instantiated `hosts` and the planned linear `route` (the primary
///   path; `route[0]` is the trusted home),
/// * optional replica `stages` when the scenario's topology is
///   replicated,
/// * the PKI `directory` covering every host,
/// * a deterministic per-journey RNG stream (`rng`) so any mechanism
///   randomness is independent of scheduling,
/// * a [`VerificationQueue`] for deferring signature checks into one
///   journey-end batch.
pub struct JourneyCtx<'a> {
    /// The instantiated hosts (replicas included, for staged scenarios).
    pub hosts: &'a mut [Host],
    /// The planned linear route; `route[0]` is the start host.
    pub route: Vec<HostId>,
    /// Replica stages, when the scenario provides a replicated topology.
    pub stages: Option<Vec<StageSpec>>,
    /// The agent to protect (mechanisms clone it; drivers consume the
    /// image).
    pub agent: AgentImage,
    /// The PKI covering every host in `hosts`.
    pub directory: &'a KeyDirectory,
    /// Shared mechanism configuration.
    pub config: &'a MechanismConfig,
    /// The event log to record into.
    pub log: &'a EventLog,
    /// This journey's own RNG stream.
    pub rng: StdRng,
    /// Deferred signature checks, settled in one batch at journey end.
    pub queue: VerificationQueue,
    /// The verification pipeline (and replay cache, when the engine
    /// shares one) every re-execution of this journey funnels through.
    pub pipeline: Arc<VerificationPipeline>,
}

impl<'a> JourneyCtx<'a> {
    /// Builds a linear-route context. `seed` fixes the context's RNG
    /// stream; derive it from the scenario so results are
    /// scheduling-independent.
    ///
    /// # Panics
    ///
    /// Panics if `route` is empty.
    pub fn new(
        hosts: &'a mut [Host],
        route: Vec<HostId>,
        agent: AgentImage,
        directory: &'a KeyDirectory,
        config: &'a MechanismConfig,
        log: &'a EventLog,
        seed: u64,
    ) -> Self {
        assert!(!route.is_empty(), "a journey needs a route");
        JourneyCtx {
            hosts,
            route,
            stages: None,
            agent,
            directory,
            config,
            log,
            rng: StdRng::seed_from_u64(seed),
            queue: VerificationQueue::new(),
            pipeline: Arc::new(VerificationPipeline::uncached()),
        }
    }

    /// Attaches replica stages (replicated-topology scenarios).
    pub fn with_stages(mut self, stages: Vec<StageSpec>) -> Self {
        self.stages = Some(stages);
        self
    }

    /// Attaches a shared verification pipeline (fleet engines pass one
    /// handle to every journey so replay dedup spans the whole run).
    pub fn with_pipeline(mut self, pipeline: Arc<VerificationPipeline>) -> Self {
        self.pipeline = pipeline;
        self
    }

    /// The start host (`route[0]`).
    pub fn start(&self) -> &HostId {
        &self.route[0]
    }

    /// Opens a telemetry span for one stage of the mechanism's journey
    /// (e.g. the forward run vs. the audit). The span records a duration
    /// histogram under the active scope — the mechanism name, when driven
    /// through [`run_instrumented`] — and a trace event at the `Full`
    /// level; it costs one atomic load when telemetry is off.
    pub fn stage(&self, name: &'static str) -> telemetry::Span {
        telemetry::span(name, "stage")
    }
}

/// Runs one mechanism over one journey with telemetry attribution: the
/// thread's telemetry scope is set to the mechanism's name for the
/// duration (so every pipeline/crypto/VM measurement triggered by the
/// journey lands under that mechanism), and the journey itself is
/// recorded as a `journey` span.
///
/// Verdicts are identical to calling [`ProtectionMechanism::run`]
/// directly — telemetry is strictly observational.
pub fn run_instrumented(
    mechanism: &dyn ProtectionMechanism,
    ctx: &mut JourneyCtx<'_>,
) -> JourneyVerdict {
    let _scope = telemetry::scoped(mechanism.name());
    let _span = telemetry::span("journey", "mechanism");
    mechanism.run(ctx)
}

impl fmt::Debug for JourneyCtx<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JourneyCtx")
            .field("route", &self.route)
            .field("stages", &self.stages.as_ref().map(Vec::len))
            .field("agent", &self.agent.id)
            .field("deferred", &self.queue.len())
            .finish_non_exhaustive()
    }
}

/// The uniform result of one mechanism over one journey.
///
/// Verdict semantics are identical across mechanisms so aggregate rates
/// are comparable:
///
/// * `detected` — the mechanism flagged the run,
/// * `accused` — the hosts the mechanism blamed (empty when undetected,
///   or when the mechanism detects without attribution — see
///   [`JourneyVerdict::detected_unattributed`]; fleet reports score these
///   against the scenario's actual attacker to measure
///   culprit-attribution accuracy and false accusations),
/// * `completed` — the journey ran to its halt instruction (mechanisms
///   that check per session abort at the detection point; traces detect
///   only after completion),
/// * `infra_error` — the journey died of an infrastructure failure (e.g.
///   input exhaustion after a control-flow attack); counted separately so
///   detection rates are not silently inflated or deflated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JourneyVerdict {
    /// The mechanism flagged the run.
    pub detected: bool,
    /// The hosts the mechanism blamed (empty when nothing was detected).
    pub accused: Vec<HostId>,
    /// The journey ran to its halt instruction.
    pub completed: bool,
    /// The journey died of an infrastructure failure.
    pub infra_error: bool,
}

impl JourneyVerdict {
    /// An undetected run; `completed = false` counts as an
    /// infrastructure failure.
    pub fn clean(completed: bool) -> Self {
        JourneyVerdict {
            detected: false,
            accused: Vec::new(),
            completed,
            infra_error: !completed,
        }
    }

    /// A detection blaming `accused`.
    pub fn accusing(accused: Vec<HostId>, completed: bool) -> Self {
        JourneyVerdict {
            detected: true,
            accused,
            completed,
            infra_error: false,
        }
    }

    /// A detection that cannot be pinned on a host: the mechanism can
    /// prove manipulation happened without identifying the manipulator
    /// (chained MACs — any host downstream of the broken entry could
    /// have done it). Scores as a detection with zero attribution and no
    /// false accusation.
    pub fn detected_unattributed(completed: bool) -> Self {
        JourneyVerdict {
            detected: true,
            accused: Vec::new(),
            completed,
            infra_error: false,
        }
    }
}

/// The result of [`ProtectionMechanism::run_split`]: either the journey's
/// verdict is already final, or the owner-side part is still outstanding
/// and a service will settle it amortized across a batch.
#[derive(Debug)]
pub enum SplitVerdict {
    /// The verdict is final — nothing owner-side remains.
    Settled(JourneyVerdict),
    /// The host-side journey ran; the owner-side settlement (final
    /// re-execution check, deferred signature flush) is pending. Collect
    /// these and resolve them with [`settle_owner_batch`].
    Pending(Box<PendingOwnerJourney>),
}

/// A journey whose owner-side settlement is outstanding, lifted out of
/// its (by now dropped) [`JourneyCtx`].
#[derive(Debug)]
pub struct PendingOwnerJourney {
    /// The core deferred journey: outcome so far + pending final check.
    pub journey: DeferredJourney,
    /// The signature checks the journey deferred (the context's queue,
    /// taken when the split verdict was produced).
    pub queue: VerificationQueue,
}

/// Maps a settled [`ProtocolOutcome`] to the uniform verdict, exactly as
/// the session-checking protocol mechanism reports it: a fraud detected by
/// the owner's post-halt settlement means the journey itself completed.
pub fn protocol_verdict(outcome: &ProtocolOutcome) -> JourneyVerdict {
    match &outcome.fraud {
        Some(fraud) => {
            let completed = fraud.detector.as_str() == "owner";
            JourneyVerdict::accusing(vec![fraud.culprit.clone()], completed)
        }
        None => JourneyVerdict::clean(true),
    }
}

/// Settles a batch of [`PendingOwnerJourney`]s in two amortized passes —
/// one bulk `check_sessions_with` over every pending final check
/// (distributed over `workers`; verdict order is worker-invariant) and one
/// batch flush over every deferred signature — and returns the final
/// [`JourneyVerdict`]s in input order, plus the settle counters.
///
/// All journeys in the batch must share `directory` (one owner's PKI view)
/// and `pipeline`. Verdicts are identical to settling each journey alone —
/// amortization changes cost, never outcomes.
pub fn settle_owner_batch(
    pendings: Vec<PendingOwnerJourney>,
    config: &MechanismConfig,
    pipeline: &Arc<VerificationPipeline>,
    log: &EventLog,
    directory: &KeyDirectory,
    workers: usize,
) -> (Vec<JourneyVerdict>, SettleStats) {
    let _span = telemetry::span("mechanism.settle_batch", "mechanism");
    let protocol = ProtocolConfig {
        exec: config.exec.clone(),
        max_hops: config.max_hops,
        pipeline: pipeline.clone(),
        ..config.protocol.clone()
    };
    let mut queue = VerificationQueue::new();
    let mut journeys = Vec::with_capacity(pendings.len());
    for mut pending in pendings {
        queue.append(&mut pending.queue);
        journeys.push(pending.journey);
    }
    let stats = settle_deferred(
        &mut journeys,
        &protocol,
        log,
        directory,
        &mut queue,
        workers,
    );
    let verdicts = journeys
        .iter()
        .map(|j| protocol_verdict(&j.outcome))
        .collect();
    (verdicts, stats)
}

/// One pluggable protection mechanism: the paper's
/// moment × reference-data × algorithm abstraction as a trait.
///
/// Implementations run one protected journey over a [`JourneyCtx`] and
/// report a [`JourneyVerdict`]. Everything that drives mechanisms — the
/// fleet engine, the detection matrix, the CLI, benches — dispatches
/// through a [`MechanismRegistry`] of these, so a new mechanism is one
/// `impl` plus one [`MechanismRegistry::register`] call.
pub trait ProtectionMechanism: Send + Sync {
    /// The registry/CLI/report name (stable, lowercase, no spaces).
    fn name(&self) -> &'static str;

    /// One-line description for help texts and docs.
    fn description(&self) -> &'static str;

    /// What the mechanism needs (taxonomy axes + execution shape).
    fn profile(&self) -> MechanismProfile;

    /// Runs one journey and reports the uniform verdict.
    ///
    /// Callers must only hand over contexts the profile is compatible
    /// with (see [`MechanismProfile::compatible_with_stages`]); a
    /// replicated-stage mechanism given a stage-less context reports an
    /// infrastructure error rather than panicking.
    fn run(&self, ctx: &mut JourneyCtx<'_>) -> JourneyVerdict;

    /// Runs the host-side part of one journey and, when the mechanism
    /// supports owner-side batching, hands the rest back as a
    /// [`SplitVerdict::Pending`] for a service to settle amortized across
    /// a tick (see [`settle_owner_batch`]).
    ///
    /// The default settles everything inline — equivalent to
    /// [`run`](Self::run) — so only mechanisms with a meaningful
    /// owner-side phase (the session-checking protocol) override it.
    /// Registry dispatch stays mechanism-generic either way.
    fn run_split(&self, ctx: &mut JourneyCtx<'_>) -> SplitVerdict {
        SplitVerdict::Settled(self.run(ctx))
    }
}

/// The error [`MechanismRegistry::parse_list`] returns for an unknown
/// name: carries the valid names so CLIs can print them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownMechanism {
    /// The name that failed to resolve.
    pub name: String,
    /// Every name the registry knows.
    pub known: Vec<&'static str>,
}

impl fmt::Display for UnknownMechanism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown mechanism {:?} (valid: {})",
            self.name,
            self.known.join(", ")
        )
    }
}

impl std::error::Error for UnknownMechanism {}

/// The dispatch table: mechanisms by name, in registration order.
///
/// # Examples
///
/// ```
/// use refstate_mechanisms::api::MechanismRegistry;
///
/// let registry = MechanismRegistry::builtin();
/// let protocol = registry.get("protocol").expect("built in");
/// assert_eq!(protocol.name(), "protocol");
/// let picked = registry.parse_list("unprotected,traces").unwrap();
/// assert_eq!(picked.len(), 2);
/// assert!(registry.parse_list("no-such-thing").is_err());
/// ```
#[derive(Clone, Default)]
pub struct MechanismRegistry {
    entries: Vec<Arc<dyn ProtectionMechanism>>,
}

impl MechanismRegistry {
    /// An empty registry.
    pub fn empty() -> Self {
        MechanismRegistry::default()
    }

    /// The registry of the nine built-in mechanisms (the paper's six,
    /// the chained-integrity family, and Roth's cooperating agents), in
    /// canonical report order.
    pub fn builtin() -> Self {
        let mut registry = MechanismRegistry::empty();
        registry.register(Arc::new(crate::fleet::Unprotected));
        registry.register(Arc::new(crate::fleet::StateAppraisal));
        registry.register(Arc::new(crate::fleet::FrameworkReExecution));
        registry.register(Arc::new(crate::fleet::SessionCheckingProtocol));
        registry.register(Arc::new(crate::fleet::ExecutionTraces));
        registry.register(Arc::new(crate::fleet::ReplicatedStages));
        registry.register(Arc::new(crate::chained::ChainedMac));
        registry.register(Arc::new(crate::chained::EncapsulatedResults));
        registry.register(Arc::new(crate::cooperating::CooperatingAgents));
        registry
    }

    /// Registers a mechanism. A mechanism with the same name replaces the
    /// existing entry (in place, keeping its position).
    pub fn register(&mut self, mechanism: Arc<dyn ProtectionMechanism>) {
        match self
            .entries
            .iter_mut()
            .find(|m| m.name() == mechanism.name())
        {
            Some(slot) => *slot = mechanism,
            None => self.entries.push(mechanism),
        }
    }

    /// Resolves a mechanism by name.
    pub fn get(&self, name: &str) -> Option<Arc<dyn ProtectionMechanism>> {
        self.entries.iter().find(|m| m.name() == name).cloned()
    }

    /// Every registered name, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|m| m.name()).collect()
    }

    /// Every registered mechanism, in registration order.
    pub fn all(&self) -> Vec<Arc<dyn ProtectionMechanism>> {
        self.entries.clone()
    }

    /// Iterates the registered mechanisms in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<dyn ProtectionMechanism>> {
        self.entries.iter()
    }

    /// Number of registered mechanisms.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Parses a comma-separated mechanism list (duplicates collapse,
    /// order preserved).
    ///
    /// # Errors
    ///
    /// [`UnknownMechanism`] for the first unresolvable name, carrying the
    /// valid names for the error message.
    pub fn parse_list(
        &self,
        list: &str,
    ) -> Result<Vec<Arc<dyn ProtectionMechanism>>, UnknownMechanism> {
        let mut picked: Vec<Arc<dyn ProtectionMechanism>> = Vec::new();
        for name in list.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let mechanism = self.get(name).ok_or_else(|| UnknownMechanism {
                name: name.to_owned(),
                known: self.names(),
            })?;
            if !picked.iter().any(|m| m.name() == mechanism.name()) {
                picked.push(mechanism);
            }
        }
        Ok(picked)
    }
}

impl fmt::Debug for MechanismRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MechanismRegistry")
            .field("names", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_builtin_mechanism_round_trips_by_name() {
        let registry = MechanismRegistry::builtin();
        assert_eq!(registry.len(), 9);
        for mechanism in registry.iter() {
            let resolved = registry
                .get(mechanism.name())
                .unwrap_or_else(|| panic!("{} resolves", mechanism.name()));
            assert_eq!(resolved.name(), mechanism.name());
            assert_eq!(resolved.profile(), mechanism.profile());
            assert!(!mechanism.description().is_empty());
        }
        assert!(registry.get("nope").is_none());
    }

    #[test]
    fn parse_list_resolves_dedups_and_errors() {
        let registry = MechanismRegistry::builtin();
        let picked = registry
            .parse_list("protocol, traces ,protocol")
            .expect("valid list");
        assert_eq!(
            picked.iter().map(|m| m.name()).collect::<Vec<_>>(),
            vec!["protocol", "traces"]
        );
        let err = match registry.parse_list("protocol,wat") {
            Err(err) => err,
            Ok(_) => panic!("unknown name must not parse"),
        };
        assert_eq!(err.name, "wat");
        assert!(err.known.contains(&"replication"));
        assert!(err.to_string().contains("replication"));
    }

    #[test]
    fn register_replaces_by_name_in_place() {
        let mut registry = MechanismRegistry::builtin();
        let before = registry.names();
        registry.register(Arc::new(crate::fleet::Unprotected));
        assert_eq!(registry.names(), before, "same name keeps its slot");
    }

    #[test]
    fn topology_compatibility() {
        let registry = MechanismRegistry::builtin();
        let replication = registry.get("replication").unwrap();
        assert!(!replication.profile().compatible_with_stages(false));
        assert!(replication.profile().compatible_with_stages(true));
        let protocol = registry.get("protocol").unwrap();
        assert!(protocol.profile().compatible_with_stages(false));
        assert!(protocol.profile().compatible_with_stages(true));
        // The disjoint-set mechanism needs spare hosts, not stages; the
        // stage-only shorthand maps stages to spares (replicas exist).
        let cooperating = registry.get("cooperating").unwrap();
        assert!(!cooperating.profile().compatible_with(false, false));
        assert!(cooperating.profile().compatible_with(false, true));
        assert!(cooperating.profile().compatible_with_stages(true));
        assert!(!cooperating.profile().compatible_with_stages(false));
    }
}
