//! Protection mechanisms behind one pluggable API.
//!
//! The paper's §3 surveys the existing mechanisms and argues they are all
//! instances of one abstraction: a **check moment** × **reference data**
//! × **checking algorithm** (plus, for replication, a route topology).
//! This crate implements the mechanisms *and* the abstraction:
//!
//! * [`api`] — the [`ProtectionMechanism`] trait, the
//!   [`MechanismProfile`] each implementation declares, the
//!   [`JourneyCtx`] it runs over (hosts, route, PKI, RNG stream, and a
//!   deferred-signature [`VerificationQueue`](refstate_crypto::VerificationQueue)),
//!   and the [`MechanismRegistry`] every driver dispatches through;
//! * [`fleet`] — the six implementations surveyed by the paper;
//! * [`chained`] — the chained-integrity family from the related work
//!   (Karjoth-style chained MACs, signed partial result encapsulation),
//!   which protects the *recorded* partial results against truncation,
//!   reordering, and substitution without any re-execution;
//! * [`cooperating`] — Roth's cooperating agents: a witness agent on a
//!   disjoint host set re-checks every interim reference state, immune to
//!   route collusion but blind to a recruited witness.
//!
//! | Registry name | Mechanism | Moment | Reference data | Topology | Signatures |
//! |---------------|-----------|--------|----------------|----------|------------|
//! | `unprotected` | — (baseline) | never | none | linear | no |
//! | `appraisal` | State appraisal (Farmer/Guttman/Swarup) | after session (on arrival) | initial + resulting state | linear | no |
//! | `framework` | The generic framework, re-execution checking | after session | initial + resulting state + input | linear | no |
//! | `protocol` | §5.1 session checking | after session | initial + resulting state + input | linear | yes (deferrable) |
//! | `traces` | Execution traces (Vigna) | after task, on suspicion | initial state + trace + input | linear | yes |
//! | `replication` | Server replication (Minsky et al.) | after session (parallel) | resulting state + replicated resources | replicated stages | no |
//! | `chained` | Chained MACs (Karjoth et al.) | after task | resulting state (recorded chain) | linear | no (HMAC) |
//! | `encapsulated` | Signed result encapsulation (Rodríguez–Sobrado) | after session (on arrival) + owner batch | resulting state (recorded chain) | linear | yes (deferrable) |
//! | `cooperating` | Cooperating agents (Roth) | after session (on the witness set) | initial + resulting state + input | disjoint sets | no |
//!
//! The per-mechanism modules ([`appraisal`], [`replication`], [`traces`],
//! [`proofs`]) keep the full-fidelity drivers and their evidence types;
//! the [`matrix`] runs every registered mechanism against the standard
//! attack scenarios.
//!
//! The proof mechanism deserves a caveat: real holographic/PCP proofs are
//! NP-hard to *construct* (the paper dismisses the approach as impractical
//! for this reason). The [`proofs`] module substitutes a Merkle-committed
//! step transcript with Fiat–Shamir random spot checks, which preserves the
//! *interface* (sublinear verification of an execution leading to the final
//! state, no reference data needed) and the cost shape (O(k·log n)
//! verification vs O(n) re-execution), though not PCP soundness against
//! fully adaptive provers. See DESIGN.md §4 for the substitution record.
//!
//! # Adding a mechanism
//!
//! Implement [`ProtectionMechanism`] (name, profile, `run` over a
//! [`JourneyCtx`]) and register it:
//!
//! ```
//! use std::sync::Arc;
//! use refstate_core::ReferenceDataRequest;
//! use refstate_mechanisms::api::{
//!     JourneyCtx, JourneyVerdict, MechanismProfile, MechanismRegistry,
//!     ProtectionMechanism, RouteTopology,
//! };
//!
//! struct AlwaysClean;
//!
//! impl ProtectionMechanism for AlwaysClean {
//!     fn name(&self) -> &'static str { "always-clean" }
//!     fn description(&self) -> &'static str { "demo mechanism" }
//!     fn profile(&self) -> MechanismProfile {
//!         MechanismProfile {
//!             moment: None,
//!             reference_data: ReferenceDataRequest::new(),
//!             topology: RouteTopology::Linear,
//!             uses_signatures: false,
//!         }
//!     }
//!     fn run(&self, _ctx: &mut JourneyCtx<'_>) -> JourneyVerdict {
//!         JourneyVerdict::clean(true)
//!     }
//! }
//!
//! let mut registry = MechanismRegistry::builtin();
//! registry.register(Arc::new(AlwaysClean));
//! assert!(registry.get("always-clean").is_some());
//! // The fleet engine, matrix, and CLI now drive it like any built-in.
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod appraisal;
pub mod chained;
pub mod cooperating;
pub mod fleet;
pub mod matrix;
pub mod merkle;
pub mod proofs;
pub mod replication;
pub mod traces;

pub use api::{
    run_instrumented, JourneyCtx, JourneyVerdict, MechanismConfig, MechanismProfile,
    MechanismRegistry, ProtectionMechanism, RouteTopology, UnknownMechanism,
};
pub use appraisal::{run_appraised_journey, AppraisalOutcome};
pub use chained::{
    run_encapsulated_journey, run_mac_chained_journey, verify_mac_chain, ChainFraud, ChainLink,
    ChainSecret, ChainVerdict, ChainedMac, EncapsulatedResults, Encapsulation,
};
pub use cooperating::{witness_set, CooperatingAgents};
pub use matrix::{detection_matrix, DetectionCell, ScenarioSpec};
pub use merkle::{MerklePath, MerkleTree};
pub use proofs::{ExecutionProof, ProofError, Prover, StepOpening, Verifier};
pub use replication::{run_replicated_pipeline, ReplicationOutcome, StageSpec, StageVote};
pub use traces::{audit_journey, run_traced_journey, AuditReport, TraceCommitment, TracedJourney};
