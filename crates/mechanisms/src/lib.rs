//! The four existing reference-state mechanisms the paper analyses (§3),
//! implemented as baselines against the framework.
//!
//! | Module | Paper §3 mechanism | Moment | Reference data | Algorithm |
//! |--------|--------------------|--------|----------------|-----------|
//! | [`appraisal`] | State appraisal (Farmer/Guttman/Swarup) | after session (on arrival) | resulting state only | rules |
//! | [`replication`] | Server replication (Minsky et al.) | after session (parallel) | replicated executions | vote counting |
//! | [`traces`] | Execution traces (Vigna) | after task, on suspicion | initial state + trace + input | re-execution against signed hashes |
//! | [`proofs`] | Proof verification (Biehl/Meyer/Wetzel, Yee) | after task | self-contained proof | Merkle spot checks |
//!
//! The proof mechanism deserves a caveat: real holographic/PCP proofs are
//! NP-hard to *construct* (the paper dismisses the approach as impractical
//! for this reason). The [`proofs`] module substitutes a Merkle-committed
//! step transcript with Fiat–Shamir random spot checks, which preserves the
//! *interface* (sublinear verification of an execution leading to the final
//! state, no reference data needed) and the cost shape (O(k·log n)
//! verification vs O(n) re-execution), though not PCP soundness against
//! fully adaptive provers. See DESIGN.md §4 for the substitution record.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod appraisal;
pub mod fleet;
pub mod matrix;
pub mod merkle;
pub mod proofs;
pub mod replication;
pub mod traces;

pub use appraisal::{run_appraised_journey, AppraisalOutcome};
pub use fleet::{run_fleet_journey, FleetAdapterConfig, FleetMechanism, JourneyVerdict};
pub use matrix::{detection_matrix, DetectionCell, MechanismKind, ScenarioSpec};
pub use merkle::{MerklePath, MerkleTree};
pub use proofs::{ExecutionProof, ProofError, Prover, StepOpening, Verifier};
pub use replication::{run_replicated_pipeline, ReplicationOutcome, StageSpec, StageVote};
pub use traces::{audit_journey, run_traced_journey, AuditReport, TraceCommitment, TracedJourney};
