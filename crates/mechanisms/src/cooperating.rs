//! Roth's cooperating agents: a witness agent on a disjoint host set
//! cross-checks the worker agent's interim reference states.
//!
//! The worker agent walks its planned linear route exactly as under the
//! unprotected driver. A second, cooperating agent conceptually travels a
//! *disjoint* set of hosts (every host the scenario provides that is not
//! on the primary route) and, after each session an untrusted route host
//! executes, the witness host assigned to that hop re-executes the
//! session from the recorded reference data (initial state, input log,
//! claimed resulting state and migration target) and compares. Because
//! the two sets are disjoint, a route host cannot sway its own check —
//! unless it recruits exactly the witness host assigned to its hop, which
//! is the mechanism's pinned blind spot (the cross-set analogue of the
//! §5.1 consecutive-host collusion): a
//! [`Attack::CollaborateTamper`] whose accomplice *is* the assigned
//! witness makes the witness vouch instead of checking.
//!
//! Witness assignment is deterministic — hop `i` of the route is checked
//! by `witnesses[i % witnesses.len()]`, witnesses taken in host-spec
//! order — so scenario generators can (and the adaptive campaign
//! generator does) aim collusion at the right witness without simulating
//! the journey.

use refstate_core::{CheckMoment, ReferenceDataKind, ReferenceDataRequest};
use refstate_platform::{Attack, Event, HostId};
use refstate_vm::SessionEnd;

use crate::api::{
    JourneyCtx, JourneyVerdict, MechanismProfile, ProtectionMechanism, RouteTopology,
};

/// The hosts available as witnesses: every context host that is not on
/// the primary route, in host-spec order. Hop `i` of the route is checked
/// by `witnesses[i % witnesses.len()]`.
pub fn witness_set(ctx: &JourneyCtx<'_>) -> Vec<HostId> {
    ctx.hosts
        .iter()
        .map(|h| h.id().clone())
        .filter(|id| !ctx.route.contains(id))
        .collect()
}

/// Roth's cooperating-agents mechanism over disjoint host sets.
///
/// Detection bandwidth matches the re-execution family (state, execution
/// and control-flow manipulation are caught and attributed; input
/// forgery, read attacks, and chain manipulation are invisible), plus the
/// §5.1 route collusion — a colluding *successor* buys nothing because
/// the check runs on the other set. The residual blind spot is cross-set
/// collusion with the assigned witness itself.
#[derive(Debug, Clone, Copy, Default)]
pub struct CooperatingAgents;

impl ProtectionMechanism for CooperatingAgents {
    fn name(&self) -> &'static str {
        "cooperating"
    }

    fn description(&self) -> &'static str {
        "Roth's cooperating agents: a witness on a disjoint host set re-checks every session"
    }

    fn profile(&self) -> MechanismProfile {
        MechanismProfile {
            moment: Some(CheckMoment::AfterSession),
            reference_data: ReferenceDataRequest::new()
                .with(ReferenceDataKind::InitialState)
                .with(ReferenceDataKind::ResultingState)
                .with(ReferenceDataKind::Input),
            topology: RouteTopology::DisjointSets,
            uses_signatures: false,
        }
    }

    fn run(&self, ctx: &mut JourneyCtx<'_>) -> JourneyVerdict {
        let witnesses = witness_set(ctx);
        if witnesses.is_empty() {
            // Engines check the profile first; a context without spare
            // hosts is an infrastructure failure, not a panic.
            return JourneyVerdict::clean(false);
        }

        let mut agent = ctx.agent.clone();
        let mut current = ctx.start().clone();
        ctx.log.record(Event::AgentCreated {
            agent: agent.id.clone(),
            home: current.clone(),
        });

        for hop in 0..ctx.config.max_hops {
            let Some(host) = ctx.hosts.iter_mut().find(|h| h.id() == &current) else {
                // Churned or unknown host: the worker agent is lost.
                return JourneyVerdict::clean(false);
            };
            let trusted = host.is_trusted();
            // Cross-set collusion: the executing host recruited a witness.
            let recruited = match host.behaviour().attack() {
                Some(Attack::CollaborateTamper { accomplice, .. }) => Some(accomplice.clone()),
                _ => None,
            };
            let record = match host.execute_session(&agent, &ctx.config.exec, ctx.log) {
                Ok(record) => record,
                Err(_) => return JourneyVerdict::clean(false),
            };
            let halted = matches!(record.outcome.end, SessionEnd::Halt);

            if !trusted {
                let _span = ctx.stage("cooperating.check");
                let witness = witnesses[hop % witnesses.len()].clone();
                if recruited.as_ref() == Some(&witness) {
                    // The assigned witness vouches instead of checking —
                    // the mechanism's pinned cross-set blind spot.
                    ctx.log.record(Event::CheckPerformed {
                        checker: witness,
                        checked: current.clone(),
                        passed: true,
                    });
                } else {
                    let claimed_next = match &record.outcome.end {
                        SessionEnd::Halt => None,
                        SessionEnd::Migrate(next) => Some(next.clone()),
                    };
                    let outcome = ctx.pipeline.verify_session(
                        &agent.program,
                        &record.initial_state,
                        &record.outcome.state,
                        &record.outcome.input_log,
                        Some(&claimed_next),
                        &ctx.config.exec,
                    );
                    let passed = outcome.passed();
                    ctx.log.record(Event::CheckPerformed {
                        checker: witness.clone(),
                        checked: current.clone(),
                        passed,
                    });
                    if !passed {
                        ctx.log.record(Event::FraudDetected {
                            culprit: current.clone(),
                            detector: witness,
                            reason: format!("cooperating witness check failed: {outcome:?}"),
                        });
                        return JourneyVerdict::accusing(vec![current], halted);
                    }
                }
            }

            agent.state = record.outcome.state.clone();
            match record.outcome.end {
                SessionEnd::Halt => return JourneyVerdict::clean(true),
                SessionEnd::Migrate(next) => {
                    let next = HostId::new(next);
                    if !ctx.hosts.iter().any(|h| h.id() == &next) {
                        return JourneyVerdict::clean(false);
                    }
                    let bytes = refstate_wire::to_wire(&agent).len();
                    ctx.log.record(Event::Migrated {
                        from: current.clone(),
                        to: next.clone(),
                        agent: agent.id.clone(),
                        bytes,
                    });
                    current = next;
                }
            }
        }
        // Hop budget exhausted: a runaway itinerary is infrastructure.
        JourneyVerdict::clean(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::MechanismConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use refstate_core::protocol::host_directory;
    use refstate_crypto::DsaParams;
    use refstate_platform::{AgentImage, EventLog, Host, HostSpec};
    use refstate_vm::{assemble, DataState, Value};

    fn summing_agent() -> AgentImage {
        let program = assemble(
            r#"
            input "n"
            load "total"
            add
            store "total"
            load "hop"
            push 1
            add
            store "hop"
            load "hop"
            push 1
            eq
            jnz to_b
            load "hop"
            push 2
            eq
            jnz to_c
            halt
        to_b:
            push "b"
            migrate
        to_c:
            push "c"
            migrate
        "#,
        )
        .unwrap();
        let mut state = DataState::new();
        state.set("total", Value::Int(0));
        state.set("hop", Value::Int(0));
        AgentImage::new("coop-test", program, state)
    }

    fn hosts(middle_attack: Option<Attack>) -> Vec<Host> {
        let mut rng = StdRng::seed_from_u64(91);
        let params = DsaParams::test_group_256();
        let mut b = HostSpec::new("b").with_input("n", Value::Int(20));
        if let Some(a) = middle_attack {
            b = b.malicious(a);
        }
        Host::build_all(
            vec![
                HostSpec::new("a").trusted().with_input("n", Value::Int(10)),
                b,
                HostSpec::new("c").with_input("n", Value::Int(30)),
                HostSpec::new("v0"),
                HostSpec::new("v1"),
            ],
            &params,
            &mut rng,
        )
    }

    fn run(attack: Option<Attack>) -> (JourneyVerdict, EventLog) {
        let mut hs = hosts(attack);
        let directory = host_directory(&hs);
        let config = MechanismConfig::default();
        let log = EventLog::new();
        let route = vec![HostId::new("a"), HostId::new("b"), HostId::new("c")];
        let mut ctx = JourneyCtx::new(
            &mut hs,
            route,
            summing_agent(),
            &directory,
            &config,
            &log,
            13,
        );
        let verdict = CooperatingAgents.run(&mut ctx);
        (verdict, log)
    }

    #[test]
    fn honest_journey_completes_clean() {
        let (verdict, log) = run(None);
        assert!(!verdict.detected);
        assert!(verdict.completed);
        // Both untrusted hops (b at hop 1, c at hop 2) were checked.
        assert_eq!(
            log.count_matching(|e| matches!(e, Event::CheckPerformed { .. })),
            2
        );
    }

    #[test]
    fn tampering_is_caught_and_attributed_by_the_witness() {
        let (verdict, log) = run(Some(Attack::TamperVariable {
            name: "total".into(),
            value: Value::Int(7),
        }));
        assert!(verdict.detected);
        assert_eq!(verdict.accused, vec![HostId::new("b")]);
        assert!(!verdict.completed, "aborted at the detection point");
        // Hop 1's check is assigned to witnesses[1 % 2] = v1.
        assert_eq!(
            log.count_matching(|e| matches!(
                e,
                Event::FraudDetected { detector, .. } if detector == &HostId::new("v1")
            )),
            1
        );
    }

    #[test]
    fn route_collusion_buys_nothing_across_sets() {
        // A colluding successor defeats the §5.1 protocol, but here the
        // check runs on the disjoint witness set.
        let (verdict, _) = run(Some(Attack::CollaborateTamper {
            name: "total".into(),
            value: Value::Int(7),
            accomplice: HostId::new("c"),
        }));
        assert!(verdict.detected);
        assert_eq!(verdict.accused, vec![HostId::new("b")]);
    }

    #[test]
    fn recruiting_the_assigned_witness_evades_detection() {
        // Hop 1 is checked by v1: recruiting exactly that witness is the
        // pinned cross-set blind spot.
        let (verdict, log) = run(Some(Attack::CollaborateTamper {
            name: "total".into(),
            value: Value::Int(7),
            accomplice: HostId::new("v1"),
        }));
        assert!(!verdict.detected);
        assert!(verdict.completed);
        // The vouch is still logged as a (fake) passed check.
        assert_eq!(
            log.count_matching(|e| matches!(e, Event::CheckPerformed { passed: true, .. })),
            2
        );
        // Recruiting the *other* witness does not help.
        let (verdict, _) = run(Some(Attack::CollaborateTamper {
            name: "total".into(),
            value: Value::Int(7),
            accomplice: HostId::new("v0"),
        }));
        assert!(verdict.detected);
    }

    #[test]
    fn input_forgery_stays_invisible() {
        let (verdict, _) = run(Some(Attack::ForgeInput {
            tag: "n".into(),
            value: Value::Int(1),
        }));
        assert!(!verdict.detected, "forged inputs replay consistently");
        assert!(verdict.completed);
    }

    #[test]
    fn redirected_migration_is_caught() {
        let (verdict, _) = run(Some(Attack::RedirectMigration {
            to: HostId::new("a"),
        }));
        assert!(verdict.detected);
        assert_eq!(verdict.accused, vec![HostId::new("b")]);
    }

    #[test]
    fn no_spare_hosts_is_an_infra_error_not_a_panic() {
        let mut rng = StdRng::seed_from_u64(91);
        let params = DsaParams::test_group_256();
        let mut hs = Host::build_all(
            vec![
                HostSpec::new("a").trusted().with_input("n", Value::Int(10)),
                HostSpec::new("b").with_input("n", Value::Int(20)),
                HostSpec::new("c").with_input("n", Value::Int(30)),
            ],
            &params,
            &mut rng,
        );
        let directory = host_directory(&hs);
        let config = MechanismConfig::default();
        let log = EventLog::new();
        let route = vec![HostId::new("a"), HostId::new("b"), HostId::new("c")];
        let mut ctx = JourneyCtx::new(
            &mut hs,
            route,
            summing_agent(),
            &directory,
            &config,
            &log,
            13,
        );
        let verdict = CooperatingAgents.run(&mut ctx);
        assert!(!verdict.detected);
        assert!(verdict.infra_error);
    }
}
