//! State appraisal (Farmer, Guttman, Swarup — §3.1).
//!
//! "A 'state appraisal' mechanism … checks the validity of the state of an
//! agent as the first step of executing an agent arrived at a host. This
//! checking mechanism only considers the current state of the arrived
//! agent." The reference data is a rule set written by the programmer; the
//! check is performed by the *receiving* host in its own interest ("it
//! wants to execute only valid, i.e. untampered agents").
//!
//! Consequences the paper spells out, reproduced by the tests:
//!
//! * attacks the rules don't express pass undetected (the price-shopping
//!   example: without the inputs, a wrong minimum is unfalsifiable),
//! * a colluding receiving host can simply not check.

use refstate_core::rules::RuleSet;
use refstate_core::verdict::CheckVerdict;
use refstate_platform::{AgentImage, Event, EventLog, Host, HostId};
use refstate_vm::{DataState, ExecConfig, SessionEnd, VmError};

/// The outcome of a state-appraised journey.
#[derive(Debug)]
pub struct AppraisalOutcome {
    /// The agent's final data state.
    pub final_state: DataState,
    /// Hosts visited in order.
    pub path: Vec<HostId>,
    /// One verdict per arrival appraisal.
    pub verdicts: Vec<CheckVerdict>,
    /// `Some((culprit, detector))` when an appraisal failed; journey
    /// aborted there. The culprit is the *previous* host (the one that
    /// produced the rejected state) — appraisal can only blame the sender.
    pub rejection: Option<(HostId, HostId)>,
}

impl AppraisalOutcome {
    /// Returns `true` when every appraisal passed.
    pub fn clean(&self) -> bool {
        self.rejection.is_none()
    }
}

/// Runs a journey in which every receiving host appraises the arriving
/// agent state against `rules` before executing it.
///
/// `colluders` lists hosts that skip the appraisal (the paper: "if the host
/// does not check the agent (e.g. because the host collaborates with the
/// attacking host), an attack against an agent cannot be detected").
///
/// # Errors
///
/// Returns [`VmError`] for infrastructure failures (the appraisal result is
/// reported in the outcome, not as an error).
#[allow(clippy::too_many_arguments)]
pub fn run_appraised_journey(
    hosts: &mut [Host],
    start: impl Into<HostId>,
    agent: AgentImage,
    rules: &RuleSet,
    colluders: &[HostId],
    exec: &ExecConfig,
    log: &EventLog,
    max_hops: usize,
) -> Result<AppraisalOutcome, VmError> {
    let mut image = agent;
    let creation_state = image.state.clone();
    let mut current: HostId = start.into();
    log.record(Event::AgentCreated {
        agent: image.id.clone(),
        home: current.clone(),
    });
    let mut path = vec![current.clone()];
    let mut verdicts = Vec::new();
    let mut previous: Option<HostId> = None;

    for _ in 0..max_hops {
        // --- appraisal on arrival (not at the creation host) ---
        if let Some(prev) = &previous {
            if !colluders.contains(&current) {
                let report = rules.evaluate(&creation_state, &image.state);
                let passed = report.passed();
                log.record(Event::CheckPerformed {
                    checker: current.clone(),
                    checked: prev.clone(),
                    passed,
                });
                verdicts.push(CheckVerdict {
                    checked: prev.clone(),
                    checker: current.clone(),
                    seq: (path.len() - 2) as u64,
                    failure: if passed {
                        None
                    } else {
                        Some(refstate_core::FailureReason::RuleViolated {
                            violations: report.violations.clone(),
                        })
                    },
                });
                if !passed {
                    log.record(Event::FraudDetected {
                        culprit: prev.clone(),
                        detector: current.clone(),
                        reason: format!("{} appraisal rule(s) violated", report.violations.len()),
                    });
                    return Ok(AppraisalOutcome {
                        final_state: image.state,
                        path,
                        verdicts,
                        rejection: Some((prev.clone(), current.clone())),
                    });
                }
            }
        }

        // --- execute ---
        let host =
            hosts
                .iter_mut()
                .find(|h| h.id() == &current)
                .ok_or(VmError::InputUnavailable {
                    pc: 0,
                    what: format!("host:{current}"),
                })?;
        let record = host.execute_session(&image, exec, log)?;
        image.state = record.outcome.state.clone();
        match &record.outcome.end {
            SessionEnd::Halt => {
                return Ok(AppraisalOutcome {
                    final_state: image.state,
                    path,
                    verdicts,
                    rejection: None,
                })
            }
            SessionEnd::Migrate(next) => {
                let next = HostId::new(next.clone());
                log.record(Event::Migrated {
                    from: current.clone(),
                    to: next.clone(),
                    agent: image.id.clone(),
                    bytes: refstate_wire::to_wire(&image).len(),
                });
                previous = Some(current.clone());
                path.push(next.clone());
                current = next;
            }
        }
    }
    Err(VmError::StepLimitExceeded {
        limit: max_hops as u64,
        session: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use refstate_core::rules::{CmpOp, Expr, Pred};
    use refstate_crypto::DsaParams;
    use refstate_platform::{Attack, HostSpec};
    use refstate_vm::{assemble, Value};

    /// Budget agent: spends an input amount per shop; invariant
    /// spent + rest == initial budget.
    fn budget_agent() -> AgentImage {
        let program = assemble(
            r#"
            input "cost"
            dup
            load "spent"
            add
            store "spent"
            load "rest"
            swap
            sub
            store "rest"
            load "hops"
            push 1
            add
            store "hops"
            load "hops"
            push 1
            eq
            jnz to_b
            load "hops"
            push 2
            eq
            jnz to_c
            halt
        to_b:
            push "b"
            migrate
        to_c:
            push "c"
            migrate
        "#,
        )
        .unwrap();
        let mut state = DataState::new();
        state.set("spent", Value::Int(0));
        state.set("rest", Value::Int(100));
        state.set("hops", Value::Int(0));
        AgentImage::new("budget", program, state)
    }

    fn money_rules() -> RuleSet {
        RuleSet::new().rule(
            "spent+rest=initial",
            Pred::cmp(
                CmpOp::Eq,
                Expr::Add(Box::new(Expr::var("spent")), Box::new(Expr::var("rest"))),
                Expr::initial("rest"),
            ),
        )
    }

    fn hosts(b_attack: Option<Attack>) -> Vec<Host> {
        let mut rng = StdRng::seed_from_u64(55);
        let params = DsaParams::test_group_256();
        let mut b = HostSpec::new("b").with_input("cost", Value::Int(20));
        if let Some(a) = b_attack {
            b = b.malicious(a);
        }
        vec![
            Host::new(
                HostSpec::new("a")
                    .trusted()
                    .with_input("cost", Value::Int(10)),
                &params,
                &mut rng,
            ),
            Host::new(b, &params, &mut rng),
            Host::new(
                HostSpec::new("c")
                    .trusted()
                    .with_input("cost", Value::Int(5)),
                &params,
                &mut rng,
            ),
        ]
    }

    #[test]
    fn honest_journey_passes_appraisal() {
        let mut hs = hosts(None);
        let log = EventLog::new();
        let outcome = run_appraised_journey(
            &mut hs,
            "a",
            budget_agent(),
            &money_rules(),
            &[],
            &ExecConfig::default(),
            &log,
            10,
        )
        .unwrap();
        assert!(outcome.clean());
        assert_eq!(outcome.final_state.get_int("spent"), Some(35));
        assert_eq!(outcome.final_state.get_int("rest"), Some(65));
        assert_eq!(outcome.verdicts.len(), 2);
    }

    #[test]
    fn invariant_breaking_theft_is_caught() {
        // The shop steals 15 from "rest" without booking it as spent.
        let mut hs = hosts(Some(Attack::TamperVariable {
            name: "rest".into(),
            value: Value::Int(55),
        }));
        let log = EventLog::new();
        let outcome = run_appraised_journey(
            &mut hs,
            "a",
            budget_agent(),
            &money_rules(),
            &[],
            &ExecConfig::default(),
            &log,
            10,
        )
        .unwrap();
        let (culprit, detector) = outcome.rejection.expect("appraisal fires");
        assert_eq!(culprit.as_str(), "b");
        assert_eq!(detector.as_str(), "c");
    }

    #[test]
    fn invariant_preserving_tampering_slips_through() {
        // The paper's §3.1 limitation: attacks the rules do not express
        // stay invisible (re-execution would catch them).
        let mut hs = hosts(Some(Attack::TamperVariable {
            name: "spent".into(),
            value: Value::Int(10),
        }));
        // A tamper the rules never mention — planting a bogus variable the
        // agent will carry home — is invisible to appraisal.
        let mut hs2 = hosts(Some(Attack::TamperVariable {
            name: "planted".into(),
            value: Value::Int(1),
        }));
        let log = EventLog::new();
        // The spent-only tamper breaks the invariant and is caught:
        let caught = run_appraised_journey(
            &mut hs,
            "a",
            budget_agent(),
            &money_rules(),
            &[],
            &ExecConfig::default(),
            &log,
            10,
        )
        .unwrap();
        assert!(!caught.clean());
        // The planted variable is invisible to the money rule — appraisal
        // stays silent and the agent carries the attacker's data home:
        let missed = run_appraised_journey(
            &mut hs2,
            "a",
            budget_agent(),
            &money_rules(),
            &[],
            &ExecConfig::default(),
            &log,
            10,
        )
        .unwrap();
        assert!(
            missed.clean(),
            "rules that don't mention a variable cannot protect it"
        );
        assert_eq!(missed.path.len(), 3);
        assert_eq!(missed.final_state.get_int("planted"), Some(1));
    }

    #[test]
    fn colluding_receiver_skips_the_check() {
        let mut hs = hosts(Some(Attack::TamperVariable {
            name: "rest".into(),
            value: Value::Int(0),
        }));
        let log = EventLog::new();
        let outcome = run_appraised_journey(
            &mut hs,
            "a",
            budget_agent(),
            &money_rules(),
            &[HostId::new("c")],
            &ExecConfig::default(),
            &log,
            10,
        )
        .unwrap();
        assert!(
            outcome.clean(),
            "a collaborating next host does not appraise — the §3.1 caveat"
        );
    }
}
