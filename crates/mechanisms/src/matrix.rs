//! The detection matrix: which mechanism catches which attack.
//!
//! This is the empirical counterpart of the paper's §4 "protection
//! bandwidth" analysis: a standard staged scenario (trusted home,
//! untrusted shop with two honest replicas, trusted return) runs once per
//! (mechanism × attack) cell and reports whether the attack was detected.
//! Every cell dispatches through the [`crate::api::MechanismRegistry`] —
//! the matrix has no mechanism knowledge of its own, so a newly
//! registered mechanism shows up as a row for free.
//!
//! The expected shape:
//!
//! * state-visible attacks (tamper/delete/scale/skip/redirect) are caught
//!   by every reference-state mechanism with enough data,
//! * weak rules miss whatever the rules don't express,
//! * input attacks and read attacks are caught by nobody (the paper's
//!   §4.2), except replication's replicated resources,
//! * consecutive-host collusion defeats the session-checking protocol but
//!   not replication.

use rand::rngs::StdRng;
use rand::SeedableRng;
use refstate_core::protocol::host_directory;
use refstate_crypto::DsaParams;
use refstate_platform::{AgentImage, Attack, EventLog, Host, HostId, HostSpec};
use refstate_vm::{assemble, DataState, Value};

use crate::api::{JourneyCtx, MechanismConfig, MechanismRegistry, ProtectionMechanism};
use crate::replication::StageSpec;

/// A scenario: the attack the untrusted middle host mounts (or none).
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// A short label for reports.
    pub label: &'static str,
    /// The middle host's attack; `None` = honest run.
    pub attack: Option<Attack>,
    /// Whether the paper predicts reference-state mechanisms detect it.
    pub expected_detectable: bool,
}

/// The standard attack scenarios.
///
/// Tamper forgeries are *negative* values, aligned with the fleet
/// generator: honest totals are positive sums, so a negative forgery is
/// always a real state change **and** violates the default appraisal
/// rule set. (Earlier revisions forged positive values, which slipped
/// past appraisal's `total-non-negative` rule — the appraisal row now
/// reflects the rules' bandwidth on tamper/collude cells too; see
/// `appraisal_catches_rule_violating_tampering`.)
pub fn standard_scenarios() -> Vec<ScenarioSpec> {
    vec![
        ScenarioSpec {
            label: "honest",
            attack: None,
            expected_detectable: false,
        },
        ScenarioSpec {
            label: "tamper-variable",
            attack: Some(Attack::TamperVariable {
                name: "total".into(),
                value: Value::Int(-7),
            }),
            expected_detectable: true,
        },
        ScenarioSpec {
            label: "delete-variable",
            attack: Some(Attack::DeleteVariable {
                name: "total".into(),
            }),
            expected_detectable: true,
        },
        ScenarioSpec {
            label: "scale-int",
            attack: Some(Attack::ScaleIntVariable {
                name: "total".into(),
                factor: 3,
            }),
            expected_detectable: true,
        },
        ScenarioSpec {
            label: "skip-execution",
            attack: Some(Attack::SkipExecution),
            expected_detectable: true,
        },
        ScenarioSpec {
            label: "redirect-migration",
            // Send the agent back to "a" instead of onward to "c": a real
            // detour (redirecting to the legitimate next hop would be a
            // no-op, not an attack).
            attack: Some(Attack::RedirectMigration {
                to: HostId::new("a"),
            }),
            expected_detectable: true,
        },
        ScenarioSpec {
            label: "forge-input",
            attack: Some(Attack::ForgeInput {
                tag: "n".into(),
                value: Value::Int(-9),
            }),
            expected_detectable: false,
        },
        ScenarioSpec {
            label: "drop-input",
            attack: Some(Attack::DropInput {
                tag: "unused".into(),
            }),
            expected_detectable: false,
        },
        ScenarioSpec {
            label: "read-state",
            attack: Some(Attack::ReadState),
            expected_detectable: false,
        },
        ScenarioSpec {
            label: "collude-next",
            attack: Some(Attack::CollaborateTamper {
                name: "total".into(),
                value: Value::Int(-7),
                accomplice: HostId::new("c"),
            }),
            expected_detectable: false, // for the session protocol
        },
        // Chain-manipulation attacks: outside the reference-state
        // bandwidth entirely (the chain does not exist under those
        // mechanisms), caught only by the chained-integrity family.
        // `swap-two-hops` is omitted here — it needs two recorded
        // predecessors and the standard scenario's attacker has one; the
        // fleet presets and the adversarial battery cover it.
        ScenarioSpec {
            label: "truncate-tail",
            attack: Some(Attack::TruncateChainTail { drop: 1 }),
            expected_detectable: false,
        },
        ScenarioSpec {
            label: "replace-partial-result",
            attack: Some(Attack::ReplacePartialResult),
            expected_detectable: false,
        },
        ScenarioSpec {
            label: "collude-predecessor",
            attack: Some(Attack::ForgeChainEntry {
                accomplice: HostId::new("a"),
            }),
            expected_detectable: false,
        },
    ]
}

/// One matrix cell.
#[derive(Debug, Clone)]
pub struct DetectionCell {
    /// The mechanism's registry name (row).
    pub mechanism: &'static str,
    /// The scenario label (column).
    pub scenario: &'static str,
    /// Whether the mechanism flagged the run.
    pub detected: bool,
    /// Whether the journey ran to completion (vs aborted at detection).
    pub completed: bool,
}

/// The three-hop measurement agent: adds one input per host into `total`.
fn matrix_agent() -> AgentImage {
    let program = assemble(
        r#"
        input "n"
        load "total"
        add
        store "total"
        load "hops"
        push 1
        add
        store "hops"
        load "hops"
        push 1
        eq
        jnz to_b
        load "hops"
        push 2
        eq
        jnz to_c
        halt
    to_b:
        push "b"
        migrate
    to_c:
        push "c"
        migrate
    "#,
    )
    .unwrap();
    let mut state = DataState::new();
    state.set("total", Value::Int(0));
    state.set("hops", Value::Int(0));
    AgentImage::new("matrix", program, state)
}

/// The standard host set: linear route a → b → c, plus honest replicas
/// b1/b2 of the untrusted middle stage so the replicated topology can run
/// the *same* scenario. Linear mechanisms never visit the replicas.
fn matrix_hosts(attack: Option<Attack>) -> Vec<Host> {
    let mut rng = StdRng::seed_from_u64(1);
    let params = DsaParams::test_group_256();
    let mut b = HostSpec::new("b")
        .with_input("n", Value::Int(20))
        .with_input("unused", Value::Int(0));
    if let Some(a) = attack {
        b = b.malicious(a);
    }
    Host::build_all(
        vec![
            HostSpec::new("a").trusted().with_input("n", Value::Int(10)),
            b,
            HostSpec::new("b1")
                .with_input("n", Value::Int(20))
                .with_input("unused", Value::Int(0)),
            HostSpec::new("b2")
                .with_input("n", Value::Int(20))
                .with_input("unused", Value::Int(0)),
            HostSpec::new("c").trusted().with_input("n", Value::Int(30)),
        ],
        &params,
        &mut rng,
    )
}

/// Runs one cell through the uniform mechanism API.
pub fn run_cell(mechanism: &dyn ProtectionMechanism, scenario: &ScenarioSpec) -> DetectionCell {
    let mut hosts = matrix_hosts(scenario.attack.clone());
    let directory = host_directory(&hosts);
    let config = MechanismConfig::default();
    let log = EventLog::new();
    let route = vec![HostId::new("a"), HostId::new("b"), HostId::new("c")];
    let mut ctx = JourneyCtx::new(
        &mut hosts,
        route,
        matrix_agent(),
        &directory,
        &config,
        &log,
        2,
    )
    .with_stages(vec![
        StageSpec::new(["a"]),
        StageSpec::new(["b", "b1", "b2"]),
        StageSpec::new(["c"]),
    ]);
    let verdict = mechanism.run(&mut ctx);
    DetectionCell {
        mechanism: mechanism.name(),
        scenario: scenario.label,
        detected: verdict.detected,
        completed: verdict.completed,
    }
}

/// Runs the full matrix over every registered mechanism.
pub fn detection_matrix() -> Vec<DetectionCell> {
    let registry = MechanismRegistry::builtin();
    let scenarios = standard_scenarios();
    registry
        .iter()
        .flat_map(|m| scenarios.iter().map(|s| run_cell(m.as_ref(), s)))
        .collect()
}

/// Renders the matrix as an ASCII table (rows in registry order).
pub fn render_matrix(cells: &[DetectionCell]) -> String {
    let scenarios = standard_scenarios();
    let mut rows: Vec<&'static str> = Vec::new();
    for cell in cells {
        if !rows.contains(&cell.mechanism) {
            rows.push(cell.mechanism);
        }
    }
    let mut out = String::new();
    out.push_str(&format!("{:<20}", "mechanism \\ attack"));
    for s in &scenarios {
        out.push_str(&format!(" {:>18}", s.label));
    }
    out.push('\n');
    for mechanism in rows {
        out.push_str(&format!("{mechanism:<20}"));
        for s in &scenarios {
            let cell = cells
                .iter()
                .find(|c| c.mechanism == mechanism && c.scenario == s.label)
                .expect("matrix complete");
            out.push_str(&format!(
                " {:>18}",
                if cell.detected { "DETECTED" } else { "-" }
            ));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(mechanism: &str, label: &str) -> DetectionCell {
        let registry = MechanismRegistry::builtin();
        let mechanism = registry.get(mechanism).expect("known mechanism");
        let scenario = standard_scenarios()
            .into_iter()
            .find(|s| s.label == label)
            .expect("known scenario");
        run_cell(mechanism.as_ref(), &scenario)
    }

    #[test]
    fn honest_runs_never_flagged() {
        for m in MechanismRegistry::builtin().names() {
            let c = cell(m, "honest");
            assert!(!c.detected, "{m} false-positived an honest run");
        }
    }

    #[test]
    fn unprotected_detects_nothing() {
        for s in standard_scenarios() {
            let c = cell("unprotected", s.label);
            assert!(!c.detected);
        }
    }

    /// Classifies every registered mechanism by whether it is expected to
    /// catch all five state-visible attacks. Enumerates the registry and
    /// panics on an unclassified name, so adding a mechanism forces an
    /// explicit bandwidth claim here instead of silently skipping the
    /// cross-family contrast coverage.
    fn full_bandwidth_mechanisms() -> (Vec<&'static str>, Vec<&'static str>) {
        let mut strong = Vec::new();
        let mut weak = Vec::new();
        for m in MechanismRegistry::builtin().names() {
            match m {
                "framework" | "protocol" | "traces" | "replication" | "cooperating" => {
                    strong.push(m)
                }
                "unprotected" | "appraisal" | "chained" | "encapsulated" => weak.push(m),
                other => {
                    panic!("unclassified mechanism {other}: declare its state-attack bandwidth")
                }
            }
        }
        (strong, weak)
    }

    #[test]
    fn strong_mechanisms_catch_state_attacks() {
        let (strong, _) = full_bandwidth_mechanisms();
        assert!(strong.len() >= 4, "registry lost its strong mechanisms");
        for m in strong {
            for label in [
                "tamper-variable",
                "delete-variable",
                "scale-int",
                "skip-execution",
                "redirect-migration",
            ] {
                let c = cell(m, label);
                assert!(c.detected, "{m} missed {label}");
            }
        }
    }

    #[test]
    fn chained_family_catches_chain_manipulation_everyone_else_is_blind() {
        for label in ["truncate-tail", "replace-partial-result"] {
            for m in MechanismRegistry::builtin().names() {
                let c = cell(m, label);
                if m == "chained" || m == "encapsulated" {
                    assert!(c.detected, "{m} missed {label}");
                } else {
                    assert!(!c.detected, "{m} impossibly detected {label}");
                }
            }
        }
        // The owner-only MAC chain completes the journey before the
        // after-task verification fires; the publicly verifiable
        // encapsulations abort at the next arrival.
        assert!(cell("chained", "truncate-tail").completed);
        assert!(!cell("encapsulated", "truncate-tail").completed);
    }

    #[test]
    fn chained_family_misses_computation_lies_reexecution_catches() {
        // The structural contrast in both directions, cell by cell.
        for label in ["tamper-variable", "scale-int", "skip-execution"] {
            for m in ["chained", "encapsulated"] {
                let c = cell(m, label);
                assert!(!c.detected, "{m} cannot see the {label} computation lie");
            }
            assert!(
                cell("framework", label).detected,
                "re-execution sees {label}"
            );
        }
    }

    #[test]
    fn colluding_predecessor_evades_the_chained_family() {
        for m in ["chained", "encapsulated"] {
            let c = cell(m, "collude-predecessor");
            assert!(
                !c.detected,
                "{m} cannot beat a shared chain key (§5.1 analogue)"
            );
        }
    }

    #[test]
    fn nobody_catches_input_or_read_attacks() {
        for m in MechanismRegistry::builtin().names() {
            for label in ["forge-input", "drop-input", "read-state"] {
                // Replication DOES catch forged input: replicas with honest
                // feeds outvote the forgery (replicated resources!).
                if m == "replication" && label == "forge-input" {
                    continue;
                }
                let c = cell(m, label);
                assert!(!c.detected, "{m} impossibly detected {label}");
            }
        }
    }

    #[test]
    fn replication_catches_forged_input_thanks_to_replicated_resources() {
        let c = cell("replication", "forge-input");
        assert!(c.detected, "honest replicas outvote the forged input");
    }

    #[test]
    fn collusion_beats_session_checking_but_not_replication() {
        let c = cell("protocol", "collude-next");
        assert!(!c.detected, "the accomplice skips the check (§5.1)");
        let c = cell("replication", "collude-next");
        assert!(c.detected, "the colluders are not in the same voting stage");
        // The generic framework driver has no collusion modelling — the
        // check runs regardless, so the tampering is caught.
        let c = cell("framework", "collude-next");
        assert!(c.detected);
        // Cooperating agents check from the disjoint witness set, so an
        // on-route accomplice buys nothing either.
        let c = cell("cooperating", "collude-next");
        assert!(c.detected, "route collusion cannot reach the witness set");
    }

    #[test]
    fn appraisal_misses_rule_preserving_attacks() {
        // scale by 3 keeps total >= 0: invisible to the rule set.
        let c = cell("appraisal", "scale-int");
        assert!(!c.detected);
        // Deleting "total" violates the Defined rule: caught.
        let c = cell("appraisal", "delete-variable");
        assert!(c.detected);
    }

    #[test]
    fn appraisal_catches_rule_violating_tampering() {
        // The standard tamper forgery is negative (see
        // `standard_scenarios`), so it violates `total-non-negative` and
        // the appraisal row shows its rule bandwidth on these cells too.
        let c = cell("appraisal", "tamper-variable");
        assert!(c.detected);
        let c = cell("appraisal", "collude-next");
        assert!(c.detected, "rules run on arrival regardless of collusion");
    }

    #[test]
    fn full_matrix_has_all_cells() {
        let cells = detection_matrix();
        let registry = MechanismRegistry::builtin();
        assert_eq!(cells.len(), registry.len() * standard_scenarios().len());
        let rendered = render_matrix(&cells);
        for name in registry.names() {
            assert!(rendered.contains(name), "row for {name}");
        }
        assert!(rendered.contains("DETECTED"));
    }
}
