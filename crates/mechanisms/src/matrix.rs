//! The detection matrix: which mechanism catches which attack.
//!
//! This is the empirical counterpart of the paper's §4 "protection
//! bandwidth" analysis: a standard three-host scenario (trusted home,
//! untrusted shop, trusted return) runs once per (mechanism × attack) cell
//! and reports whether the attack was detected. The expected shape:
//!
//! * state-visible attacks (tamper/delete/scale/skip/redirect) are caught
//!   by every reference-state mechanism with enough data,
//! * weak rules miss whatever the rules don't express,
//! * input attacks and read attacks are caught by nobody (the paper's
//!   §4.2), except signed-input extensions (not part of the matrix),
//! * consecutive-host collusion defeats the session-checking protocol but
//!   not replication.

use std::fmt;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use refstate_core::framework::{run_framework_journey, ProtectedAgent, ProtectionConfig};
use refstate_core::protocol::{run_protected_journey, ProtocolConfig};
use refstate_core::rules::{CmpOp, Expr, Pred, RuleSet};
use refstate_core::ReExecutionChecker;
use refstate_crypto::{DsaParams, KeyDirectory};
use refstate_platform::{AgentImage, Attack, EventLog, Host, HostId, HostSpec};
use refstate_vm::{assemble, DataState, ExecConfig, Value};

use crate::appraisal::run_appraised_journey;
use crate::replication::{run_replicated_pipeline, StageSpec};
use crate::traces::{audit_journey, run_traced_journey};

/// The mechanisms the matrix exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MechanismKind {
    /// No protection at all (sanity row: detects nothing).
    Unprotected,
    /// State appraisal with a simple rule set (§3.1).
    StateAppraisal,
    /// The framework with re-execution checking (generic driver).
    FrameworkReExecution,
    /// The paper's §5.1 session-checking protocol.
    SessionCheckingProtocol,
    /// Vigna traces + owner audit (§3.3).
    ExecutionTraces,
    /// Server replication with 3 replicas of the untrusted stage (§3.2).
    ServerReplication,
}

impl MechanismKind {
    /// All matrix rows.
    pub const ALL: [MechanismKind; 6] = [
        MechanismKind::Unprotected,
        MechanismKind::StateAppraisal,
        MechanismKind::FrameworkReExecution,
        MechanismKind::SessionCheckingProtocol,
        MechanismKind::ExecutionTraces,
        MechanismKind::ServerReplication,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            MechanismKind::Unprotected => "unprotected",
            MechanismKind::StateAppraisal => "state appraisal",
            MechanismKind::FrameworkReExecution => "framework/re-exec",
            MechanismKind::SessionCheckingProtocol => "session checking",
            MechanismKind::ExecutionTraces => "traces+audit",
            MechanismKind::ServerReplication => "replication(3)",
        }
    }
}

impl fmt::Display for MechanismKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A scenario: the attack the untrusted middle host mounts (or none).
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// A short label for reports.
    pub label: &'static str,
    /// The middle host's attack; `None` = honest run.
    pub attack: Option<Attack>,
    /// Whether the paper predicts reference-state mechanisms detect it.
    pub expected_detectable: bool,
}

/// The standard attack scenarios.
pub fn standard_scenarios() -> Vec<ScenarioSpec> {
    vec![
        ScenarioSpec {
            label: "honest",
            attack: None,
            expected_detectable: false,
        },
        ScenarioSpec {
            label: "tamper-variable",
            attack: Some(Attack::TamperVariable {
                name: "total".into(),
                value: Value::Int(7),
            }),
            expected_detectable: true,
        },
        ScenarioSpec {
            label: "delete-variable",
            attack: Some(Attack::DeleteVariable {
                name: "total".into(),
            }),
            expected_detectable: true,
        },
        ScenarioSpec {
            label: "scale-int",
            attack: Some(Attack::ScaleIntVariable {
                name: "total".into(),
                factor: 3,
            }),
            expected_detectable: true,
        },
        ScenarioSpec {
            label: "skip-execution",
            attack: Some(Attack::SkipExecution),
            expected_detectable: true,
        },
        ScenarioSpec {
            label: "redirect-migration",
            // Send the agent back to "a" instead of onward to "c": a real
            // detour (redirecting to the legitimate next hop would be a
            // no-op, not an attack).
            attack: Some(Attack::RedirectMigration {
                to: HostId::new("a"),
            }),
            expected_detectable: true,
        },
        ScenarioSpec {
            label: "forge-input",
            attack: Some(Attack::ForgeInput {
                tag: "n".into(),
                value: Value::Int(-9),
            }),
            expected_detectable: false,
        },
        ScenarioSpec {
            label: "drop-input",
            attack: Some(Attack::DropInput {
                tag: "unused".into(),
            }),
            expected_detectable: false,
        },
        ScenarioSpec {
            label: "read-state",
            attack: Some(Attack::ReadState),
            expected_detectable: false,
        },
        ScenarioSpec {
            label: "collude-next",
            attack: Some(Attack::CollaborateTamper {
                name: "total".into(),
                value: Value::Int(7),
                accomplice: HostId::new("c"),
            }),
            expected_detectable: false, // for the session protocol
        },
    ]
}

/// One matrix cell.
#[derive(Debug, Clone)]
pub struct DetectionCell {
    /// The mechanism (row).
    pub mechanism: MechanismKind,
    /// The scenario label (column).
    pub scenario: &'static str,
    /// Whether the mechanism flagged the run.
    pub detected: bool,
    /// Whether the journey ran to completion (vs aborted at detection).
    pub completed: bool,
}

/// The three-host measurement agent: adds one input per host into `total`.
fn matrix_agent() -> AgentImage {
    let program = assemble(
        r#"
        input "n"
        load "total"
        add
        store "total"
        load "hops"
        push 1
        add
        store "hops"
        load "hops"
        push 1
        eq
        jnz to_b
        load "hops"
        push 2
        eq
        jnz to_c
        halt
    to_b:
        push "b"
        migrate
    to_c:
        push "c"
        migrate
    "#,
    )
    .unwrap();
    let mut state = DataState::new();
    state.set("total", Value::Int(0));
    state.set("hops", Value::Int(0));
    AgentImage::new("matrix", program, state)
}

fn matrix_hosts(attack: Option<Attack>, seed: u64) -> Vec<Host> {
    let mut rng = StdRng::seed_from_u64(seed);
    let params = DsaParams::test_group_256();
    let mut b = HostSpec::new("b")
        .with_input("n", Value::Int(20))
        .with_input("unused", Value::Int(0));
    if let Some(a) = attack {
        b = b.malicious(a);
    }
    vec![
        Host::new(
            HostSpec::new("a").trusted().with_input("n", Value::Int(10)),
            &params,
            &mut rng,
        ),
        Host::new(b, &params, &mut rng),
        Host::new(
            HostSpec::new("c").trusted().with_input("n", Value::Int(30)),
            &params,
            &mut rng,
        ),
    ]
}

/// Runs one cell.
pub fn run_cell(mechanism: MechanismKind, scenario: &ScenarioSpec) -> DetectionCell {
    let exec = ExecConfig::default();
    let log = EventLog::new();
    let agent = matrix_agent();
    let (detected, completed) = match mechanism {
        MechanismKind::Unprotected => {
            let mut hosts = matrix_hosts(scenario.attack.clone(), 1);
            let r = refstate_platform::run_plain_journey(&mut hosts, "a", agent, &exec, &log, 10);
            (false, r.is_ok())
        }
        MechanismKind::StateAppraisal => {
            let mut hosts = matrix_hosts(scenario.attack.clone(), 2);
            // The appraisal rules express what a programmer plausibly
            // writes: total defined and non-negative, hop counter in range.
            let rules = RuleSet::new()
                .rule("total-defined", Pred::Defined("total".into()))
                .rule(
                    "total-non-negative",
                    Pred::cmp(CmpOp::Ge, Expr::var("total"), Expr::int(0)),
                )
                .rule(
                    "hops-in-range",
                    Pred::cmp(CmpOp::Le, Expr::var("hops"), Expr::int(3)),
                );
            match run_appraised_journey(&mut hosts, "a", agent, &rules, &[], &exec, &log, 10) {
                Ok(outcome) => (!outcome.clean(), outcome.clean()),
                Err(_) => (false, false),
            }
        }
        MechanismKind::FrameworkReExecution => {
            let mut hosts = matrix_hosts(scenario.attack.clone(), 3);
            let config = ProtectionConfig::new(Arc::new(ReExecutionChecker::new()));
            match run_framework_journey(&mut hosts, "a", ProtectedAgent::new(agent, config), &log) {
                Ok(outcome) => {
                    let detected = outcome.fraud.is_some();
                    (detected, !detected)
                }
                Err(_) => (false, false),
            }
        }
        MechanismKind::SessionCheckingProtocol => {
            let mut hosts = matrix_hosts(scenario.attack.clone(), 4);
            match run_protected_journey(&mut hosts, "a", agent, &ProtocolConfig::default(), &log) {
                Ok(outcome) => {
                    let detected = outcome.fraud.is_some();
                    (detected, !detected)
                }
                Err(_) => (false, false),
            }
        }
        MechanismKind::ExecutionTraces => {
            let mut hosts = matrix_hosts(scenario.attack.clone(), 5);
            let mut dir = KeyDirectory::new();
            for h in &hosts {
                dir.register(h.id().as_str(), h.public_key().clone());
            }
            let program = agent.program.clone();
            match run_traced_journey(&mut hosts, "a", agent, &exec, &log, 10) {
                Ok(journey) => {
                    let report = audit_journey(&journey, &program, &dir, &exec, &log);
                    (!report.clean(), true)
                }
                Err(_) => (false, false),
            }
        }
        MechanismKind::ServerReplication => {
            // Replicate only the untrusted middle stage; first and last
            // stages are single trusted hosts. The middle attack host is
            // replica b, outvoted by b1/b2.
            let mut rng = StdRng::seed_from_u64(6);
            let params = DsaParams::test_group_256();
            let mut b = HostSpec::new("b")
                .with_input("n", Value::Int(20))
                .with_input("unused", Value::Int(0));
            if let Some(a) = scenario.attack.clone() {
                b = b.malicious(a);
            }
            let mut hosts = vec![
                Host::new(
                    HostSpec::new("a").trusted().with_input("n", Value::Int(10)),
                    &params,
                    &mut rng,
                ),
                Host::new(b, &params, &mut rng),
                Host::new(
                    HostSpec::new("b1").with_input("n", Value::Int(20)),
                    &params,
                    &mut rng,
                ),
                Host::new(
                    HostSpec::new("b2").with_input("n", Value::Int(20)),
                    &params,
                    &mut rng,
                ),
                Host::new(
                    HostSpec::new("c").trusted().with_input("n", Value::Int(30)),
                    &params,
                    &mut rng,
                ),
            ];
            let stages = vec![
                StageSpec::new(["a"]),
                StageSpec::new(["b", "b1", "b2"]),
                StageSpec::new(["c"]),
            ];
            match run_replicated_pipeline(&mut hosts, &stages, agent, &exec, &log) {
                Ok(outcome) => (!outcome.suspects.is_empty(), outcome.final_state.is_some()),
                Err(_) => (false, false),
            }
        }
    };
    DetectionCell {
        mechanism,
        scenario: scenario.label,
        detected,
        completed,
    }
}

/// Runs the full matrix.
pub fn detection_matrix() -> Vec<DetectionCell> {
    let scenarios = standard_scenarios();
    MechanismKind::ALL
        .iter()
        .flat_map(|m| scenarios.iter().map(move |s| run_cell(*m, s)))
        .collect()
}

/// Renders the matrix as an ASCII table.
pub fn render_matrix(cells: &[DetectionCell]) -> String {
    let scenarios = standard_scenarios();
    let mut out = String::new();
    out.push_str(&format!("{:<20}", "mechanism \\ attack"));
    for s in &scenarios {
        out.push_str(&format!(" {:>18}", s.label));
    }
    out.push('\n');
    for m in MechanismKind::ALL {
        out.push_str(&format!("{:<20}", m.name()));
        for s in &scenarios {
            let cell = cells
                .iter()
                .find(|c| c.mechanism == m && c.scenario == s.label)
                .expect("matrix complete");
            out.push_str(&format!(
                " {:>18}",
                if cell.detected { "DETECTED" } else { "-" }
            ));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(m: MechanismKind, label: &str) -> DetectionCell {
        let scenario = standard_scenarios()
            .into_iter()
            .find(|s| s.label == label)
            .expect("known scenario");
        run_cell(m, &scenario)
    }

    #[test]
    fn honest_runs_never_flagged() {
        for m in MechanismKind::ALL {
            let c = cell(m, "honest");
            assert!(!c.detected, "{m} false-positived an honest run");
        }
    }

    #[test]
    fn unprotected_detects_nothing() {
        for s in standard_scenarios() {
            let c = run_cell(MechanismKind::Unprotected, &s);
            assert!(!c.detected);
        }
    }

    #[test]
    fn strong_mechanisms_catch_state_attacks() {
        for m in [
            MechanismKind::FrameworkReExecution,
            MechanismKind::SessionCheckingProtocol,
            MechanismKind::ExecutionTraces,
            MechanismKind::ServerReplication,
        ] {
            for label in [
                "tamper-variable",
                "delete-variable",
                "scale-int",
                "skip-execution",
                "redirect-migration",
            ] {
                let c = cell(m, label);
                assert!(c.detected, "{m} missed {label}");
            }
        }
    }

    #[test]
    fn nobody_catches_input_or_read_attacks() {
        for m in MechanismKind::ALL {
            for label in ["forge-input", "drop-input", "read-state"] {
                // Replication DOES catch forged input: replicas with honest
                // feeds outvote the forgery (replicated resources!).
                if m == MechanismKind::ServerReplication && label == "forge-input" {
                    continue;
                }
                let c = cell(m, label);
                assert!(!c.detected, "{m} impossibly detected {label}");
            }
        }
    }

    #[test]
    fn replication_catches_forged_input_thanks_to_replicated_resources() {
        let c = cell(MechanismKind::ServerReplication, "forge-input");
        assert!(c.detected, "honest replicas outvote the forged input");
    }

    #[test]
    fn collusion_beats_session_checking_but_not_replication() {
        let c = cell(MechanismKind::SessionCheckingProtocol, "collude-next");
        assert!(!c.detected, "the accomplice skips the check (§5.1)");
        let c = cell(MechanismKind::ServerReplication, "collude-next");
        assert!(c.detected, "the colluders are not in the same voting stage");
        // The generic framework driver has no collusion modelling — the
        // check runs regardless, so the tampering is caught.
        let c = cell(MechanismKind::FrameworkReExecution, "collude-next");
        assert!(c.detected);
    }

    #[test]
    fn appraisal_misses_rule_preserving_attacks() {
        // scale by 3 keeps total >= 0: invisible to the rule set.
        let c = cell(MechanismKind::StateAppraisal, "scale-int");
        assert!(!c.detected);
        // Deleting "total" violates the Defined rule: caught.
        let c = cell(MechanismKind::StateAppraisal, "delete-variable");
        assert!(c.detected);
    }

    #[test]
    fn full_matrix_has_all_cells() {
        let cells = detection_matrix();
        assert_eq!(
            cells.len(),
            MechanismKind::ALL.len() * standard_scenarios().len()
        );
        let rendered = render_matrix(&cells);
        assert!(rendered.contains("session checking"));
        assert!(rendered.contains("DETECTED"));
    }
}
