//! Execution traces (Vigna — §3.3).
//!
//! Every host records a trace of its session, *stores it locally*, and
//! forwards only signed hashes: `hash(trace)` and `hash(resulting state)`.
//! The agent continues its journey unimpeded. Later — only if the owner
//! suspects fraud — the owner requests the traces, verifies each against
//! the signed hash, re-executes the sessions from the initial state using
//! the recorded inputs, and compares resulting-state hashes. The first host
//! whose re-execution diverges from its own signed claim is the cheater.
//!
//! Two properties the paper highlights, both tested below:
//!
//! * the owner "can only determine which host played wrong, but not the
//!   difference in the agent state as only hashes of the final states
//!   exist" — the audit report exposes digests, not states;
//! * detection works "as long as the host does not lie about the input".

use std::fmt;

use refstate_crypto::{sha256, Digest, KeyDirectory, Signed};
use refstate_platform::{AgentId, AgentImage, Event, EventLog, Host, HostId};
use refstate_vm::{
    DataState, ExecConfig, InputLog, Program, SessionEnd, Trace, TraceMode, VmError,
};
use refstate_wire::{to_wire, Decode, Encode, Reader, WireError, Writer};

use refstate_core::verdict::CheckVerdict;
use refstate_core::{FailureReason, ReplaySummary, VerificationPipeline};

/// The signed hashes a host forwards after its session (Vigna's protocol
/// message).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceCommitment {
    /// The agent.
    pub agent: AgentId,
    /// Session sequence number.
    pub seq: u64,
    /// The executing host.
    pub executor: HostId,
    /// Hash of the initial agent state of this session.
    pub initial_digest: Digest,
    /// Hash of the recorded trace.
    pub trace_digest: Digest,
    /// Hash of the resulting agent state.
    pub resulting_digest: Digest,
    /// The claimed next hop (`None` = halt).
    pub next: Option<HostId>,
}

impl Encode for TraceCommitment {
    fn encode(&self, w: &mut Writer) {
        self.agent.encode(w);
        w.put_u64(self.seq);
        self.executor.encode(w);
        self.initial_digest.encode(w);
        self.trace_digest.encode(w);
        self.resulting_digest.encode(w);
        match &self.next {
            Some(h) => {
                w.put_u8(1);
                h.encode(w);
            }
            None => w.put_u8(0),
        }
    }
}

impl Decode for TraceCommitment {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(TraceCommitment {
            agent: AgentId::decode(r)?,
            seq: r.take_u64()?,
            executor: HostId::decode(r)?,
            initial_digest: Digest::decode(r)?,
            trace_digest: Digest::decode(r)?,
            resulting_digest: Digest::decode(r)?,
            next: match r.take_u8()? {
                0 => None,
                1 => Some(HostId::decode(r)?),
                tag => {
                    return Err(WireError::InvalidTag {
                        context: "TraceCommitment.next",
                        tag,
                    })
                }
            },
        })
    }
}

/// What each host retains locally for a possible future audit.
#[derive(Debug, Clone)]
pub struct StoredSession {
    /// The executing host (owner of this store entry).
    pub executor: HostId,
    /// Session sequence number.
    pub seq: u64,
    /// The session's initial agent state.
    pub initial_state: DataState,
    /// The recorded trace.
    pub trace: Trace,
    /// The recorded input (the values the trace's input entries carry).
    pub input: InputLog,
}

/// A completed traced journey: the agent result plus everything the audit
/// protocol may later need.
#[derive(Debug)]
pub struct TracedJourney {
    /// The agent's last known state.
    pub final_state: DataState,
    /// Hosts visited in order.
    pub path: Vec<HostId>,
    /// Signed commitments, as received by the owner (one per session).
    pub commitments: Vec<Signed<TraceCommitment>>,
    /// Simulated per-host trace storage.
    pub stores: Vec<StoredSession>,
    /// Set when a session crashed and the journey ended early. A crash on
    /// an honest host downstream of a manipulation is itself the
    /// "suspicion" that triggers the owner audit.
    pub failure: Option<String>,
}

/// The result of an owner audit.
#[derive(Debug)]
pub struct AuditReport {
    /// The first host caught cheating, if any.
    pub culprit: Option<HostId>,
    /// Per-session audit verdicts, in order.
    pub verdicts: Vec<CheckVerdict>,
    /// Digest-level evidence for a detected fraud: `(claimed, reference)`.
    /// Note: digests only — Vigna's protocol keeps no full states.
    pub digest_evidence: Option<(Digest, Digest)>,
}

impl AuditReport {
    /// Returns `true` when every session audit passed.
    pub fn clean(&self) -> bool {
        self.culprit.is_none()
    }
}

/// Journey errors (infrastructure only).
#[derive(Debug)]
#[non_exhaustive]
pub enum TraceError {
    /// Unknown migration target.
    UnknownHost {
        /// The destination.
        host: HostId,
    },
    /// Hop budget exceeded.
    TooManyHops {
        /// The budget.
        limit: usize,
    },
    /// A session failed.
    Vm(VmError),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::UnknownHost { host } => write!(f, "unknown migration target {host}"),
            TraceError::TooManyHops { limit } => write!(f, "journey exceeded {limit} hops"),
            TraceError::Vm(e) => write!(f, "session failed: {e}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<VmError> for TraceError {
    fn from(e: VmError) -> Self {
        TraceError::Vm(e)
    }
}

/// Runs a journey under the traces mechanism: hosts execute with full
/// tracing, store traces locally, and forward signed commitments.
///
/// # Errors
///
/// See [`TraceError`].
pub fn run_traced_journey(
    hosts: &mut [Host],
    start: impl Into<HostId>,
    agent: AgentImage,
    exec: &ExecConfig,
    log: &EventLog,
    max_hops: usize,
) -> Result<TracedJourney, TraceError> {
    let mut image = agent;
    let mut current: HostId = start.into();
    log.record(Event::AgentCreated {
        agent: image.id.clone(),
        home: current.clone(),
    });
    let mut path = vec![current.clone()];
    let mut commitments = Vec::new();
    let mut stores = Vec::new();
    let mut exec = exec.clone();
    exec.trace_mode = TraceMode::Full;

    for seq in 0..max_hops as u64 {
        let host = hosts
            .iter_mut()
            .find(|h| h.id() == &current)
            .ok_or_else(|| TraceError::UnknownHost {
                host: current.clone(),
            })?;
        let record = match host.execute_session(&image, &exec, log) {
            Ok(record) => record,
            Err(e) => {
                // The agent crashed mid-journey (often the downstream
                // symptom of an upstream manipulation). Return the partial
                // journey so the owner can audit what was collected.
                return Ok(TracedJourney {
                    final_state: image.state,
                    path,
                    commitments,
                    stores,
                    failure: Some(e.to_string()),
                });
            }
        };

        let next = match &record.outcome.end {
            SessionEnd::Migrate(h) => Some(HostId::new(h.clone())),
            SessionEnd::Halt => None,
        };
        // The host stores its trace locally...
        stores.push(StoredSession {
            executor: current.clone(),
            seq,
            initial_state: record.initial_state.clone(),
            trace: record.outcome.trace.clone(),
            input: record.outcome.input_log.clone(),
        });
        // ...and signs the hashes it forwards.
        let commitment = TraceCommitment {
            agent: image.id.clone(),
            seq,
            executor: current.clone(),
            initial_digest: sha256(&to_wire(&record.initial_state)),
            trace_digest: sha256(&to_wire(&record.outcome.trace)),
            resulting_digest: sha256(&to_wire(&record.outcome.state)),
            next: next.clone(),
        };
        commitments.push(host.sign(commitment));

        image.state = record.outcome.state.clone();
        match next {
            None => {
                return Ok(TracedJourney {
                    final_state: image.state,
                    path,
                    commitments,
                    stores,
                    failure: None,
                })
            }
            Some(next_host) => {
                if !hosts.iter().any(|h| h.id() == &next_host) {
                    return Err(TraceError::UnknownHost { host: next_host });
                }
                log.record(Event::Migrated {
                    from: current.clone(),
                    to: next_host.clone(),
                    agent: image.id.clone(),
                    bytes: to_wire(&image).len(),
                });
                path.push(next_host.clone());
                current = next_host;
            }
        }
    }
    Err(TraceError::TooManyHops { limit: max_hops })
}

/// The owner-side audit: verify commitments, fetch traces, re-execute, and
/// identify the first cheating host.
///
/// Re-executions run through a private, uncached
/// [`VerificationPipeline`]; fleet drivers that share a replay cache use
/// [`audit_journey_with_pipeline`], where a session already re-executed by
/// another mechanism's check is a cache hit.
pub fn audit_journey(
    journey: &TracedJourney,
    program: &Program,
    directory: &KeyDirectory,
    exec: &ExecConfig,
    log: &EventLog,
) -> AuditReport {
    audit_journey_with_pipeline(
        journey,
        program,
        directory,
        exec,
        log,
        &VerificationPipeline::uncached(),
    )
}

/// [`audit_journey`] over a caller-supplied [`VerificationPipeline`].
///
/// The audit walks the sessions in order and stops at the first
/// inconsistency (later sessions ran on a corrupted state and cannot be
/// judged fairly). The re-execution of step 4 is answered by the
/// pipeline's digest memo when any driver already replayed the same
/// session.
pub fn audit_journey_with_pipeline(
    journey: &TracedJourney,
    program: &Program,
    directory: &KeyDirectory,
    exec: &ExecConfig,
    log: &EventLog,
    pipeline: &VerificationPipeline,
) -> AuditReport {
    let owner = HostId::new("owner");
    let mut verdicts = Vec::new();

    let mut expected_initial: Option<Digest> = None;
    for (i, signed) in journey.commitments.iter().enumerate() {
        let commitment = signed.payload();
        let executor = commitment.executor.clone();
        let fail = |reason: FailureReason,
                    verdicts: &mut Vec<CheckVerdict>,
                    evidence: Option<(Digest, Digest)>| {
            log.record(Event::FraudDetected {
                culprit: executor.clone(),
                detector: owner.clone(),
                reason: reason.to_string(),
            });
            verdicts.push(CheckVerdict {
                checked: executor.clone(),
                checker: owner.clone(),
                seq: commitment.seq,
                failure: Some(reason),
            });
            AuditReport {
                culprit: Some(executor.clone()),
                verdicts: std::mem::take(verdicts),
                digest_evidence: evidence,
            }
        };

        // 1. The commitment signature must verify. Checked lazily (one
        //    fused double exponentiation via `Signed::verify`) so a
        //    failing session keeps the audit's early exit.
        if signed.verify(directory).is_err() {
            return fail(
                FailureReason::ProgramRejected {
                    detail: "commitment signature invalid".into(),
                },
                &mut verdicts,
                None,
            );
        }
        // 2. Chain: this session's initial digest must equal the previous
        //    session's resulting digest.
        if let Some(expected) = expected_initial {
            if commitment.initial_digest != expected {
                return fail(
                    FailureReason::ProgramRejected {
                        detail: "initial-state digest does not chain to previous session".into(),
                    },
                    &mut verdicts,
                    Some((commitment.initial_digest, expected)),
                );
            }
        }
        // 3. The stored trace must hash to the committed trace digest
        //    ("if these hashes are identical, the host commits on this
        //    trace").
        let store = match journey.stores.get(i) {
            Some(s) if s.executor == commitment.executor => s,
            _ => {
                return fail(
                    FailureReason::ProgramRejected {
                        detail: "host cannot produce its stored trace".into(),
                    },
                    &mut verdicts,
                    None,
                )
            }
        };
        if sha256(&to_wire(&store.trace)) != commitment.trace_digest {
            return fail(
                FailureReason::ProgramRejected {
                    detail: "stored trace does not match committed trace hash".into(),
                },
                &mut verdicts,
                None,
            );
        }
        if sha256(&to_wire(&store.initial_state)) != commitment.initial_digest {
            return fail(
                FailureReason::ProgramRejected {
                    detail: "stored initial state does not match committed hash".into(),
                },
                &mut verdicts,
                None,
            );
        }
        // 4. Re-execute with the recorded inputs; the resulting state hash
        //    must equal the signed resulting hash, and the migration
        //    decision must match the committed next hop. (Vigna's audit
        //    judges the committed hashes only, so a padded input log is
        //    left to the digest comparison — `log_consumed` is
        //    deliberately not a failure here.)
        let summary = pipeline.replay(program, &store.initial_state, &store.input, exec);
        let (reference_digest, reference_next) = match summary {
            ReplaySummary::Ok {
                state_digest, end, ..
            } => {
                let next = match end {
                    SessionEnd::Migrate(h) => Some(HostId::new(h)),
                    SessionEnd::Halt => None,
                };
                (state_digest, next)
            }
            ReplaySummary::Failed(error) => {
                return fail(FailureReason::ReplayFailed { error }, &mut verdicts, None)
            }
        };
        if reference_next != commitment.next {
            return fail(
                FailureReason::ProgramRejected {
                    detail: "committed next hop differs from re-executed migration decision".into(),
                },
                &mut verdicts,
                None,
            );
        }
        if reference_digest != commitment.resulting_digest {
            return fail(
                FailureReason::StateMismatch {
                    claimed: commitment.resulting_digest,
                    reference: reference_digest,
                    // Vigna: hashes only, no state-level diff is available.
                    diff: Vec::new(),
                },
                &mut verdicts,
                Some((commitment.resulting_digest, reference_digest)),
            );
        }

        log.record(Event::CheckPerformed {
            checker: owner.clone(),
            checked: executor.clone(),
            passed: true,
        });
        verdicts.push(CheckVerdict {
            checked: executor,
            checker: owner.clone(),
            seq: commitment.seq,
            failure: None,
        });
        expected_initial = Some(commitment.resulting_digest);
    }

    AuditReport {
        culprit: None,
        verdicts,
        digest_evidence: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use refstate_crypto::DsaParams;
    use refstate_platform::{Attack, HostSpec};
    use refstate_vm::{assemble, Value};

    fn sum_agent() -> AgentImage {
        let program = assemble(
            r#"
            input "n"
            load "total"
            add
            store "total"
            load "hops"
            push 1
            add
            store "hops"
            load "hops"
            push 1
            eq
            jnz to_b
            load "hops"
            push 2
            eq
            jnz to_c
            halt
        to_b:
            push "b"
            migrate
        to_c:
            push "c"
            migrate
        "#,
        )
        .unwrap();
        let mut state = DataState::new();
        state.set("total", Value::Int(0));
        state.set("hops", Value::Int(0));
        AgentImage::new("summer", program, state)
    }

    fn setup(b_attack: Option<Attack>) -> (Vec<Host>, KeyDirectory) {
        let mut rng = StdRng::seed_from_u64(321);
        let params = DsaParams::test_group_256();
        let mut b = HostSpec::new("b").with_input("n", Value::Int(20));
        if let Some(a) = b_attack {
            b = b.malicious(a);
        }
        let hosts = vec![
            Host::new(
                HostSpec::new("a").trusted().with_input("n", Value::Int(10)),
                &params,
                &mut rng,
            ),
            Host::new(b, &params, &mut rng),
            Host::new(
                HostSpec::new("c").trusted().with_input("n", Value::Int(30)),
                &params,
                &mut rng,
            ),
        ];
        let mut dir = KeyDirectory::new();
        for h in &hosts {
            dir.register(h.id().as_str(), h.public_key().clone());
        }
        (hosts, dir)
    }

    #[test]
    fn honest_journey_audits_clean() {
        let (mut hosts, dir) = setup(None);
        let log = EventLog::new();
        let agent = sum_agent();
        let program = agent.program.clone();
        let journey =
            run_traced_journey(&mut hosts, "a", agent, &ExecConfig::default(), &log, 10).unwrap();
        assert_eq!(journey.final_state.get_int("total"), Some(60));
        assert_eq!(journey.commitments.len(), 3);
        assert_eq!(journey.stores.len(), 3);
        let report = audit_journey(&journey, &program, &dir, &ExecConfig::default(), &log);
        assert!(report.clean());
        assert_eq!(report.verdicts.len(), 3);
    }

    #[test]
    fn tampering_host_identified_by_audit() {
        let (mut hosts, dir) = setup(Some(Attack::TamperVariable {
            name: "total".into(),
            value: Value::Int(999),
        }));
        let log = EventLog::new();
        let agent = sum_agent();
        let program = agent.program.clone();
        let journey =
            run_traced_journey(&mut hosts, "a", agent, &ExecConfig::default(), &log, 10).unwrap();
        // The journey itself completes — nothing checks en route; the wrong
        // value rode along to the end.
        assert_eq!(journey.final_state.get_int("total"), Some(1029));
        let report = audit_journey(&journey, &program, &dir, &ExecConfig::default(), &log);
        assert_eq!(report.culprit, Some(HostId::new("b")));
        // Evidence is digest-level only (the paper's stated limitation).
        let (claimed, reference) = report.digest_evidence.expect("digest evidence");
        assert_ne!(claimed, reference);
    }

    #[test]
    fn input_forgery_survives_audit() {
        let (mut hosts, dir) = setup(Some(Attack::ForgeInput {
            tag: "n".into(),
            value: Value::Int(-5),
        }));
        let log = EventLog::new();
        let agent = sum_agent();
        let program = agent.program.clone();
        let journey =
            run_traced_journey(&mut hosts, "a", agent, &ExecConfig::default(), &log, 10).unwrap();
        let report = audit_journey(&journey, &program, &dir, &ExecConfig::default(), &log);
        assert!(
            report.clean(),
            "detection works only as long as the host does not lie about the input"
        );
    }

    #[test]
    fn missing_stored_trace_blames_the_host() {
        let (mut hosts, dir) = setup(Some(Attack::TamperVariable {
            name: "total".into(),
            value: Value::Int(999),
        }));
        let log = EventLog::new();
        let agent = sum_agent();
        let program = agent.program.clone();
        let mut journey =
            run_traced_journey(&mut hosts, "a", agent, &ExecConfig::default(), &log, 10).unwrap();
        // The cheater "loses" its trace to evade re-execution: still blamed.
        journey.stores[1].trace = Trace::new(TraceMode::Full);
        let report = audit_journey(&journey, &program, &dir, &ExecConfig::default(), &log);
        assert_eq!(report.culprit, Some(HostId::new("b")));
    }

    #[test]
    fn commitment_tampering_fails_signature_check() {
        let (mut hosts, dir) = setup(None);
        let log = EventLog::new();
        let agent = sum_agent();
        let program = agent.program.clone();
        let mut journey =
            run_traced_journey(&mut hosts, "a", agent, &ExecConfig::default(), &log, 10).unwrap();
        // Someone rewrites host b's committed resulting hash in transit.
        journey.commitments[1] = journey.commitments[1].clone().tampered_with(|mut c| {
            c.resulting_digest = sha256(b"forged");
            c
        });
        let report = audit_journey(&journey, &program, &dir, &ExecConfig::default(), &log);
        assert_eq!(report.culprit, Some(HostId::new("b")));
    }

    #[test]
    fn broken_chain_detected() {
        let (mut hosts, dir) = setup(None);
        let log = EventLog::new();
        let agent = sum_agent();
        let program = agent.program.clone();
        let mut journey =
            run_traced_journey(&mut hosts, "a", agent, &ExecConfig::default(), &log, 10).unwrap();
        // Replace session 1's stored initial state AND its commitment with
        // a self-consistent forgery that does not chain to session 0.
        let host_b = hosts.iter_mut().find(|h| h.id().as_str() == "b").unwrap();
        let forged_state: DataState = [("total".to_string(), Value::Int(1))].into_iter().collect();
        let forged = TraceCommitment {
            agent: AgentId::new("summer"),
            seq: 1,
            executor: HostId::new("b"),
            initial_digest: sha256(&to_wire(&forged_state)),
            trace_digest: journey.commitments[1].payload().trace_digest,
            resulting_digest: journey.commitments[1].payload().resulting_digest,
            next: journey.commitments[1].payload().next.clone(),
        };
        journey.commitments[1] = host_b.sign(forged);
        let report = audit_journey(&journey, &program, &dir, &ExecConfig::default(), &log);
        assert_eq!(report.culprit, Some(HostId::new("b")));
    }

    #[test]
    fn commitment_wire_round_trip() {
        use refstate_wire::{from_wire, to_wire};
        let c = TraceCommitment {
            agent: AgentId::new("a"),
            seq: 1,
            executor: HostId::new("h"),
            initial_digest: sha256(b"i"),
            trace_digest: sha256(b"t"),
            resulting_digest: sha256(b"r"),
            next: Some(HostId::new("n")),
        };
        assert_eq!(from_wire::<TraceCommitment>(&to_wire(&c)).unwrap(), c);
    }
}
