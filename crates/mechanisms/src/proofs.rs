//! Proof verification (§3.4), simulated.
//!
//! Biehl/Meyer/Wetzel use holographic proofs: a representation of an
//! execution trace "that can be used to prove the existence of an execution
//! trace that leads to the final state of an agent by checking only
//! constantly many bits". Constructing such proofs is NP-hard, which is why
//! the paper sets the approach aside.
//!
//! This module substitutes the closest practically constructible object: a
//! **Merkle-committed step transcript with Fiat–Shamir spot checks**.
//!
//! * The prover (the executing host) snapshots the full machine state at
//!   every instruction boundary, commits to the snapshot sequence in a
//!   Merkle tree, and publishes the root plus the final state.
//! * The verifier derives `k` pseudo-random step indices from the root
//!   (so the prover commits before knowing which steps are audited),
//!   receives openings for those steps, re-executes each *single*
//!   instruction, and checks the successor snapshot against the tree.
//!
//! Verification touches `O(k · log n)` hashes and `k` instructions instead
//! of `n` — the sublinear-verification interface of the original proposal.
//! A prover who fabricates a final state must corrupt at least one step
//! transition, which each challenge catches with probability ≥ 1/n, so `k`
//! challenges give soundness `1 - (1 - f)^k` for a fraction `f` of corrupt
//! transitions (the usual PCP-lite trade-off; see DESIGN.md §4).

use std::fmt;

use refstate_crypto::{sha256, Digest};
use refstate_platform::AgentId;
use refstate_vm::{
    DataState, ExecConfig, InputLog, Interpreter, MachineState, Program, SessionEnd, SessionIo,
    SyscallKind, Value, VmError,
};
use refstate_wire::to_wire;

use crate::merkle::{challenge_indices, MerklePath, MerkleTree};

/// The published proof: commitment root, step count, and the claimed final
/// state. Self-contained — "proofs do not need reference data as
/// parameters, as they include all relevant data" (§3.5).
#[derive(Debug, Clone)]
pub struct ExecutionProof {
    /// The agent the proof speaks about.
    pub agent: AgentId,
    /// Merkle root over the `steps + 1` machine-state snapshots.
    pub root: Digest,
    /// Number of executed instructions.
    pub steps: u64,
    /// The claimed resulting data state.
    pub final_state: DataState,
    /// The recorded session input (needed to re-execute audited steps that
    /// consume input).
    pub input: InputLog,
    /// Digest of the initial data state (binds the proof to its start).
    pub initial_digest: Digest,
}

/// One audited step: the snapshot before the step, its path, and the path
/// of the successor snapshot.
#[derive(Debug, Clone)]
pub struct StepOpening {
    /// The step index (0-based; the step from snapshot `i` to `i + 1`).
    pub index: usize,
    /// The machine state before the step.
    pub before: MachineState,
    /// Authentication path for `before` at leaf `index`.
    pub before_path: MerklePath,
    /// Encoded machine state after the step.
    pub after_encoded: Vec<u8>,
    /// Authentication path for the successor at leaf `index + 1`.
    pub after_path: MerklePath,
}

/// Proof failures.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProofError {
    /// The prover could not execute the session.
    Execution(VmError),
    /// An opening was requested for a step outside the transcript.
    IndexOutOfRange {
        /// The bad index.
        index: usize,
    },
    /// A Merkle path failed to verify.
    PathInvalid {
        /// The failing step index.
        index: usize,
    },
    /// Re-executing an audited step produced a different successor state.
    StepMismatch {
        /// The failing step index.
        index: usize,
    },
    /// The first snapshot does not match the claimed initial state.
    WrongStart,
    /// The last snapshot does not match the claimed final state.
    WrongEnd,
    /// The audited step failed to execute at all.
    StepFailed {
        /// The failing step index.
        index: usize,
        /// The VM error, rendered.
        error: String,
    },
}

impl fmt::Display for ProofError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProofError::Execution(e) => write!(f, "prover execution failed: {e}"),
            ProofError::IndexOutOfRange { index } => write!(f, "step {index} out of range"),
            ProofError::PathInvalid { index } => write!(f, "Merkle path invalid at step {index}"),
            ProofError::StepMismatch { index } => {
                write!(f, "step {index} transition does not re-execute")
            }
            ProofError::WrongStart => f.write_str("first snapshot mismatches initial state"),
            ProofError::WrongEnd => f.write_str("last snapshot mismatches claimed final state"),
            ProofError::StepFailed { index, error } => {
                write!(f, "step {index} failed to re-execute: {error}")
            }
        }
    }
}

impl std::error::Error for ProofError {}

/// The proving side: executes a session, keeping all snapshots.
#[derive(Debug)]
pub struct Prover {
    snapshots: Vec<Vec<u8>>, // wire-encoded MachineStates
    tree: MerkleTree,
    proof: ExecutionProof,
    end: SessionEnd,
}

impl Prover {
    /// Executes one session of `program` from `initial`, recording every
    /// machine-state snapshot, and commits to the transcript.
    ///
    /// # Errors
    ///
    /// [`ProofError::Execution`] if the session itself fails.
    pub fn execute(
        agent: AgentId,
        program: &Program,
        initial: DataState,
        io: &mut dyn SessionIo,
        exec: &ExecConfig,
    ) -> Result<Self, ProofError> {
        let mut interp = Interpreter::new(program, initial.clone(), exec.clone());
        let mut snapshots = vec![to_wire(&interp.capture())];
        let end;
        loop {
            match interp.step(io) {
                Ok(None) => snapshots.push(to_wire(&interp.capture())),
                Ok(Some(session_end)) => {
                    snapshots.push(to_wire(&interp.capture()));
                    end = session_end;
                    break;
                }
                Err(e) => return Err(ProofError::Execution(e)),
            }
        }
        let steps = (snapshots.len() - 1) as u64;
        let tree = MerkleTree::build(snapshots.iter().map(|s| s.as_slice()));
        let outcome = interp.into_outcome(end.clone());
        let proof = ExecutionProof {
            agent,
            root: *tree.root(),
            steps,
            final_state: outcome.state,
            input: outcome.input_log,
            initial_digest: sha256(&to_wire(&initial)),
        };
        Ok(Prover {
            snapshots,
            tree,
            proof,
            end,
        })
    }

    /// The published proof.
    pub fn proof(&self) -> &ExecutionProof {
        &self.proof
    }

    /// How the session ended.
    pub fn end(&self) -> &SessionEnd {
        &self.end
    }

    /// Opens the transition at `index` (step from snapshot `index` to
    /// `index + 1`).
    ///
    /// # Errors
    ///
    /// [`ProofError::IndexOutOfRange`] when `index >= steps`.
    pub fn open_step(&self, index: usize) -> Result<StepOpening, ProofError> {
        if index + 1 >= self.snapshots.len() {
            return Err(ProofError::IndexOutOfRange { index });
        }
        let before: MachineState =
            refstate_wire::from_wire(&self.snapshots[index]).expect("own snapshot re-decodes");
        Ok(StepOpening {
            index,
            before,
            before_path: self.tree.open(index).expect("in range"),
            after_encoded: self.snapshots[index + 1].clone(),
            after_path: self.tree.open(index + 1).expect("in range"),
        })
    }

    /// Opens the first and last snapshots (boundary check material).
    pub fn open_boundaries(&self) -> (Vec<u8>, MerklePath, Vec<u8>, MerklePath) {
        let first = self.snapshots.first().expect("non-empty").clone();
        let last = self.snapshots.last().expect("non-empty").clone();
        let n = self.snapshots.len();
        (
            first,
            self.tree.open(0).expect("in range"),
            last,
            self.tree.open(n - 1).expect("in range"),
        )
    }
}

/// Replay I/O that can start mid-log: audited steps that consume input get
/// the value the input log records for that machine-state position.
struct MidSessionIo<'a> {
    log: &'a InputLog,
    /// Inputs consumed before the audited step = number of records whose
    /// consumption happened in earlier steps. We match by count: the
    /// `before` snapshot knows how many inputs were consumed so far only
    /// implicitly — so the prover's input log is consulted positionally.
    consumed_before: usize,
    used: usize,
}

impl SessionIo for MidSessionIo<'_> {
    fn input(&mut self, pc: usize, tag: &str) -> Result<Value, VmError> {
        self.take(pc, &format!("input:{tag}"))
    }

    fn syscall(&mut self, pc: usize, kind: SyscallKind) -> Result<Value, VmError> {
        self.take(pc, &format!("syscall:{kind}"))
    }

    fn recv(&mut self, pc: usize, partner: &str) -> Result<Value, VmError> {
        self.take(pc, &format!("recv:{partner}"))
    }

    fn send(&mut self, _pc: usize, _partner: &str, _value: Value) -> Result<(), VmError> {
        Ok(()) // suppressed
    }
}

impl MidSessionIo<'_> {
    fn take(&mut self, pc: usize, what: &str) -> Result<Value, VmError> {
        let record = self
            .log
            .records()
            .get(self.consumed_before + self.used)
            .ok_or_else(|| VmError::InputUnavailable {
                pc,
                what: what.to_owned(),
            })?;
        if record.pc != pc as u64 {
            return Err(VmError::ReplayMismatch {
                pc,
                detail: format!(
                    "input log records pc {}, audited step is at pc {pc}",
                    record.pc
                ),
            });
        }
        self.used += 1;
        Ok(record.value.clone())
    }
}

/// The verifying side.
#[derive(Debug, Clone)]
pub struct Verifier {
    /// Number of spot checks.
    pub challenges: usize,
}

impl Default for Verifier {
    fn default() -> Self {
        Verifier { challenges: 16 }
    }
}

impl Verifier {
    /// A verifier issuing `challenges` spot checks per proof.
    pub fn new(challenges: usize) -> Self {
        Verifier { challenges }
    }

    /// The challenge indices for a proof (Fiat–Shamir over the root).
    pub fn challenges_for(&self, proof: &ExecutionProof) -> Vec<usize> {
        challenge_indices(
            &proof.root,
            proof.agent.as_str().as_bytes(),
            proof.steps as usize,
            self.challenges,
        )
    }

    /// Verifies a proof against a prover willing to answer openings.
    ///
    /// This is the interactive form; [`Verifier::verify_transcript`] checks
    /// pre-collected openings (the non-interactive wire form).
    ///
    /// # Errors
    ///
    /// The first [`ProofError`] encountered.
    pub fn verify(
        &self,
        program: &Program,
        proof: &ExecutionProof,
        prover: &Prover,
        exec: &ExecConfig,
    ) -> Result<(), ProofError> {
        let (first, first_path, last, last_path) = prover.open_boundaries();
        let openings: Result<Vec<StepOpening>, ProofError> = self
            .challenges_for(proof)
            .into_iter()
            .map(|i| prover.open_step(i))
            .collect();
        self.verify_transcript(
            program,
            proof,
            &first,
            &first_path,
            &last,
            &last_path,
            &openings?,
            exec,
        )
    }

    /// Verifies boundary openings plus audited steps.
    ///
    /// # Errors
    ///
    /// The first [`ProofError`] encountered.
    #[allow(clippy::too_many_arguments)]
    pub fn verify_transcript(
        &self,
        program: &Program,
        proof: &ExecutionProof,
        first: &[u8],
        first_path: &MerklePath,
        last: &[u8],
        last_path: &MerklePath,
        openings: &[StepOpening],
        exec: &ExecConfig,
    ) -> Result<(), ProofError> {
        // Boundary: first snapshot is a clean session start over the
        // claimed initial state...
        if !first_path.verify(first, &proof.root) || first_path.index != 0 {
            return Err(ProofError::PathInvalid { index: 0 });
        }
        let first_state: MachineState =
            refstate_wire::from_wire(first).map_err(|_| ProofError::WrongStart)?;
        if first_state.pc != 0
            || !first_state.stack.is_empty()
            || first_state.steps != 0
            || sha256(&to_wire(&first_state.state)) != proof.initial_digest
        {
            return Err(ProofError::WrongStart);
        }
        // ...and the last snapshot carries the claimed final state.
        if !last_path.verify(last, &proof.root) || last_path.index != proof.steps as usize {
            return Err(ProofError::PathInvalid {
                index: proof.steps as usize,
            });
        }
        let last_state: MachineState =
            refstate_wire::from_wire(last).map_err(|_| ProofError::WrongEnd)?;
        if last_state.state != proof.final_state || last_state.steps != proof.steps {
            return Err(ProofError::WrongEnd);
        }
        // The transcript must actually end the session: its final program
        // counter must sit just past a `halt` or `migrate`. This rejects
        // "empty" proofs from hosts that skipped execution entirely.
        let terminal = last_state
            .pc
            .checked_sub(1)
            .and_then(|pc| program.get(pc as usize))
            .is_some_and(|i| matches!(i, refstate_vm::Instr::Halt | refstate_vm::Instr::Migrate));
        if proof.steps == 0 || !terminal {
            return Err(ProofError::WrongEnd);
        }

        // Spot checks.
        for opening in openings {
            let i = opening.index;
            let before_encoded = to_wire(&opening.before);
            if opening.before_path.index != i
                || !opening.before_path.verify(&before_encoded, &proof.root)
            {
                return Err(ProofError::PathInvalid { index: i });
            }
            if opening.after_path.index != i + 1
                || !opening
                    .after_path
                    .verify(&opening.after_encoded, &proof.root)
            {
                return Err(ProofError::PathInvalid { index: i + 1 });
            }
            // Re-execute the single step. The snapshot records how many
            // inputs the session had consumed up to this boundary, so the
            // replay can start mid-log.
            let mut io = MidSessionIo {
                log: &proof.input,
                consumed_before: opening.before.inputs_consumed as usize,
                used: 0,
            };
            let mut interp = Interpreter::resume(program, opening.before.clone(), exec.clone());
            match interp.step(&mut io) {
                Ok(_) => {}
                Err(e) => {
                    return Err(ProofError::StepFailed {
                        index: i,
                        error: e.to_string(),
                    })
                }
            }
            let after = interp.capture();
            if to_wire(&after) != opening.after_encoded {
                return Err(ProofError::StepMismatch { index: i });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refstate_vm::{assemble, ScriptedIo};

    fn compute_program() -> Program {
        assemble(
            r#"
            push 0
            store "sum"
            push 0
            store "i"
        loop:
            load "i"
            push 20
            ge
            jnz done
            load "sum"
            load "i"
            add
            store "sum"
            load "i"
            push 1
            add
            store "i"
            jump loop
        done:
            halt
        "#,
        )
        .unwrap()
    }

    #[test]
    fn honest_proof_verifies() {
        let program = compute_program();
        let mut io = ScriptedIo::new();
        let prover = Prover::execute(
            AgentId::new("a"),
            &program,
            DataState::new(),
            &mut io,
            &ExecConfig::default(),
        )
        .unwrap();
        let proof = prover.proof().clone();
        assert_eq!(proof.final_state.get_int("sum"), Some(190));
        let verifier = Verifier::new(8);
        verifier
            .verify(&program, &proof, &prover, &ExecConfig::default())
            .unwrap();
    }

    #[test]
    fn forged_final_state_detected_at_boundary() {
        let program = compute_program();
        let mut io = ScriptedIo::new();
        let prover = Prover::execute(
            AgentId::new("a"),
            &program,
            DataState::new(),
            &mut io,
            &ExecConfig::default(),
        )
        .unwrap();
        let mut proof = prover.proof().clone();
        proof.final_state.set("sum", Value::Int(999_999));
        let verifier = Verifier::new(8);
        let err = verifier
            .verify(&program, &proof, &prover, &ExecConfig::default())
            .unwrap_err();
        assert_eq!(err, ProofError::WrongEnd);
    }

    #[test]
    fn forged_initial_state_detected_at_boundary() {
        let program = compute_program();
        let mut io = ScriptedIo::new();
        let prover = Prover::execute(
            AgentId::new("a"),
            &program,
            DataState::new(),
            &mut io,
            &ExecConfig::default(),
        )
        .unwrap();
        let mut proof = prover.proof().clone();
        proof.initial_digest = sha256(b"some other state");
        let verifier = Verifier::new(4);
        let err = verifier
            .verify(&program, &proof, &prover, &ExecConfig::default())
            .unwrap_err();
        assert_eq!(err, ProofError::WrongStart);
    }

    #[test]
    fn tampered_opening_detected() {
        let program = compute_program();
        let mut io = ScriptedIo::new();
        let prover = Prover::execute(
            AgentId::new("a"),
            &program,
            DataState::new(),
            &mut io,
            &ExecConfig::default(),
        )
        .unwrap();
        let proof = prover.proof().clone();
        let mut opening = prover.open_step(5).unwrap();
        // Tamper the "before" snapshot: the Merkle path no longer matches.
        opening.before.state.set("sum", Value::Int(4242));
        let (first, fp, last, lp) = prover.open_boundaries();
        let err = Verifier::new(1)
            .verify_transcript(
                &program,
                &proof,
                &first,
                &fp,
                &last,
                &lp,
                &[opening],
                &ExecConfig::default(),
            )
            .unwrap_err();
        assert!(matches!(err, ProofError::PathInvalid { .. }));
    }

    #[test]
    fn inconsistent_transition_detected() {
        // Build a fake transcript where one transition skips work: commit
        // to snapshots from two different executions.
        let program = compute_program();
        let mut io = ScriptedIo::new();
        let honest = Prover::execute(
            AgentId::new("a"),
            &program,
            DataState::new(),
            &mut io,
            &ExecConfig::default(),
        )
        .unwrap();
        // Adversary: replace a middle snapshot with a manipulated one and
        // rebuild the tree (it CAN do this — the question is whether spot
        // checks catch the broken transition).
        let mut snapshots = honest.snapshots.clone();
        let mid = snapshots.len() / 2;
        let mut state: MachineState = refstate_wire::from_wire(&snapshots[mid]).unwrap();
        state.state.set("sum", Value::Int(12345));
        snapshots[mid] = to_wire(&state);
        let tree = MerkleTree::build(snapshots.iter().map(|s| s.as_slice()));
        let forged_prover = Prover {
            snapshots,
            proof: ExecutionProof {
                root: *tree.root(),
                ..honest.proof().clone()
            },
            tree,
            end: honest.end().clone(),
        };
        let proof = forged_prover.proof().clone();
        // Audit every step: the broken transition (mid-1 → mid or mid →
        // mid+1) must be caught.
        let n = proof.steps as usize;
        let openings: Vec<StepOpening> = (0..n)
            .map(|i| forged_prover.open_step(i).unwrap())
            .collect();
        let (first, fp, last, lp) = forged_prover.open_boundaries();
        let err = Verifier::new(n)
            .verify_transcript(
                &program,
                &proof,
                &first,
                &fp,
                &last,
                &lp,
                &openings,
                &ExecConfig::default(),
            )
            .unwrap_err();
        assert!(matches!(err, ProofError::StepMismatch { .. }));
    }

    #[test]
    fn proof_with_inputs_verifies() {
        let program = assemble(
            r#"
            input "a"
            input "a"
            add
            store "sum"
            halt
        "#,
        )
        .unwrap();
        let mut io = ScriptedIo::new();
        io.push_input("a", Value::Int(3))
            .push_input("a", Value::Int(4));
        let prover = Prover::execute(
            AgentId::new("a"),
            &program,
            DataState::new(),
            &mut io,
            &ExecConfig::default(),
        )
        .unwrap();
        let proof = prover.proof().clone();
        assert_eq!(proof.final_state.get_int("sum"), Some(7));
        // Audit every step, including the input-consuming ones.
        let n = proof.steps as usize;
        let openings: Vec<StepOpening> = (0..n).map(|i| prover.open_step(i).unwrap()).collect();
        let (first, fp, last, lp) = prover.open_boundaries();
        Verifier::new(n)
            .verify_transcript(
                &program,
                &proof,
                &first,
                &fp,
                &last,
                &lp,
                &openings,
                &ExecConfig::default(),
            )
            .unwrap();
    }

    #[test]
    fn out_of_range_opening_rejected() {
        let program = compute_program();
        let mut io = ScriptedIo::new();
        let prover = Prover::execute(
            AgentId::new("a"),
            &program,
            DataState::new(),
            &mut io,
            &ExecConfig::default(),
        )
        .unwrap();
        let n = prover.proof().steps as usize;
        assert!(matches!(
            prover.open_step(n),
            Err(ProofError::IndexOutOfRange { .. })
        ));
    }
}
