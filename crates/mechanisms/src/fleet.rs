//! Fleet adapters: one uniform entry point per mechanism, over *arbitrary*
//! generated host sets.
//!
//! [`crate::matrix`] drives each mechanism over one hand-built three-host
//! scenario. A fleet-scale engine instead generates thousands of host
//! topologies and needs every mechanism behind the same narrow interface:
//! take a host set and an agent, run one protected journey, report *what
//! was detected and who was accused*. That interface is
//! [`run_fleet_journey`] and its [`JourneyVerdict`].
//!
//! Verdict semantics are identical across mechanisms so aggregate rates
//! are comparable:
//!
//! * `detected` — the mechanism flagged the run,
//! * `accused` — the hosts the mechanism blamed (empty when undetected;
//!   fleet reports score these against the scenario's actual attacker to
//!   measure culprit-attribution accuracy and false accusations),
//! * `completed` — the journey ran to its halt instruction (mechanisms
//!   that check per session abort at the detection point; traces detect
//!   only after completion),
//! * `infra_error` — the journey died of an infrastructure failure (e.g.
//!   input exhaustion after a control-flow attack); counted separately so
//!   detection rates are not silently inflated or deflated.

use std::sync::Arc;

use refstate_core::framework::{run_framework_journey, ProtectedAgent, ProtectionConfig};
use refstate_core::protocol::{
    host_directory, run_protected_journey_with_directory, ProtocolConfig,
};
use refstate_core::rules::{CmpOp, Expr, Pred, RuleSet};
use refstate_core::ReExecutionChecker;
use refstate_crypto::KeyDirectory;
use refstate_platform::{run_plain_journey, AgentImage, EventLog, Host, HostId};
use refstate_vm::ExecConfig;

use crate::appraisal::run_appraised_journey;
use crate::traces::{audit_journey, run_traced_journey};

/// The mechanisms a fleet engine can drive through the uniform adapter.
///
/// [`crate::matrix::MechanismKind::ServerReplication`] is deliberately
/// absent: replication changes the *topology* (replica stages), not just
/// the checking discipline, so it does not fit the shared
/// one-journey-over-one-route interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FleetMechanism {
    /// No protection (baseline row; never detects).
    Unprotected,
    /// State appraisal against a rule set (§3.1).
    StateAppraisal,
    /// The generic framework with re-execution checking.
    FrameworkReExecution,
    /// The paper's §5.1 session-checking protocol (signatures included).
    SessionCheckingProtocol,
    /// Vigna traces with an owner audit after the journey (§3.3).
    ExecutionTraces,
}

impl FleetMechanism {
    /// Every adapter-driveable mechanism.
    pub const ALL: [FleetMechanism; 5] = [
        FleetMechanism::Unprotected,
        FleetMechanism::StateAppraisal,
        FleetMechanism::FrameworkReExecution,
        FleetMechanism::SessionCheckingProtocol,
        FleetMechanism::ExecutionTraces,
    ];

    /// Display / CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            FleetMechanism::Unprotected => "unprotected",
            FleetMechanism::StateAppraisal => "appraisal",
            FleetMechanism::FrameworkReExecution => "framework",
            FleetMechanism::SessionCheckingProtocol => "protocol",
            FleetMechanism::ExecutionTraces => "traces",
        }
    }

    /// Parses a CLI name (see [`FleetMechanism::name`]).
    pub fn parse(s: &str) -> Option<FleetMechanism> {
        FleetMechanism::ALL.into_iter().find(|m| m.name() == s)
    }
}

impl std::fmt::Display for FleetMechanism {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Shared per-fleet configuration for the adapters.
#[derive(Debug, Clone)]
pub struct FleetAdapterConfig {
    /// Execution limits for sessions and checks (applied uniformly: the
    /// protocol adapter overrides its [`ProtocolConfig::exec`] and
    /// `max_hops` with these shared values so every mechanism runs under
    /// identical limits).
    pub exec: ExecConfig,
    /// Config for [`FleetMechanism::SessionCheckingProtocol`] (its `exec`
    /// and `max_hops` are superseded by the shared fields above).
    pub protocol: ProtocolConfig,
    /// Rule set for [`FleetMechanism::StateAppraisal`]. The default
    /// expresses what a programmer of the fleet's route agent plausibly
    /// writes (`total` defined and non-negative) — rule-preserving
    /// attacks pass it, matching the §4.1 "lower end of the scale".
    pub rules: RuleSet,
    /// Hop budget for the unchecked drivers.
    pub max_hops: usize,
}

impl Default for FleetAdapterConfig {
    fn default() -> Self {
        FleetAdapterConfig {
            exec: ExecConfig::default(),
            protocol: ProtocolConfig::default(),
            rules: RuleSet::new()
                .rule("total-defined", Pred::Defined("total".into()))
                .rule(
                    "total-non-negative",
                    Pred::cmp(CmpOp::Ge, Expr::var("total"), Expr::int(0)),
                ),
            max_hops: 64,
        }
    }
}

/// The uniform result of one mechanism over one journey.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JourneyVerdict {
    /// The mechanism flagged the run.
    pub detected: bool,
    /// The hosts the mechanism blamed (empty when nothing was detected).
    pub accused: Vec<HostId>,
    /// The journey ran to its halt instruction.
    pub completed: bool,
    /// The journey died of an infrastructure failure.
    pub infra_error: bool,
}

impl JourneyVerdict {
    fn clean(completed: bool) -> Self {
        JourneyVerdict {
            detected: false,
            accused: Vec::new(),
            completed,
            infra_error: !completed,
        }
    }

    fn accusing(accused: Vec<HostId>, completed: bool) -> Self {
        JourneyVerdict {
            detected: true,
            accused,
            completed,
            infra_error: false,
        }
    }
}

/// Runs one journey of `agent` over `hosts` under `mechanism`.
///
/// `directory` is the PKI for the signature-carrying mechanisms; pass the
/// one built by [`host_directory`] when reusing keys across journeys, or
/// `None` to have it built on the fly.
pub fn run_fleet_journey(
    mechanism: FleetMechanism,
    hosts: &mut [Host],
    start: &HostId,
    agent: AgentImage,
    config: &FleetAdapterConfig,
    directory: Option<&KeyDirectory>,
    log: &EventLog,
) -> JourneyVerdict {
    match mechanism {
        FleetMechanism::Unprotected => {
            let outcome = run_plain_journey(
                hosts,
                start.clone(),
                agent,
                &config.exec,
                log,
                config.max_hops,
            );
            JourneyVerdict::clean(outcome.is_ok())
        }
        // Appraisal is arrival-only by construction (the paper: checking is
        // "the first step of executing an agent arrived at a host"), so an
        // attack on the *final* host has no next arrival and goes unseen.
        // That is the mechanism's measured bandwidth, not a harness gap —
        // fleet reports deliberately surface it as a sub-1.0 rate where
        // the framework/protocol (which model an owner-side final check)
        // score 1.0.
        FleetMechanism::StateAppraisal => {
            match run_appraised_journey(
                hosts,
                start.clone(),
                agent,
                &config.rules,
                &[],
                &config.exec,
                log,
                config.max_hops,
            ) {
                Ok(outcome) => match outcome.rejection {
                    Some((culprit, _detector)) => JourneyVerdict::accusing(vec![culprit], false),
                    None => JourneyVerdict::clean(true),
                },
                Err(_) => JourneyVerdict::clean(false),
            }
        }
        FleetMechanism::FrameworkReExecution => {
            let protection = ProtectionConfig::new(Arc::new(ReExecutionChecker::new()));
            match run_framework_journey(
                hosts,
                start.clone(),
                ProtectedAgent::new(agent, protection),
                log,
            ) {
                Ok(outcome) => match outcome.fraud {
                    Some(fraud) => {
                        // The final-session check attributes the checker to
                        // the executor itself: the journey reached its halt
                        // before the owner-side check flagged it.
                        let completed = fraud.detector == fraud.culprit;
                        JourneyVerdict::accusing(vec![fraud.culprit], completed)
                    }
                    None => JourneyVerdict::clean(true),
                },
                Err(_) => JourneyVerdict::clean(false),
            }
        }
        FleetMechanism::SessionCheckingProtocol => {
            let built;
            let directory = match directory {
                Some(d) => d,
                None => {
                    built = host_directory(hosts);
                    &built
                }
            };
            let protocol = ProtocolConfig {
                exec: config.exec.clone(),
                max_hops: config.max_hops,
                ..config.protocol.clone()
            };
            match run_protected_journey_with_directory(
                hosts,
                start.clone(),
                agent,
                &protocol,
                log,
                directory,
            ) {
                Ok(outcome) => match outcome.fraud {
                    Some(fraud) => {
                        // A fraud detected by the owner's post-halt check
                        // means the journey itself ran to completion.
                        let completed = fraud.detector.as_str() == "owner";
                        JourneyVerdict::accusing(vec![fraud.culprit], completed)
                    }
                    None => JourneyVerdict::clean(true),
                },
                Err(_) => JourneyVerdict::clean(false),
            }
        }
        FleetMechanism::ExecutionTraces => {
            let built;
            let directory = match directory {
                Some(d) => d,
                None => {
                    built = host_directory(hosts);
                    &built
                }
            };
            let program = agent.program.clone();
            match run_traced_journey(
                hosts,
                start.clone(),
                agent,
                &config.exec,
                log,
                config.max_hops,
            ) {
                Ok(journey) => {
                    let report = audit_journey(&journey, &program, directory, &config.exec, log);
                    match report.culprit {
                        Some(culprit) => JourneyVerdict::accusing(vec![culprit], true),
                        None => JourneyVerdict::clean(true),
                    }
                }
                Err(_) => JourneyVerdict::clean(false),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use refstate_crypto::DsaParams;
    use refstate_platform::{Attack, HostSpec};
    use refstate_vm::{assemble, DataState, Value};

    fn three_host_agent() -> AgentImage {
        let program = assemble(
            r#"
            input "n"
            load "total"
            add
            store "total"
            load "hop"
            push 1
            add
            store "hop"
            load "hop"
            push 1
            eq
            jnz to_b
            load "hop"
            push 2
            eq
            jnz to_c
            halt
        to_b:
            push "b"
            migrate
        to_c:
            push "c"
            migrate
        "#,
        )
        .unwrap();
        let mut state = DataState::new();
        state.set("total", Value::Int(0));
        state.set("hop", Value::Int(0));
        AgentImage::new("adapter-test", program, state)
    }

    fn hosts(middle_attack: Option<Attack>) -> Vec<Host> {
        let mut rng = StdRng::seed_from_u64(77);
        let params = DsaParams::test_group_256();
        let mut b = HostSpec::new("b").with_input("n", Value::Int(20));
        if let Some(a) = middle_attack {
            b = b.malicious(a);
        }
        Host::build_all(
            vec![
                HostSpec::new("a").trusted().with_input("n", Value::Int(10)),
                b,
                HostSpec::new("c").trusted().with_input("n", Value::Int(30)),
            ],
            &params,
            &mut rng,
        )
    }

    #[test]
    fn every_mechanism_passes_honest_run() {
        for mechanism in FleetMechanism::ALL {
            let mut hs = hosts(None);
            let verdict = run_fleet_journey(
                mechanism,
                &mut hs,
                &HostId::new("a"),
                three_host_agent(),
                &FleetAdapterConfig::default(),
                None,
                &EventLog::new(),
            );
            assert!(!verdict.detected, "{mechanism} false-positived");
            assert!(verdict.accused.is_empty());
            assert!(verdict.completed, "{mechanism} did not complete");
        }
    }

    #[test]
    fn checking_mechanisms_catch_and_attribute_tampering() {
        for mechanism in [
            FleetMechanism::FrameworkReExecution,
            FleetMechanism::SessionCheckingProtocol,
            FleetMechanism::ExecutionTraces,
        ] {
            let mut hs = hosts(Some(Attack::TamperVariable {
                name: "total".into(),
                value: Value::Int(-9),
            }));
            let verdict = run_fleet_journey(
                mechanism,
                &mut hs,
                &HostId::new("a"),
                three_host_agent(),
                &FleetAdapterConfig::default(),
                None,
                &EventLog::new(),
            );
            assert!(verdict.detected, "{mechanism} missed the tampering");
            assert_eq!(
                verdict.accused,
                vec![HostId::new("b")],
                "{mechanism} blamed wrong"
            );
        }
    }

    #[test]
    fn unprotected_never_detects() {
        let mut hs = hosts(Some(Attack::TamperVariable {
            name: "total".into(),
            value: Value::Int(-9),
        }));
        let verdict = run_fleet_journey(
            FleetMechanism::Unprotected,
            &mut hs,
            &HostId::new("a"),
            three_host_agent(),
            &FleetAdapterConfig::default(),
            None,
            &EventLog::new(),
        );
        assert!(!verdict.detected);
        assert!(verdict.completed);
    }

    #[test]
    fn mechanism_names_round_trip() {
        for m in FleetMechanism::ALL {
            assert_eq!(FleetMechanism::parse(m.name()), Some(m));
        }
        assert_eq!(FleetMechanism::parse("nope"), None);
    }
}
