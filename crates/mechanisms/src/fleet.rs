//! The six paper-surveyed [`ProtectionMechanism`] implementations,
//! drivable over *arbitrary* generated host sets through the uniform
//! [`crate::api`] surface (the chained-integrity pair lives in
//! [`crate::chained`]).
//!
//! Each mechanism is a unit struct wrapping one of the workspace's
//! journey drivers; [`crate::api::MechanismRegistry::builtin`] registers
//! them all. Fleet engines, the detection matrix, CLIs, and benches never
//! name these types directly — they resolve mechanisms from the registry
//! and dispatch through the trait, so adding a mechanism means adding an
//! `impl` here (or in downstream code) and registering it, not editing an
//! engine.
//!
//! Verdict semantics are documented on [`JourneyVerdict`]; the notes on
//! each impl record where a mechanism's measured bandwidth deliberately
//! differs from the others (the paper's §4 analysis, reproduced as rate
//! differences in fleet reports).

use std::sync::Arc;

use refstate_core::framework::{run_framework_journey, ProtectedAgent, ProtectionConfig};
use refstate_core::protocol::{
    run_protected_journey_batched, run_protected_journey_deferred,
    run_protected_journey_with_directory, ProtocolConfig,
};
use refstate_core::{CheckMoment, ReExecutionChecker, ReferenceDataKind, ReferenceDataRequest};
use refstate_platform::run_plain_journey;

use crate::api::{
    protocol_verdict, JourneyCtx, JourneyVerdict, MechanismProfile, PendingOwnerJourney,
    ProtectionMechanism, RouteTopology, SplitVerdict,
};
use crate::replication::run_replicated_pipeline_checked;
use crate::traces::{audit_journey_with_pipeline, run_traced_journey};

/// No protection at all: the baseline row every report needs. Never
/// detects, never accuses.
#[derive(Debug, Clone, Copy, Default)]
pub struct Unprotected;

impl ProtectionMechanism for Unprotected {
    fn name(&self) -> &'static str {
        "unprotected"
    }

    fn description(&self) -> &'static str {
        "no protection; baseline row, never detects"
    }

    fn profile(&self) -> MechanismProfile {
        MechanismProfile {
            moment: None,
            reference_data: ReferenceDataRequest::new(),
            topology: RouteTopology::Linear,
            uses_signatures: false,
        }
    }

    fn run(&self, ctx: &mut JourneyCtx<'_>) -> JourneyVerdict {
        let outcome = run_plain_journey(
            ctx.hosts,
            ctx.start().clone(),
            ctx.agent.clone(),
            &ctx.config.exec,
            ctx.log,
            ctx.config.max_hops,
        );
        JourneyVerdict::clean(outcome.is_ok())
    }
}

/// State appraisal against a rule set (§3.1, Farmer/Guttman/Swarup).
///
/// Appraisal is arrival-only by construction (the paper: checking is "the
/// first step of executing an agent arrived at a host"), so an attack on
/// the *final* host has no next arrival and goes unseen. That is the
/// mechanism's measured bandwidth, not a harness gap — fleet reports
/// deliberately surface it as a sub-1.0 rate where the framework/protocol
/// (which model an owner-side final check) score 1.0.
#[derive(Debug, Clone, Copy, Default)]
pub struct StateAppraisal;

impl ProtectionMechanism for StateAppraisal {
    fn name(&self) -> &'static str {
        "appraisal"
    }

    fn description(&self) -> &'static str {
        "state appraisal against a rule set on every arrival (§3.1)"
    }

    fn profile(&self) -> MechanismProfile {
        MechanismProfile {
            moment: Some(CheckMoment::AfterSession),
            reference_data: ReferenceDataRequest::new()
                .with(ReferenceDataKind::InitialState)
                .with(ReferenceDataKind::ResultingState),
            topology: RouteTopology::Linear,
            uses_signatures: false,
        }
    }

    fn run(&self, ctx: &mut JourneyCtx<'_>) -> JourneyVerdict {
        match crate::appraisal::run_appraised_journey(
            ctx.hosts,
            ctx.start().clone(),
            ctx.agent.clone(),
            &ctx.config.rules,
            &[],
            &ctx.config.exec,
            ctx.log,
            ctx.config.max_hops,
        ) {
            Ok(outcome) => match outcome.rejection {
                Some((culprit, _detector)) => JourneyVerdict::accusing(vec![culprit], false),
                None => JourneyVerdict::clean(true),
            },
            Err(_) => JourneyVerdict::clean(false),
        }
    }
}

/// The generic reference-state framework with re-execution checking.
#[derive(Debug, Clone, Copy, Default)]
pub struct FrameworkReExecution;

impl ProtectionMechanism for FrameworkReExecution {
    fn name(&self) -> &'static str {
        "framework"
    }

    fn description(&self) -> &'static str {
        "the generic framework driver with re-execution checking"
    }

    fn profile(&self) -> MechanismProfile {
        MechanismProfile {
            moment: Some(CheckMoment::AfterSession),
            reference_data: ReferenceDataRequest::new()
                .with(ReferenceDataKind::InitialState)
                .with(ReferenceDataKind::ResultingState)
                .with(ReferenceDataKind::Input),
            topology: RouteTopology::Linear,
            uses_signatures: false,
        }
    }

    fn run(&self, ctx: &mut JourneyCtx<'_>) -> JourneyVerdict {
        let checker = ReExecutionChecker::new().with_pipeline(ctx.pipeline.clone());
        let protection =
            ProtectionConfig::new(Arc::new(checker)).check_workers(ctx.config.check_workers);
        match run_framework_journey(
            ctx.hosts,
            ctx.start().clone(),
            ProtectedAgent::new(ctx.agent.clone(), protection),
            ctx.log,
        ) {
            Ok(outcome) => match outcome.fraud {
                Some(fraud) => {
                    // The final-session check attributes the checker to
                    // the executor itself: the journey reached its halt
                    // before the owner-side check flagged it.
                    let completed = fraud.detector == fraud.culprit;
                    JourneyVerdict::accusing(vec![fraud.culprit], completed)
                }
                None => JourneyVerdict::clean(true),
            },
            Err(_) => JourneyVerdict::clean(false),
        }
    }
}

/// The paper's §5.1 session-checking protocol (signatures included).
///
/// When [`crate::api::MechanismConfig::defer_signatures`] is set (the
/// default), the
/// per-hop certificate verifications are deferred into the context's
/// [`crate::api::JourneyCtx::queue`] and settled in one batch at journey
/// end — the DSA-dominated part of the journey p50 collapses into one
/// fused double-exponentiation pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct SessionCheckingProtocol;

impl ProtectionMechanism for SessionCheckingProtocol {
    fn name(&self) -> &'static str {
        "protocol"
    }

    fn description(&self) -> &'static str {
        "the §5.1 session-checking protocol with signed certificates"
    }

    fn profile(&self) -> MechanismProfile {
        MechanismProfile {
            moment: Some(CheckMoment::AfterSession),
            reference_data: ReferenceDataRequest::new()
                .with(ReferenceDataKind::InitialState)
                .with(ReferenceDataKind::ResultingState)
                .with(ReferenceDataKind::Input),
            topology: RouteTopology::Linear,
            uses_signatures: true,
        }
    }

    fn run(&self, ctx: &mut JourneyCtx<'_>) -> JourneyVerdict {
        let protocol = ProtocolConfig {
            exec: ctx.config.exec.clone(),
            max_hops: ctx.config.max_hops,
            pipeline: ctx.pipeline.clone(),
            ..ctx.config.protocol.clone()
        };
        let stage = ctx.stage("protocol.journey");
        let result = if ctx.config.defer_signatures {
            run_protected_journey_batched(
                ctx.hosts,
                ctx.start().clone(),
                ctx.agent.clone(),
                &protocol,
                ctx.log,
                ctx.directory,
                &mut ctx.queue,
            )
        } else {
            run_protected_journey_with_directory(
                ctx.hosts,
                ctx.start().clone(),
                ctx.agent.clone(),
                &protocol,
                ctx.log,
                ctx.directory,
            )
        };
        drop(stage);
        match result {
            Ok(outcome) => protocol_verdict(&outcome),
            Err(_) => JourneyVerdict::clean(false),
        }
    }

    /// The host-side journey only: signature checks accumulate on the
    /// context's queue and the owner's final check is left pending, so a
    /// resident service can settle a whole tick of journeys in two
    /// amortized passes ([`crate::api::settle_owner_batch`]). Always
    /// defers, regardless of
    /// [`defer_signatures`](crate::api::MechanismConfig::defer_signatures)
    /// — deferral is this entry point's contract.
    fn run_split(&self, ctx: &mut JourneyCtx<'_>) -> SplitVerdict {
        let protocol = ProtocolConfig {
            exec: ctx.config.exec.clone(),
            max_hops: ctx.config.max_hops,
            pipeline: ctx.pipeline.clone(),
            ..ctx.config.protocol.clone()
        };
        let stage = ctx.stage("protocol.journey");
        let result = run_protected_journey_deferred(
            ctx.hosts,
            ctx.start().clone(),
            ctx.agent.clone(),
            &protocol,
            ctx.log,
            ctx.directory,
            &mut ctx.queue,
        );
        drop(stage);
        match result {
            Ok(journey) => SplitVerdict::Pending(Box::new(PendingOwnerJourney {
                journey,
                queue: std::mem::take(&mut ctx.queue),
            })),
            Err(_) => SplitVerdict::Settled(JourneyVerdict::clean(false)),
        }
    }
}

/// Vigna traces with an owner audit after the journey (§3.3).
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecutionTraces;

impl ProtectionMechanism for ExecutionTraces {
    fn name(&self) -> &'static str {
        "traces"
    }

    fn description(&self) -> &'static str {
        "Vigna execution traces with an owner audit after the task (§3.3)"
    }

    fn profile(&self) -> MechanismProfile {
        MechanismProfile {
            moment: Some(CheckMoment::AfterTask),
            reference_data: ReferenceDataRequest::new()
                .with(ReferenceDataKind::InitialState)
                .with(ReferenceDataKind::Input)
                .with(ReferenceDataKind::ExecutionLog),
            topology: RouteTopology::Linear,
            uses_signatures: true,
        }
    }

    fn run(&self, ctx: &mut JourneyCtx<'_>) -> JourneyVerdict {
        let program = ctx.agent.program.clone();
        let forward = ctx.stage("traces.forward");
        let journey = run_traced_journey(
            ctx.hosts,
            ctx.start().clone(),
            ctx.agent.clone(),
            &ctx.config.exec,
            ctx.log,
            ctx.config.max_hops,
        );
        drop(forward);
        match journey {
            Ok(journey) => {
                let _audit = ctx.stage("traces.audit");
                let report = audit_journey_with_pipeline(
                    &journey,
                    &program,
                    ctx.directory,
                    &ctx.config.exec,
                    ctx.log,
                    &ctx.pipeline,
                );
                match report.culprit {
                    Some(culprit) => JourneyVerdict::accusing(vec![culprit], true),
                    None => JourneyVerdict::clean(true),
                }
            }
            Err(_) => JourneyVerdict::clean(false),
        }
    }
}

/// Server replication (§3.2, Minsky et al.): every stage executes on a
/// set of replicas whose voted majority seeds the next stage.
///
/// The only built-in mechanism whose profile declares
/// [`RouteTopology::ReplicatedStages`] — it changes the *topology*, not
/// just the checking discipline, so it runs only scenarios that provide
/// [`crate::replication::StageSpec`]s (the fleet's `replicated` preset,
/// the matrix's standard staged scenario). Dissenting replicas are the
/// accused; a stage without a majority ends the journey undetected but
/// uncompleted.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReplicatedStages;

impl ProtectionMechanism for ReplicatedStages {
    fn name(&self) -> &'static str {
        "replication"
    }

    fn description(&self) -> &'static str {
        "server replication: staged replica execution with majority voting (§3.2)"
    }

    fn profile(&self) -> MechanismProfile {
        MechanismProfile {
            moment: Some(CheckMoment::AfterSession),
            reference_data: ReferenceDataRequest::new()
                .with(ReferenceDataKind::ResultingState)
                .with(ReferenceDataKind::Resources),
            topology: RouteTopology::ReplicatedStages,
            uses_signatures: false,
        }
    }

    fn run(&self, ctx: &mut JourneyCtx<'_>) -> JourneyVerdict {
        let Some(stages) = ctx.stages.clone() else {
            // Engines check the profile first; a stage-less context is an
            // infrastructure failure, not a panic.
            return JourneyVerdict::clean(false);
        };
        match run_replicated_pipeline_checked(
            ctx.hosts,
            &stages,
            ctx.agent.clone(),
            &ctx.config.exec,
            ctx.log,
            &ctx.pipeline,
        ) {
            Ok(outcome) => {
                let completed = outcome.final_state.is_some();
                if outcome.suspects.is_empty() {
                    // No majority and no dissenters is a degenerate stage;
                    // count it as an infrastructure failure.
                    JourneyVerdict::clean(completed)
                } else {
                    JourneyVerdict::accusing(outcome.suspects, completed)
                }
            }
            Err(_) => JourneyVerdict::clean(false),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{MechanismConfig, MechanismRegistry};
    use crate::replication::StageSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use refstate_core::protocol::host_directory;
    use refstate_crypto::DsaParams;
    use refstate_platform::{AgentImage, Attack, EventLog, Host, HostId, HostSpec};
    use refstate_vm::{assemble, DataState, Value};

    fn three_host_agent() -> AgentImage {
        let program = assemble(
            r#"
            input "n"
            load "total"
            add
            store "total"
            load "hop"
            push 1
            add
            store "hop"
            load "hop"
            push 1
            eq
            jnz to_b
            load "hop"
            push 2
            eq
            jnz to_c
            halt
        to_b:
            push "b"
            migrate
        to_c:
            push "c"
            migrate
        "#,
        )
        .unwrap();
        let mut state = DataState::new();
        state.set("total", Value::Int(0));
        state.set("hop", Value::Int(0));
        AgentImage::new("adapter-test", program, state)
    }

    /// Three-host route a → b → c with replicas b1/b2 so the replicated
    /// mechanism can run the same scenario.
    fn hosts(middle_attack: Option<Attack>) -> Vec<Host> {
        let mut rng = StdRng::seed_from_u64(77);
        let params = DsaParams::test_group_256();
        let mut b = HostSpec::new("b").with_input("n", Value::Int(20));
        if let Some(a) = middle_attack {
            b = b.malicious(a);
        }
        Host::build_all(
            vec![
                HostSpec::new("a").trusted().with_input("n", Value::Int(10)),
                b,
                HostSpec::new("b1").with_input("n", Value::Int(20)),
                HostSpec::new("b2").with_input("n", Value::Int(20)),
                HostSpec::new("c").trusted().with_input("n", Value::Int(30)),
            ],
            &params,
            &mut rng,
        )
    }

    fn run(mechanism: &dyn ProtectionMechanism, attack: Option<Attack>) -> JourneyVerdict {
        let mut hs = hosts(attack);
        let directory = host_directory(&hs);
        let config = MechanismConfig::default();
        let log = EventLog::new();
        let route = vec![HostId::new("a"), HostId::new("b"), HostId::new("c")];
        let mut ctx = JourneyCtx::new(
            &mut hs,
            route,
            three_host_agent(),
            &directory,
            &config,
            &log,
            9,
        )
        .with_stages(vec![
            StageSpec::new(["a"]),
            StageSpec::new(["b", "b1", "b2"]),
            StageSpec::new(["c"]),
        ]);
        mechanism.run(&mut ctx)
    }

    #[test]
    fn every_mechanism_passes_honest_run() {
        for mechanism in MechanismRegistry::builtin().iter() {
            let verdict = run(mechanism.as_ref(), None);
            assert!(!verdict.detected, "{} false-positived", mechanism.name());
            assert!(verdict.accused.is_empty());
            assert!(verdict.completed, "{} did not complete", mechanism.name());
        }
    }

    #[test]
    fn checking_mechanisms_catch_and_attribute_tampering() {
        let registry = MechanismRegistry::builtin();
        for name in [
            "framework",
            "protocol",
            "traces",
            "replication",
            "cooperating",
        ] {
            let mechanism = registry.get(name).expect("built in");
            let verdict = run(
                mechanism.as_ref(),
                Some(Attack::TamperVariable {
                    name: "total".into(),
                    value: Value::Int(-9),
                }),
            );
            assert!(verdict.detected, "{name} missed the tampering");
            assert_eq!(
                verdict.accused,
                vec![HostId::new("b")],
                "{name} blamed wrong"
            );
        }
    }

    #[test]
    fn unprotected_never_detects() {
        let verdict = run(
            &Unprotected,
            Some(Attack::TamperVariable {
                name: "total".into(),
                value: Value::Int(-9),
            }),
        );
        assert!(!verdict.detected);
        assert!(verdict.completed);
    }

    #[test]
    fn protocol_deferred_and_eager_verdicts_agree() {
        for defer in [false, true] {
            let mut hs = hosts(Some(Attack::TamperVariable {
                name: "total".into(),
                value: Value::Int(-9),
            }));
            let directory = host_directory(&hs);
            let config = MechanismConfig {
                defer_signatures: defer,
                ..MechanismConfig::default()
            };
            let log = EventLog::new();
            let route = vec![HostId::new("a"), HostId::new("b"), HostId::new("c")];
            let mut ctx = JourneyCtx::new(
                &mut hs,
                route,
                three_host_agent(),
                &directory,
                &config,
                &log,
                9,
            );
            let verdict = SessionCheckingProtocol.run(&mut ctx);
            assert!(verdict.detected, "defer={defer}");
            assert_eq!(verdict.accused, vec![HostId::new("b")]);
            assert!(ctx.queue.is_empty(), "the batched run drains its queue");
        }
    }

    #[test]
    fn split_and_batch_settle_match_inline_run() {
        use crate::api::settle_owner_batch;
        use std::sync::Arc;

        // Three journeys per round: honest, mid-route tamperer, and a
        // rule-preserving tamperer. Splitting the owner side out and
        // settling all three in one batch must reproduce the inline
        // verdicts, across worker counts.
        let attacks: Vec<Option<Attack>> = vec![
            None,
            Some(Attack::TamperVariable {
                name: "total".into(),
                value: Value::Int(-5),
            }),
            Some(Attack::TamperVariable {
                name: "total".into(),
                value: Value::Int(1),
            }),
        ];
        let config = MechanismConfig::default();
        let route = || vec![HostId::new("a"), HostId::new("b"), HostId::new("c")];

        let inline: Vec<JourneyVerdict> = attacks
            .iter()
            .map(|attack| {
                let mut hs = hosts(attack.clone());
                let directory = host_directory(&hs);
                let log = EventLog::new();
                let mut ctx = JourneyCtx::new(
                    &mut hs,
                    route(),
                    three_host_agent(),
                    &directory,
                    &config,
                    &log,
                    9,
                );
                SessionCheckingProtocol.run(&mut ctx)
            })
            .collect();

        for workers in [1, 2, 8] {
            let log = EventLog::new();
            let pipeline = Arc::new(refstate_core::VerificationPipeline::uncached());
            let mut host_sets: Vec<Vec<Host>> = attacks.iter().map(|a| hosts(a.clone())).collect();
            // Identical reseeding: one directory covers every set.
            let directory = host_directory(&host_sets[0]);
            let mut pendings = Vec::new();
            for (i, hs) in host_sets.iter_mut().enumerate() {
                let mut agent = three_host_agent();
                agent.id = refstate_platform::AgentId::new(format!("fleet-{i}"));
                let mut ctx = JourneyCtx::new(hs, route(), agent, &directory, &config, &log, 9)
                    .with_pipeline(pipeline.clone());
                match SessionCheckingProtocol.run_split(&mut ctx) {
                    SplitVerdict::Pending(p) => {
                        assert!(ctx.queue.is_empty(), "queue lifted into the pending");
                        pendings.push(*p);
                    }
                    SplitVerdict::Settled(v) => panic!("journey ran, expected pending: {v:?}"),
                }
            }
            let (verdicts, stats) =
                settle_owner_batch(pendings, &config, &pipeline, &log, &directory, workers);
            assert_eq!(verdicts, inline, "workers={workers}");
            assert!(stats.flush_verifications > 0, "signatures were deferred");
            assert_eq!(stats.unattributed_failures, 0);
        }

        // The default split settles immediately for mechanisms without an
        // owner-side phase.
        let mut hs = hosts(None);
        let directory = host_directory(&hs);
        let log = EventLog::new();
        let mut ctx = JourneyCtx::new(
            &mut hs,
            route(),
            three_host_agent(),
            &directory,
            &config,
            &log,
            9,
        );
        match StateAppraisal.run_split(&mut ctx) {
            SplitVerdict::Settled(v) => assert!(!v.detected),
            SplitVerdict::Pending(_) => panic!("appraisal has no owner-side phase"),
        }
    }

    #[test]
    fn replication_without_stages_is_an_infra_error_not_a_panic() {
        let mut hs = hosts(None);
        let directory = host_directory(&hs);
        let config = MechanismConfig::default();
        let log = EventLog::new();
        let route = vec![HostId::new("a"), HostId::new("b"), HostId::new("c")];
        let mut ctx = JourneyCtx::new(
            &mut hs,
            route,
            three_host_agent(),
            &directory,
            &config,
            &log,
            9,
        );
        let verdict = ReplicatedStages.run(&mut ctx);
        assert!(!verdict.detected);
        assert!(verdict.infra_error);
    }
}
