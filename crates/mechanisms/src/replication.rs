//! Server replication (Minsky, van Renesse, Schneider, Stoller — §3.2).
//!
//! Every *stage* of the journey is executed in parallel by a set of
//! independent replica hosts offering the same resources. After each stage
//! the replicas vote on the resulting agent state; the majority wins and
//! seeds the next stage. Up to `⌈n/2⌉ - 1` malicious replicas per stage are
//! outvoted — including colluders across *different* stages, the property
//! the paper highlights.

use std::collections::BTreeMap;

use refstate_core::{ReplaySummary, VerificationPipeline};
use refstate_crypto::{sha256, Digest};
use refstate_platform::{AgentImage, Event, EventLog, Host, HostId};
use refstate_vm::{DataState, ExecConfig, InputLog, SessionEnd, VmError};
use refstate_wire::to_wire;

/// One stage: the replica hosts that execute it in parallel.
#[derive(Debug, Clone)]
pub struct StageSpec {
    /// The replicas (index into the journey's host slice, by id).
    pub replicas: Vec<HostId>,
}

impl StageSpec {
    /// A stage over the given replicas.
    pub fn new<I: IntoIterator<Item = H>, H: Into<HostId>>(replicas: I) -> Self {
        StageSpec {
            replicas: replicas.into_iter().map(Into::into).collect(),
        }
    }
}

/// The vote record of one stage.
#[derive(Debug, Clone)]
pub struct StageVote {
    /// The stage index.
    pub stage: usize,
    /// Votes per resulting-state digest.
    pub tally: BTreeMap<Digest, Vec<HostId>>,
    /// The winning digest (majority), if any.
    pub winner: Option<Digest>,
    /// Replicas that voted against the majority — the suspects.
    pub dissenters: Vec<HostId>,
}

impl StageVote {
    /// Returns `true` if a strict majority agreed.
    pub fn has_majority(&self) -> bool {
        self.winner.is_some()
    }
}

/// The outcome of a replicated pipeline run.
#[derive(Debug)]
pub struct ReplicationOutcome {
    /// The final voted agent state (absent when a stage had no majority).
    pub final_state: Option<DataState>,
    /// Per-stage vote records.
    pub votes: Vec<StageVote>,
    /// All hosts that ever dissented from a majority.
    pub suspects: Vec<HostId>,
    /// Suspects whose dissent is *confirmed tampering*: re-executing the
    /// replica's own recorded session input through the verification
    /// pipeline produced a state or continuation decision different from
    /// the one it claimed, so the replica lied about its computation (a
    /// suspect absent here diverged consistently with its own log — e.g.
    /// forged input, which replicated resources expose but re-execution
    /// cannot, §4.2). Populated only by
    /// [`run_replicated_pipeline_checked`]; the vote — and therefore
    /// `suspects` — is unaffected.
    pub confirmed_tampering: Vec<HostId>,
}

impl ReplicationOutcome {
    /// Returns `true` when every stage reached a majority and nobody
    /// dissented.
    pub fn unanimous(&self) -> bool {
        self.suspects.is_empty() && self.votes.iter().all(StageVote::has_majority)
    }
}

/// Errors from the pipeline driver.
#[derive(Debug)]
#[non_exhaustive]
pub enum ReplicationError {
    /// A referenced replica is not registered.
    UnknownHost {
        /// The missing replica.
        host: HostId,
    },
    /// A stage reached no majority (more than `⌈n/2⌉-1` malicious or
    /// diverging replicas).
    NoMajority {
        /// The failing stage.
        stage: usize,
    },
    /// A replica session failed.
    Vm(VmError),
}

impl std::fmt::Display for ReplicationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplicationError::UnknownHost { host } => write!(f, "unknown replica {host}"),
            ReplicationError::NoMajority { stage } => {
                write!(f, "stage {stage} reached no majority")
            }
            ReplicationError::Vm(e) => write!(f, "replica session failed: {e}"),
        }
    }
}

impl std::error::Error for ReplicationError {}

impl From<VmError> for ReplicationError {
    fn from(e: VmError) -> Self {
        ReplicationError::Vm(e)
    }
}

/// Runs the agent through a pipeline of replicated stages.
///
/// Each stage executes one session of the agent on every replica, starting
/// from the previous stage's majority state. The replicas' input feeds play
/// the role of the replicated resources (honest replicas must be
/// provisioned identically, which is the mechanism's deployment burden the
/// paper points out).
///
/// # Errors
///
/// [`ReplicationError::NoMajority`] when voting fails — with fewer than
/// `⌈n/2⌉` honest replicas the mechanism's precondition is broken.
pub fn run_replicated_pipeline(
    hosts: &mut [Host],
    stages: &[StageSpec],
    agent: AgentImage,
    exec: &ExecConfig,
    log: &EventLog,
) -> Result<ReplicationOutcome, ReplicationError> {
    run_replicated_inner(hosts, stages, agent, exec, log, None)
}

/// [`run_replicated_pipeline`] with dissent *confirmation* through the
/// shared verification pipeline.
///
/// Voting is unchanged (same majorities, same suspects); additionally,
/// every dissenting replica's session is re-executed from its own
/// recorded input log, and replicas whose claimed state diverges from
/// that reference state are reported in
/// [`ReplicationOutcome::confirmed_tampering`] — reference-state-grade
/// evidence on top of the vote. Honest replicas of a stage share one
/// session fingerprint, so with a cached pipeline the confirmation costs
/// at most one replay per divergent stage.
pub fn run_replicated_pipeline_checked(
    hosts: &mut [Host],
    stages: &[StageSpec],
    agent: AgentImage,
    exec: &ExecConfig,
    log: &EventLog,
    pipeline: &VerificationPipeline,
) -> Result<ReplicationOutcome, ReplicationError> {
    run_replicated_inner(hosts, stages, agent, exec, log, Some(pipeline))
}

fn run_replicated_inner(
    hosts: &mut [Host],
    stages: &[StageSpec],
    agent: AgentImage,
    exec: &ExecConfig,
    log: &EventLog,
    pipeline: Option<&VerificationPipeline>,
) -> Result<ReplicationOutcome, ReplicationError> {
    let mut state = agent.state.clone();
    let mut votes = Vec::with_capacity(stages.len());
    let mut suspects: Vec<HostId> = Vec::new();
    let mut confirmed_tampering: Vec<HostId> = Vec::new();

    for (stage_index, stage) in stages.iter().enumerate() {
        let mut tally: BTreeMap<Digest, Vec<HostId>> = BTreeMap::new();
        let mut states: BTreeMap<Digest, DataState> = BTreeMap::new();
        // Per replica: the recorded input (moved, not cloned) and the
        // claimed session end, kept for the pipeline confirmation of
        // dissenters. The honest-majority path pays nothing beyond these
        // moves.
        let mut claims: Vec<(HostId, InputLog, SessionEnd)> = Vec::new();

        for replica_id in &stage.replicas {
            let host = hosts
                .iter_mut()
                .find(|h| h.id() == replica_id)
                .ok_or_else(|| ReplicationError::UnknownHost {
                    host: replica_id.clone(),
                })?;
            let image = AgentImage::new(agent.id.clone(), agent.program.clone(), state.clone());
            let record = host.execute_session(&image, exec, log)?;
            // The vote covers the resulting state *and* the continuation
            // decision so a replica cannot hijack the itinerary.
            let end_token = match &record.outcome.end {
                SessionEnd::Migrate(h) => format!("migrate:{h}"),
                SessionEnd::Halt => "halt".to_owned(),
            };
            let mut vote_bytes = to_wire(&record.outcome.state);
            vote_bytes.extend_from_slice(end_token.as_bytes());
            let digest = sha256(&vote_bytes);
            tally.entry(digest).or_default().push(replica_id.clone());
            states.insert(digest, record.outcome.state.clone());
            if pipeline.is_some() {
                claims.push((
                    replica_id.clone(),
                    record.outcome.input_log,
                    record.outcome.end,
                ));
            }
        }

        let quorum = stage.replicas.len() / 2 + 1;
        let winner = tally
            .iter()
            .find(|(_, voters)| voters.len() >= quorum)
            .map(|(digest, _)| *digest);
        let dissenters: Vec<HostId> = match winner {
            Some(w) => tally
                .iter()
                .filter(|(d, _)| **d != w)
                .flat_map(|(_, voters)| voters.iter().cloned())
                .collect(),
            None => Vec::new(),
        };
        for d in &dissenters {
            if !suspects.contains(d) {
                suspects.push(d.clone());
            }
            log.record(Event::FraudDetected {
                culprit: d.clone(),
                detector: HostId::new(format!("stage-{stage_index}-quorum")),
                reason: "replica vote diverged from majority".into(),
            });
        }
        if let Some(pipeline) = pipeline {
            // Confirm each dissenter against its own log: a replica whose
            // claimed state *or claimed continuation decision* differs
            // from the reference re-execution lied about its computation,
            // not (only) about its resources. Dissent is the rare case,
            // so all hashing happens here, not on the honest-majority
            // path. (`state` still holds this stage's initial state — the
            // winner is adopted below.)
            for (replica, input, claimed_end) in &claims {
                if !dissenters.contains(replica) {
                    continue;
                }
                let claimed_digest = tally
                    .iter()
                    .find(|(_, voters)| voters.contains(replica))
                    .and_then(|(digest, _)| states.get(digest))
                    .map(|claimed| sha256(&to_wire(claimed)));
                let diverged = match pipeline.replay(&agent.program, &state, input, exec) {
                    ReplaySummary::Ok {
                        state_digest, end, ..
                    } => {
                        claimed_digest.is_none_or(|claimed| claimed != state_digest)
                            || &end != claimed_end
                    }
                    // A log the session cannot even replay is a lie too.
                    ReplaySummary::Failed(_) => true,
                };
                if diverged && !confirmed_tampering.contains(replica) {
                    confirmed_tampering.push(replica.clone());
                }
            }
        }
        let vote = StageVote {
            stage: stage_index,
            tally,
            winner,
            dissenters,
        };
        let has_majority = vote.has_majority();
        votes.push(vote);

        match winner {
            Some(w) => state = states.remove(&w).expect("winner digest present"),
            None => {
                debug_assert!(!has_majority);
                return Ok(ReplicationOutcome {
                    final_state: None,
                    votes,
                    suspects,
                    confirmed_tampering,
                });
            }
        }
    }

    Ok(ReplicationOutcome {
        final_state: Some(state),
        votes,
        suspects,
        confirmed_tampering,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use refstate_crypto::DsaParams;
    use refstate_platform::{Attack, HostSpec};
    use refstate_vm::{assemble, Value};

    /// One-session stage program: adds this stage's offer into "total".
    fn stage_agent() -> AgentImage {
        let program = assemble(
            r#"
            input "offer"
            load "total"
            add
            store "total"
            push "next"
            migrate
        "#,
        )
        .unwrap();
        let mut state = DataState::new();
        state.set("total", Value::Int(0));
        AgentImage::new("voter", program, state)
    }

    /// Builds `n` replicas per stage with identical feeds; `bad` lists
    /// (stage, replica) pairs to corrupt.
    fn build(
        stages: usize,
        replicas: usize,
        offers: &[i64],
        bad: &[(usize, usize)],
    ) -> (Vec<Host>, Vec<StageSpec>) {
        let mut rng = StdRng::seed_from_u64(7_000);
        let params = DsaParams::test_group_256();
        let mut hosts = Vec::new();
        let mut specs = Vec::new();
        for (s, &offer) in offers.iter().enumerate().take(stages) {
            let mut ids = Vec::new();
            for r in 0..replicas {
                let id = format!("s{s}r{r}");
                let mut spec = HostSpec::new(id.as_str()).with_input("offer", Value::Int(offer));
                if bad.contains(&(s, r)) {
                    spec = spec.malicious(Attack::TamperVariable {
                        name: "total".into(),
                        value: Value::Int(-1),
                    });
                }
                hosts.push(Host::new(spec, &params, &mut rng));
                ids.push(id);
            }
            specs.push(StageSpec::new(ids));
        }
        (hosts, specs)
    }

    #[test]
    fn all_honest_reaches_unanimous_result() {
        let (mut hosts, stages) = build(3, 3, &[10, 20, 30], &[]);
        let log = EventLog::new();
        let outcome = run_replicated_pipeline(
            &mut hosts,
            &stages,
            stage_agent(),
            &ExecConfig::default(),
            &log,
        )
        .unwrap();
        assert!(outcome.unanimous());
        assert_eq!(outcome.final_state.unwrap().get_int("total"), Some(60));
    }

    #[test]
    fn single_malicious_replica_is_outvoted_and_identified() {
        let (mut hosts, stages) = build(3, 3, &[10, 20, 30], &[(1, 2)]);
        let log = EventLog::new();
        let outcome = run_replicated_pipeline(
            &mut hosts,
            &stages,
            stage_agent(),
            &ExecConfig::default(),
            &log,
        )
        .unwrap();
        assert_eq!(outcome.final_state.unwrap().get_int("total"), Some(60));
        assert_eq!(outcome.suspects, vec![HostId::new("s1r2")]);
        assert!(!outcome.votes[1].has_majority() || outcome.votes[1].dissenters.len() == 1);
    }

    #[test]
    fn cross_stage_colluders_are_each_outvoted() {
        // One attacker in each of two different stages: both caught — "even
        // collaboration attacks between hosts of different steps can be
        // found as long as the condition holds" (§3.2).
        let (mut hosts, stages) = build(3, 3, &[10, 20, 30], &[(0, 0), (2, 1)]);
        let log = EventLog::new();
        let outcome = run_replicated_pipeline(
            &mut hosts,
            &stages,
            stage_agent(),
            &ExecConfig::default(),
            &log,
        )
        .unwrap();
        assert_eq!(outcome.final_state.unwrap().get_int("total"), Some(60));
        assert_eq!(outcome.suspects.len(), 2);
    }

    #[test]
    fn majority_malicious_stage_fails_or_lies() {
        // Two of three replicas corrupt *identically*: they win the vote —
        // the n/2 bound is tight.
        let (mut hosts, stages) = build(2, 3, &[10, 20], &[(0, 0), (0, 1)]);
        let log = EventLog::new();
        let outcome = run_replicated_pipeline(
            &mut hosts,
            &stages,
            stage_agent(),
            &ExecConfig::default(),
            &log,
        )
        .unwrap();
        // The attackers' identical forged state wins stage 0.
        let final_state = outcome.final_state.expect("majority (of attackers) exists");
        assert_eq!(
            final_state.get_int("total"),
            Some(19),
            "-1 forged, then +20 honestly"
        );
        // The honest replica is the one flagged as dissenting!
        assert_eq!(outcome.suspects, vec![HostId::new("s0r2")]);
    }

    #[test]
    fn divergent_attackers_produce_no_majority() {
        // Replicas 0 and 1 both attack but produce different forgeries in a
        // 2-replica stage: no quorum of 2 exists.
        let mut rng = StdRng::seed_from_u64(8_000);
        let params = DsaParams::test_group_256();
        let mut hosts = vec![
            Host::new(
                HostSpec::new("x0")
                    .with_input("offer", Value::Int(5))
                    .malicious(Attack::TamperVariable {
                        name: "total".into(),
                        value: Value::Int(-1),
                    }),
                &params,
                &mut rng,
            ),
            Host::new(
                HostSpec::new("x1")
                    .with_input("offer", Value::Int(5))
                    .malicious(Attack::TamperVariable {
                        name: "total".into(),
                        value: Value::Int(-2),
                    }),
                &params,
                &mut rng,
            ),
        ];
        let stages = vec![StageSpec::new(["x0", "x1"])];
        let log = EventLog::new();
        let outcome = run_replicated_pipeline(
            &mut hosts,
            &stages,
            stage_agent(),
            &ExecConfig::default(),
            &log,
        )
        .unwrap();
        assert!(outcome.final_state.is_none());
        assert!(!outcome.votes[0].has_majority());
    }

    #[test]
    fn checked_pipeline_confirms_state_tampering_but_not_input_forgery() {
        use refstate_core::ReplayCache;
        use std::sync::Arc;
        // Stage 1 replica 2 tampers with its state: the vote flags it AND
        // the pipeline confirms the lie from its own log.
        let (mut hosts, stages) = build(3, 3, &[10, 20, 30], &[(1, 2)]);
        let log = EventLog::new();
        let pipeline = VerificationPipeline::with_cache(Arc::new(ReplayCache::new()));
        let outcome = run_replicated_pipeline_checked(
            &mut hosts,
            &stages,
            stage_agent(),
            &ExecConfig::default(),
            &log,
            &pipeline,
        )
        .unwrap();
        assert_eq!(outcome.suspects, vec![HostId::new("s1r2")]);
        assert_eq!(outcome.confirmed_tampering, vec![HostId::new("s1r2")]);
        assert!(pipeline.snapshot().replays >= 1);

        // An input-forging replica diverges *consistently* with its own
        // log: the vote still flags it, but re-execution cannot confirm a
        // computation lie — the paper's §4.2 bandwidth, visible here only
        // because the replicated resources disagree.
        let mut rng = StdRng::seed_from_u64(10_000);
        let params = DsaParams::test_group_256();
        let mut hosts: Vec<Host> = (0..3)
            .map(|i| {
                let mut spec = HostSpec::new(format!("f{i}")).with_input("offer", Value::Int(5));
                if i == 2 {
                    spec = spec.malicious(Attack::ForgeInput {
                        tag: "offer".into(),
                        value: Value::Int(-50),
                    });
                }
                Host::new(spec, &params, &mut rng)
            })
            .collect();
        let stages = vec![StageSpec::new(["f0", "f1", "f2"])];
        let log = EventLog::new();
        let outcome = run_replicated_pipeline_checked(
            &mut hosts,
            &stages,
            stage_agent(),
            &ExecConfig::default(),
            &log,
            &pipeline,
        )
        .unwrap();
        assert_eq!(outcome.suspects, vec![HostId::new("f2")]);
        assert!(
            outcome.confirmed_tampering.is_empty(),
            "input forgery is consistent with the forged log"
        );
    }

    #[test]
    fn checked_pipeline_confirms_migration_hijack() {
        // A replica that computes the honest state but lies about the
        // continuation decision: its own log replays to the honest end,
        // so the hijack is a provable computation lie, not a resource
        // divergence.
        let mut rng = StdRng::seed_from_u64(11_000);
        let params = DsaParams::test_group_256();
        let mut hosts: Vec<Host> = (0..3)
            .map(|i| {
                let mut spec = HostSpec::new(format!("r{i}")).with_input("offer", Value::Int(5));
                if i == 2 {
                    spec = spec.malicious(Attack::RedirectMigration {
                        to: HostId::new("evil"),
                    });
                }
                Host::new(spec, &params, &mut rng)
            })
            .collect();
        let stages = vec![StageSpec::new(["r0", "r1", "r2"])];
        let log = EventLog::new();
        let pipeline = VerificationPipeline::uncached();
        let outcome = run_replicated_pipeline_checked(
            &mut hosts,
            &stages,
            stage_agent(),
            &ExecConfig::default(),
            &log,
            &pipeline,
        )
        .unwrap();
        assert_eq!(outcome.suspects, vec![HostId::new("r2")]);
        assert_eq!(outcome.confirmed_tampering, vec![HostId::new("r2")]);
    }

    #[test]
    fn unchecked_pipeline_reports_no_confirmations() {
        let (mut hosts, stages) = build(2, 3, &[10, 20], &[(1, 0)]);
        let log = EventLog::new();
        let outcome = run_replicated_pipeline(
            &mut hosts,
            &stages,
            stage_agent(),
            &ExecConfig::default(),
            &log,
        )
        .unwrap();
        assert_eq!(outcome.suspects.len(), 1);
        assert!(outcome.confirmed_tampering.is_empty());
    }

    #[test]
    fn unknown_replica_is_an_error() {
        let (mut hosts, _) = build(1, 2, &[1], &[]);
        let stages = vec![StageSpec::new(["ghost"])];
        let log = EventLog::new();
        let err = run_replicated_pipeline(
            &mut hosts,
            &stages,
            stage_agent(),
            &ExecConfig::default(),
            &log,
        )
        .unwrap_err();
        assert!(matches!(err, ReplicationError::UnknownHost { .. }));
    }

    #[test]
    fn vote_covers_migration_decision() {
        // A replica that redirects migration (same state, different next
        // hop) must still dissent.
        let mut rng = StdRng::seed_from_u64(9_000);
        let params = DsaParams::test_group_256();
        let mut hosts = vec![
            Host::new(
                HostSpec::new("y0").with_input("offer", Value::Int(5)),
                &params,
                &mut rng,
            ),
            Host::new(
                HostSpec::new("y1").with_input("offer", Value::Int(5)),
                &params,
                &mut rng,
            ),
            Host::new(
                HostSpec::new("y2")
                    .with_input("offer", Value::Int(5))
                    .malicious(Attack::RedirectMigration {
                        to: HostId::new("evil"),
                    }),
                &params,
                &mut rng,
            ),
        ];
        let stages = vec![StageSpec::new(["y0", "y1", "y2"])];
        let log = EventLog::new();
        let outcome = run_replicated_pipeline(
            &mut hosts,
            &stages,
            stage_agent(),
            &ExecConfig::default(),
            &log,
        )
        .unwrap();
        assert_eq!(outcome.suspects, vec![HostId::new("y2")]);
    }
}
