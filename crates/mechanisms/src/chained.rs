//! The chained-integrity mechanism family: hop-chained MACs and signed
//! partial result encapsulation.
//!
//! Everything else in this crate descends from the paper's
//! reference-state idea — recompute what an honest host *would* have
//! produced and compare. The two mechanisms here come from the related
//! work instead (Karjoth/Asokan/Gülcü's chained offers; the
//! Zwierko–Kotulski integrity-protection survey; Rodríguez–Sobrado's
//! public-key information-management model) and protect a different
//! thing by a different means: each host appends its **partial result**
//! to a chain the agent carries, cryptographically bound to the chain of
//! all predecessors and to the identity of the next hop. The owner (or
//! any verifier) can then prove that nobody later truncated, reordered,
//! or substituted the recorded results — **without replaying a single
//! session and without any reference state**.
//!
//! The structural trade against re-execution, surfaced by the detection
//! matrix and pinned by the adversarial proptest battery:
//!
//! * chain manipulation (truncate-tail, swap-two-hops,
//!   replace-partial-result) is detected at rate 1.0,
//! * **computation lies evade the family entirely** — a host that runs
//!   the agent wrong simply MACs/signs its own lie, and with no replay
//!   there is nothing to compare against,
//! * a predecessor that colludes by sharing its chain key lets its
//!   successor forge the predecessor's entry validly
//!   ([`Attack::ForgeChainEntry`]) — the chained analogue of the §5.1
//!   consecutive-host collusion.
//!
//! Two registry citizens implement the family:
//!
//! * [`ChainedMac`] (`chained`) — per-hop HMAC-SHA-256 links keyed by
//!   owner-shared per-host keys. Only the owner can verify, so detection
//!   is after-task and the owner can prove *that* the chain was broken
//!   but not *who* broke it (MAC failures do not localize the
//!   manipulator): detection without attribution.
//! * [`EncapsulatedResults`] (`encapsulated`) — per-hop DSA-signed
//!   encapsulations, publicly verifiable: honest hosts check the chain
//!   structure on every arrival (hash-only, cheap) and abort the journey
//!   at the hop after the manipulation, blaming the host that handed the
//!   broken chain over. Signature checks ride the crypto crate's fast
//!   path: deferred into the journey's
//!   [`VerificationQueue`] and
//!   settled in one fused-exponentiation batch at journey end (set
//!   [`MechanismConfig::defer_signatures`](crate::api::MechanismConfig::defer_signatures)
//!   to `false` for eager per-arrival `verify_fused` instead).

use std::fmt;

use rand::RngCore;
use refstate_core::CheckMoment;
use refstate_core::{ReferenceDataKind, ReferenceDataRequest};
use refstate_crypto::{sha256, Digest, HmacSha256, KeyDirectory, Signed, VerificationQueue};
use refstate_platform::{AgentId, AgentImage, Attack, Event, EventLog, Host, HostId};
use refstate_vm::{DataState, ExecConfig, SessionEnd, VmError};
use refstate_wire::{to_wire, Decode, Encode, Reader, WireError, Writer};

use crate::api::{
    JourneyCtx, JourneyVerdict, MechanismProfile, ProtectionMechanism, RouteTopology,
};

/// The owner's per-journey chain secret: the root the anchor and every
/// per-host MAC key are derived from. In a deployment the owner hands
/// each itinerary host its derived key over a secure channel at dispatch
/// time; the simulation derives them on demand.
#[derive(Clone)]
pub struct ChainSecret([u8; 32]);

impl fmt::Debug for ChainSecret {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print key material.
        f.write_str("ChainSecret(..)")
    }
}

impl ChainSecret {
    /// Draws a fresh secret from the journey's RNG stream.
    pub fn from_rng(rng: &mut dyn RngCore) -> Self {
        let mut bytes = [0u8; 32];
        rng.fill_bytes(&mut bytes);
        ChainSecret(bytes)
    }

    /// The per-host MAC key: `SHA-256(secret ‖ host id)`. Known to the
    /// owner and to that host alone (unless the host leaks it — see
    /// [`Attack::ForgeChainEntry`]).
    pub fn host_key(&self, host: &HostId) -> Digest {
        let mut w = Writer::new();
        w.put_raw(&self.0);
        w.put_str(host.as_str());
        sha256(&w.into_inner())
    }

    /// The chain anchor: the public starting head, binding the chain to
    /// this journey's agent and secret.
    pub fn anchor(&self, agent: &AgentId) -> Digest {
        let mut w = Writer::new();
        w.put_str("refstate-chain-anchor");
        w.put_raw(&self.0);
        agent.encode(&mut w);
        sha256(&w.into_inner())
    }
}

/// Canonical bytes of a link's authenticated content (shared by the MAC
/// and the signature variants): sequence number, executor, partial
/// result digest, and the committed next hop.
fn link_core_bytes(
    seq: u64,
    executor: &HostId,
    result_digest: &Digest,
    next: &Option<HostId>,
) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u64(seq);
    executor.encode(&mut w);
    result_digest.encode(&mut w);
    next.encode(&mut w);
    w.into_inner()
}

/// One link of the MAC chain ([`ChainedMac`]): the executing host's
/// partial result, chained to every predecessor and to the committed
/// next hop by `mac = HMAC(host key, prev mac ‖ link core)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainLink {
    /// Session sequence number (slot in the chain).
    pub seq: u64,
    /// The executing host.
    pub executor: HostId,
    /// SHA-256 of the resulting agent state this host reported.
    pub result_digest: Digest,
    /// The next hop this host committed to (`None` = halt).
    pub next: Option<HostId>,
    /// The chain MAC binding all of the above to the predecessors.
    pub mac: Digest,
}

impl ChainLink {
    /// The chain MAC of `link` following `prev` (the predecessor's MAC,
    /// or the anchor): `HMAC(host key, prev ‖ link core)`. Public so the
    /// adversarial battery can build chains and keyed forgeries without
    /// driving hosts.
    pub fn chain_mac(secret: &ChainSecret, prev: &Digest, link: &ChainLink) -> Digest {
        let key = secret.host_key(&link.executor);
        let mut mac = HmacSha256::new(key.as_bytes());
        mac.update(prev.as_bytes());
        mac.update(&link_core_bytes(
            link.seq,
            &link.executor,
            &link.result_digest,
            &link.next,
        ));
        mac.finalize()
    }
}

impl Encode for ChainLink {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.seq);
        self.executor.encode(w);
        self.result_digest.encode(w);
        self.next.encode(w);
        self.mac.encode(w);
    }
}

impl Decode for ChainLink {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(ChainLink {
            seq: r.take_u64()?,
            executor: HostId::decode(r)?,
            result_digest: Digest::decode(r)?,
            next: Option::<HostId>::decode(r)?,
            mac: Digest::decode(r)?,
        })
    }
}

/// One signed encapsulation ([`EncapsulatedResults`]): like a
/// [`ChainLink`], but publicly verifiable — the chain binding is an
/// explicit `prev_head` (the hash of the predecessor's *entire signed
/// encapsulation*) and the authenticity proof is the executor's DSA
/// signature over the whole payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Encapsulation {
    /// Session sequence number (slot in the chain).
    pub seq: u64,
    /// The executing host.
    pub executor: HostId,
    /// SHA-256 of the resulting agent state this host reported.
    pub result_digest: Digest,
    /// Hash of the predecessor's signed encapsulation (the journey
    /// anchor for the first link).
    pub prev_head: Digest,
    /// The next hop this host committed to (`None` = halt).
    pub next: Option<HostId>,
}

impl Encode for Encapsulation {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.seq);
        self.executor.encode(w);
        self.result_digest.encode(w);
        self.prev_head.encode(w);
        self.next.encode(w);
    }
}

impl Decode for Encapsulation {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Encapsulation {
            seq: r.take_u64()?,
            executor: HostId::decode(r)?,
            result_digest: Digest::decode(r)?,
            prev_head: Digest::decode(r)?,
            next: Option::<HostId>::decode(r)?,
        })
    }
}

/// The head the successor of a signed encapsulation chains to: the hash
/// of the entire signed link, so any change to payload *or* signature
/// breaks every later `prev_head`.
pub fn encapsulation_head(link: &Signed<Encapsulation>) -> Digest {
    sha256(&to_wire(link))
}

/// The public anchor of an encapsulation chain.
pub fn encapsulation_anchor(agent: &AgentId, nonce: &[u8; 32]) -> Digest {
    let mut w = Writer::new();
    w.put_str("refstate-encap-anchor");
    w.put_raw(nonce);
    agent.encode(&mut w);
    sha256(&w.into_inner())
}

/// Where chain verification found the first inconsistency.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ChainBreak {
    /// The chain is empty although the journey completed.
    EmptyChain,
    /// The first link's executor is not the journey's start host.
    WrongStart,
    /// A link's sequence number does not match its slot.
    SequenceGap,
    /// A link's MAC does not verify under its executor's key
    /// ([`ChainedMac`] only).
    MacMismatch,
    /// A link's `prev_head` does not match the hash of its predecessor
    /// ([`EncapsulatedResults`] only).
    HeadMismatch,
    /// A link's committed next hop is not the following link's executor.
    NextHopMismatch,
    /// The final link commits to a further hop, but the journey ended.
    DanglingNextHop,
    /// The delivered agent state does not match the final link's
    /// recorded partial result.
    FinalStateMismatch,
    /// A link's signature does not verify
    /// ([`EncapsulatedResults`] only).
    BadSignature,
}

impl fmt::Display for ChainBreak {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = match self {
            ChainBreak::EmptyChain => "result chain is empty",
            ChainBreak::WrongStart => "first chain entry was not made by the start host",
            ChainBreak::SequenceGap => "chain sequence numbers are not contiguous",
            ChainBreak::MacMismatch => "chain MAC does not verify under the executor's key",
            ChainBreak::HeadMismatch => "chain head does not match the predecessor entry",
            ChainBreak::NextHopMismatch => {
                "committed next hop differs from the following entry's executor"
            }
            ChainBreak::DanglingNextHop => "final entry commits to a hop that never happened",
            ChainBreak::FinalStateMismatch => {
                "delivered agent state differs from the final recorded result"
            }
            ChainBreak::BadSignature => "encapsulation signature does not verify",
        };
        f.write_str(text)
    }
}

/// The verdict of one chain verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainVerdict {
    /// The first break found (`None` = the chain is intact).
    pub first_break: Option<(usize, ChainBreak)>,
}

impl ChainVerdict {
    /// Returns `true` when a manipulation was found.
    pub fn tampered(&self) -> bool {
        self.first_break.is_some()
    }
}

/// A fraud report from a chained journey: unlike [`ChainVerdict`] (the
/// owner's after-task view), this carries attribution — produced only
/// where the scheme genuinely supports it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainFraud {
    /// The host blamed.
    pub culprit: HostId,
    /// The host (or `"owner"`) that detected the manipulation.
    pub detector: HostId,
    /// What broke.
    pub reason: ChainBreak,
}

/// Journey errors (infrastructure only — detection is not an error).
#[derive(Debug)]
#[non_exhaustive]
pub enum ChainError {
    /// Unknown migration target.
    UnknownHost {
        /// The destination.
        host: HostId,
    },
    /// Hop budget exceeded.
    TooManyHops {
        /// The budget.
        limit: usize,
    },
}

impl fmt::Display for ChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainError::UnknownHost { host } => write!(f, "unknown migration target {host}"),
            ChainError::TooManyHops { limit } => write!(f, "journey exceeded {limit} hops"),
        }
    }
}

impl std::error::Error for ChainError {}

/// A completed MAC-chained journey.
#[derive(Debug)]
pub struct MacChainJourney {
    /// The agent's delivered final state.
    pub final_state: DataState,
    /// Hosts visited, in order.
    pub path: Vec<HostId>,
    /// The carried chain, as the owner received it (manipulations
    /// included).
    pub links: Vec<ChainLink>,
    /// Set when a session crashed and the journey ended early (the owner
    /// never receives the chain).
    pub failure: Option<VmError>,
}

/// Applies one chain attack to the links collected so far (the chain the
/// attacker *received*), in place, and reports whether anything changed
/// (so drivers log `AttackApplied` only for manipulations that
/// happened). `forge` re-MACs/re-signs a rewritten predecessor entry —
/// only the collusion attack has the key material to do that — and
/// reports its own success.
fn apply_chain_attack<L>(
    attack: &Attack,
    links: &mut Vec<L>,
    replace: impl FnOnce(&mut L),
    forge: impl FnOnce(&mut Vec<L>, &HostId) -> bool,
) -> bool {
    match attack {
        Attack::TruncateChainTail { drop } => {
            let keep = links.len().saturating_sub((*drop).max(1));
            let changed = keep < links.len();
            links.truncate(keep);
            changed
        }
        Attack::SwapChainEntries => {
            let n = links.len();
            if n >= 2 {
                links.swap(n - 2, n - 1);
                true
            } else {
                false
            }
        }
        Attack::ReplacePartialResult => match links.last_mut() {
            Some(last) => {
                replace(last);
                true
            }
            None => false,
        },
        Attack::ForgeChainEntry { accomplice } => forge(links, accomplice),
        _ => false,
    }
}

/// Runs a journey under the MAC-chain discipline: every host appends a
/// [`ChainLink`] for its session; hosts whose behaviour is a chain
/// attack manipulate the received chain first. Nothing checks en route —
/// only the owner holds the keys ([`verify_mac_chain`]).
///
/// # Errors
///
/// See [`ChainError`]. A mid-journey VM crash is reported through
/// [`MacChainJourney::failure`] (partial journey), not as an error.
pub fn run_mac_chained_journey(
    hosts: &mut [Host],
    start: impl Into<HostId>,
    agent: AgentImage,
    secret: &ChainSecret,
    exec: &ExecConfig,
    log: &EventLog,
    max_hops: usize,
) -> Result<MacChainJourney, ChainError> {
    let mut image = agent;
    let mut current: HostId = start.into();
    log.record(Event::AgentCreated {
        agent: image.id.clone(),
        home: current.clone(),
    });
    let anchor = secret.anchor(&image.id);
    let mut path = vec![current.clone()];
    let mut links: Vec<ChainLink> = Vec::new();

    for _ in 0..max_hops {
        let host = hosts
            .iter_mut()
            .find(|h| h.id() == &current)
            .ok_or_else(|| ChainError::UnknownHost {
                host: current.clone(),
            })?;
        let attack = host.behaviour().attack().cloned();
        let record = match host.execute_session(&image, exec, log) {
            Ok(record) => record,
            Err(e) => {
                return Ok(MacChainJourney {
                    final_state: image.state,
                    path,
                    links,
                    failure: Some(e),
                });
            }
        };

        // A chain-attacking host manipulates the chain it received
        // before appending its own (valid) link on top.
        if let Some(attack) = attack.as_ref().filter(|a| a.targets_result_chain()) {
            let applied = apply_chain_attack(
                attack,
                &mut links,
                |last| {
                    // Substitution without the victim's key: the stale
                    // MAC no longer covers the forged digest.
                    last.result_digest = sha256(b"forged-partial-result");
                },
                |links, accomplice| {
                    // Collusion: the immediate predecessor shared its
                    // key, so its entry is rewritten *validly*.
                    let n = links.len();
                    if n == 0 || &links[n - 1].executor != accomplice {
                        return false;
                    }
                    links[n - 1].result_digest = sha256(b"forged-by-accomplice");
                    let prev = if n == 1 { anchor } else { links[n - 2].mac };
                    let mac = ChainLink::chain_mac(secret, &prev, &links[n - 1]);
                    links[n - 1].mac = mac;
                    true
                },
            );
            if applied {
                log.record(Event::AttackApplied {
                    host: current.clone(),
                    attack: attack.label().to_owned(),
                });
            }
        }

        let next = match &record.outcome.end {
            SessionEnd::Migrate(h) => Some(HostId::new(h.clone())),
            SessionEnd::Halt => None,
        };
        // Continue the sequence the (possibly manipulated) chain claims:
        // the strongest adversary re-numbers seamlessly, so verification
        // must not rely on sequence gaps alone.
        let seq = links.last().map(|l| l.seq + 1).unwrap_or(0);
        let prev = links.last().map(|l| l.mac).unwrap_or(anchor);
        let mut link = ChainLink {
            seq,
            executor: current.clone(),
            result_digest: sha256(&to_wire(&record.outcome.state)),
            next: next.clone(),
            mac: anchor, // placeholder, overwritten below
        };
        link.mac = ChainLink::chain_mac(secret, &prev, &link);
        links.push(link);

        image.state = record.outcome.state.clone();
        match next {
            None => {
                return Ok(MacChainJourney {
                    final_state: image.state,
                    path,
                    links,
                    failure: None,
                })
            }
            Some(next_host) => {
                if !hosts.iter().any(|h| h.id() == &next_host) {
                    return Err(ChainError::UnknownHost { host: next_host });
                }
                log.record(Event::Migrated {
                    from: current.clone(),
                    to: next_host.clone(),
                    agent: image.id.clone(),
                    bytes: to_wire(&image).len(),
                });
                path.push(next_host.clone());
                current = next_host;
            }
        }
    }
    Err(ChainError::TooManyHops { limit: max_hops })
}

/// The owner-side verification of a MAC chain: recompute every link's
/// MAC under the per-host keys, walk the sequence numbers and next-hop
/// commitments, and bind the delivered state to the final recorded
/// result. No session is replayed.
///
/// Detection is complete for truncation, reordering, and substitution;
/// attribution is **not** attempted — a failing MAC proves manipulation
/// happened somewhere downstream of the victim entry, but any later host
/// could have done it (the family's documented bandwidth; contrast the
/// publicly verifiable [`EncapsulatedResults`]).
pub fn verify_mac_chain(
    links: &[ChainLink],
    secret: &ChainSecret,
    agent: &AgentId,
    start: &HostId,
    final_state_digest: &Digest,
) -> ChainVerdict {
    let fail = |slot: usize, reason: ChainBreak| ChainVerdict {
        first_break: Some((slot, reason)),
    };
    let Some(first) = links.first() else {
        return fail(0, ChainBreak::EmptyChain);
    };
    if &first.executor != start {
        return fail(0, ChainBreak::WrongStart);
    }
    let mut prev = secret.anchor(agent);
    for (slot, link) in links.iter().enumerate() {
        if link.seq != slot as u64 {
            return fail(slot, ChainBreak::SequenceGap);
        }
        if ChainLink::chain_mac(secret, &prev, link) != link.mac {
            return fail(slot, ChainBreak::MacMismatch);
        }
        if slot + 1 < links.len() {
            match &link.next {
                Some(next) if next == &links[slot + 1].executor => {}
                _ => return fail(slot, ChainBreak::NextHopMismatch),
            }
        }
        prev = link.mac;
    }
    let last = links.last().expect("checked non-empty");
    if last.next.is_some() {
        return fail(links.len() - 1, ChainBreak::DanglingNextHop);
    }
    if &last.result_digest != final_state_digest {
        return fail(links.len() - 1, ChainBreak::FinalStateMismatch);
    }
    ChainVerdict { first_break: None }
}

/// A completed (or aborted) encapsulated-results journey.
#[derive(Debug)]
pub struct EncapsulatedJourney {
    /// The agent's delivered final state (`None` when the journey was
    /// aborted by an en-route detection).
    pub final_state: Option<DataState>,
    /// Hosts visited, in order.
    pub path: Vec<HostId>,
    /// The carried chain of signed encapsulations.
    pub chain: Vec<Signed<Encapsulation>>,
    /// The detection, when one fired (en route or owner-side).
    pub fraud: Option<ChainFraud>,
    /// Set when a session crashed and the journey ended early.
    pub failure: Option<VmError>,
}

/// Structural verification of an encapsulation chain: first-executor,
/// sequence, `prev_head` continuity, and interior next-hop commitments.
/// Hash-only (no signatures), so every arriving host can afford it.
fn check_encapsulation_structure(
    chain: &[Signed<Encapsulation>],
    anchor: &Digest,
    start: &HostId,
) -> Option<(usize, ChainBreak)> {
    let first = chain.first()?;
    if &first.payload().executor != start {
        return Some((0, ChainBreak::WrongStart));
    }
    let mut prev = *anchor;
    for (slot, link) in chain.iter().enumerate() {
        let payload = link.payload();
        if payload.seq != slot as u64 {
            return Some((slot, ChainBreak::SequenceGap));
        }
        if payload.prev_head != prev {
            return Some((slot, ChainBreak::HeadMismatch));
        }
        if slot + 1 < chain.len() {
            match &payload.next {
                Some(next) if next == &chain[slot + 1].payload().executor => {}
                _ => return Some((slot, ChainBreak::NextHopMismatch)),
            }
        }
        prev = encapsulation_head(link);
    }
    None
}

/// The owner's full verification of an encapsulation chain: structure,
/// terminal conditions, the delivered-state binding, and every
/// signature — flushed through `queue` in one batch (the fused
/// double-exponentiation fast path with per-key cached tables).
///
/// On a break, attribution finds the first slot at (or after) the break
/// whose entry *endorses the manipulated chain* — signature valid and
/// `prev_head` matching the chain as received. An honest host's entry
/// never endorses a manipulation it did not see, so that endorser is the
/// manipulator (or a colluder relaying for one).
pub fn owner_verify_encapsulations(
    chain: &[Signed<Encapsulation>],
    anchor: &Digest,
    start: &HostId,
    final_state_digest: &Digest,
    path: &[HostId],
    directory: &KeyDirectory,
    queue: &mut VerificationQueue,
) -> Option<ChainFraud> {
    let owner = HostId::new("owner");
    // One deferred batch for every signature in the chain. The flush
    // settles anything already sitting in the caller's queue too (their
    // checks were due by journey end anyway), so index the verdicts from
    // where this chain's deferrals started — the slot-to-verdict mapping
    // must not depend on the queue arriving empty.
    let already_deferred = queue.len();
    for link in chain {
        queue.defer_signed(link);
    }
    let signature_ok: Vec<bool> = queue
        .flush(directory)
        .into_iter()
        .skip(already_deferred)
        .map(|(_, ok)| ok)
        .collect();
    let signature_ok = |slot: usize| signature_ok.get(slot).copied().unwrap_or(false);

    let structural = check_encapsulation_structure(chain, anchor, start).or_else(|| {
        let last = chain.last()?;
        if last.payload().next.is_some() {
            return Some((chain.len() - 1, ChainBreak::DanglingNextHop));
        }
        if &last.payload().result_digest != final_state_digest {
            return Some((chain.len() - 1, ChainBreak::FinalStateMismatch));
        }
        None
    });
    let first_break = match (structural, chain.is_empty()) {
        (_, true) => Some((0, ChainBreak::EmptyChain)),
        (Some(found), _) => Some(found),
        (None, _) => (0..chain.len())
            .find(|&slot| !signature_ok(slot))
            .map(|slot| (slot, ChainBreak::BadSignature)),
    };
    let (bad_slot, reason) = first_break?;

    // Attribution: recompute the heads of the chain *as received*; the
    // first entry from the break on that is both self-signed and chained
    // onto the manipulated prefix vouched for the manipulation. A broken
    // next-hop commitment lives on the (honest) entry *before* the
    // manipulation, so the endorser search starts one slot later.
    let search_from = match reason {
        ChainBreak::NextHopMismatch | ChainBreak::DanglingNextHop => bad_slot + 1,
        _ => bad_slot,
    };
    let mut expected_prev = *anchor;
    let mut endorser = None;
    for (slot, link) in chain.iter().enumerate() {
        let consistent = link.payload().prev_head == expected_prev && signature_ok(slot);
        if slot >= search_from && consistent {
            endorser = Some(link.payload().executor.clone());
            break;
        }
        expected_prev = encapsulation_head(link);
    }
    let culprit = endorser
        .or_else(|| path.last().cloned())
        .unwrap_or_else(|| start.clone());
    Some(ChainFraud {
        culprit,
        detector: owner,
        reason,
    })
}

/// Runs a journey under the signed-encapsulation discipline. Honest
/// hosts verify the received chain's structure on arrival (and, when
/// `defer_signatures` is `false`, every signature eagerly through the
/// fused fast path) and abort the journey on a break, blaming the host
/// that handed the chain over. The owner re-verifies everything at the
/// end through [`owner_verify_encapsulations`].
///
/// # Errors
///
/// See [`ChainError`]; VM crashes surface as
/// [`EncapsulatedJourney::failure`].
#[allow(clippy::too_many_arguments)] // journey drivers take the full kit
pub fn run_encapsulated_journey(
    hosts: &mut [Host],
    start: impl Into<HostId>,
    agent: AgentImage,
    nonce: &[u8; 32],
    exec: &ExecConfig,
    log: &EventLog,
    max_hops: usize,
    directory: &KeyDirectory,
    defer_signatures: bool,
) -> Result<EncapsulatedJourney, ChainError> {
    let start: HostId = start.into();
    let mut image = agent;
    let mut current = start.clone();
    log.record(Event::AgentCreated {
        agent: image.id.clone(),
        home: current.clone(),
    });
    let anchor = encapsulation_anchor(&image.id, nonce);
    let mut path = vec![current.clone()];
    let mut chain: Vec<Signed<Encapsulation>> = Vec::new();

    for _ in 0..max_hops {
        let host_index = hosts
            .iter()
            .position(|h| h.id() == &current)
            .ok_or_else(|| ChainError::UnknownHost {
                host: current.clone(),
            })?;
        let attack = hosts[host_index].behaviour().attack().cloned();
        let honest_host = attack.is_none();

        // Arrival check (honest hosts only; an attacker has no reason to
        // report itself): chain structure, the top entry's commitment to
        // *this* host, and — on the eager path — every signature.
        if honest_host && !chain.is_empty() {
            let mut found = check_encapsulation_structure(&chain, &anchor, &start);
            if found.is_none() {
                let top = chain.last().expect("non-empty").payload();
                if top.next.as_ref() != Some(&current) {
                    found = Some((chain.len() - 1, ChainBreak::NextHopMismatch));
                }
            }
            if found.is_none() && !defer_signatures {
                found = chain
                    .iter()
                    .position(|link| link.verify(directory).is_err())
                    .map(|slot| (slot, ChainBreak::BadSignature));
            }
            if let Some((_, reason)) = found {
                // The previous hop handed over a broken chain.
                let culprit = path[path.len() - 2].clone();
                log.record(Event::FraudDetected {
                    culprit: culprit.clone(),
                    detector: current.clone(),
                    reason: reason.to_string(),
                });
                return Ok(EncapsulatedJourney {
                    final_state: None,
                    path,
                    chain,
                    fraud: Some(ChainFraud {
                        culprit,
                        detector: current,
                        reason,
                    }),
                    failure: None,
                });
            }
            log.record(Event::CheckPerformed {
                checker: current.clone(),
                checked: path[path.len() - 2].clone(),
                passed: true,
            });
        }

        let record = match hosts[host_index].execute_session(&image, exec, log) {
            Ok(record) => record,
            Err(e) => {
                return Ok(EncapsulatedJourney {
                    final_state: None,
                    path,
                    chain,
                    fraud: None,
                    failure: Some(e),
                });
            }
        };

        if let Some(attack) = attack.as_ref().filter(|a| a.targets_result_chain()) {
            let applied = apply_chain_attack(
                attack,
                &mut chain,
                |last| {
                    // Substitution without the victim's signing key: the
                    // stale signature no longer covers the forged bytes.
                    *last = last.clone().tampered_with(|mut payload| {
                        payload.result_digest = sha256(b"forged-partial-result");
                        payload
                    });
                },
                |chain, accomplice| {
                    // Collusion: re-sign the rewritten entry with the
                    // predecessor's real key.
                    let Some(last) = chain.last() else {
                        return false;
                    };
                    if &last.payload().executor != accomplice {
                        return false;
                    }
                    let mut payload = last.payload().clone();
                    payload.result_digest = sha256(b"forged-by-accomplice");
                    let Some(acc) = hosts.iter_mut().find(|h| h.id() == accomplice) else {
                        return false;
                    };
                    *chain.last_mut().expect("checked non-empty") = acc.sign(payload);
                    true
                },
            );
            if applied {
                log.record(Event::AttackApplied {
                    host: current.clone(),
                    attack: attack.label().to_owned(),
                });
            }
        }

        let next = match &record.outcome.end {
            SessionEnd::Migrate(h) => Some(HostId::new(h.clone())),
            SessionEnd::Halt => None,
        };
        let seq = chain.last().map(|l| l.payload().seq + 1).unwrap_or(0);
        let prev_head = chain.last().map(encapsulation_head).unwrap_or(anchor);
        let payload = Encapsulation {
            seq,
            executor: current.clone(),
            result_digest: sha256(&to_wire(&record.outcome.state)),
            prev_head,
            next: next.clone(),
        };
        chain.push(hosts[host_index].sign(payload));

        image.state = record.outcome.state.clone();
        match next {
            None => {
                return Ok(EncapsulatedJourney {
                    final_state: Some(image.state),
                    path,
                    chain,
                    fraud: None,
                    failure: None,
                })
            }
            Some(next_host) => {
                if !hosts.iter().any(|h| h.id() == &next_host) {
                    return Err(ChainError::UnknownHost { host: next_host });
                }
                log.record(Event::Migrated {
                    from: current.clone(),
                    to: next_host.clone(),
                    agent: image.id.clone(),
                    bytes: to_wire(&image).len(),
                });
                path.push(next_host.clone());
                current = next_host;
            }
        }
    }
    Err(ChainError::TooManyHops { limit: max_hops })
}

/// Karjoth-style chained MACs as a registry citizen (`chained`): per-hop
/// HMAC links over owner-shared keys. Detects truncation, substitution,
/// and reordering of the carried partial results without any
/// re-execution; verifiable by the owner only, after the task, and —
/// deliberately — **without attribution** (a broken MAC does not
/// localize the manipulator). Computation lies and colluding-predecessor
/// forgeries pass untouched: the structural contrast with every
/// re-execution mechanism in the registry.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChainedMac;

impl ProtectionMechanism for ChainedMac {
    fn name(&self) -> &'static str {
        "chained"
    }

    fn description(&self) -> &'static str {
        "hop-chained MACs over partial results (Karjoth-style), owner-verified"
    }

    fn profile(&self) -> MechanismProfile {
        MechanismProfile {
            moment: Some(CheckMoment::AfterTask),
            reference_data: ReferenceDataRequest::new().with(ReferenceDataKind::ResultingState),
            topology: RouteTopology::Linear,
            uses_signatures: false,
        }
    }

    fn run(&self, ctx: &mut JourneyCtx<'_>) -> JourneyVerdict {
        let secret = ChainSecret::from_rng(&mut ctx.rng);
        let agent_id = ctx.agent.id.clone();
        let start = ctx.start().clone();
        let forward = ctx.stage("chained.journey");
        let journey = run_mac_chained_journey(
            ctx.hosts,
            start.clone(),
            ctx.agent.clone(),
            &secret,
            &ctx.config.exec,
            ctx.log,
            ctx.config.max_hops,
        );
        drop(forward);
        match journey {
            Ok(journey) => {
                if journey.failure.is_some() {
                    // The agent died en route; the chain never came home.
                    return JourneyVerdict::clean(false);
                }
                let _verify = ctx.stage("chained.verify");
                let final_digest = sha256(&to_wire(&journey.final_state));
                let verdict =
                    verify_mac_chain(&journey.links, &secret, &agent_id, &start, &final_digest);
                match verdict.first_break {
                    Some((_, reason)) => {
                        ctx.log.record(Event::FraudDetected {
                            culprit: HostId::new("unknown"),
                            detector: HostId::new("owner"),
                            reason: reason.to_string(),
                        });
                        JourneyVerdict::detected_unattributed(true)
                    }
                    None => JourneyVerdict::clean(true),
                }
            }
            Err(_) => JourneyVerdict::clean(false),
        }
    }
}

/// Signed partial result encapsulation as a registry citizen
/// (`encapsulated`): Rodríguez–Sobrado-style publicly verifiable chain.
/// Honest hosts check structure on every arrival and abort at the hop
/// after a manipulation, blaming the handing-over host; the owner
/// re-verifies everything, with all DSA checks batched through the
/// journey's [`VerificationQueue`]
/// (fused fast path, per-key cached tables). Same blind spots as
/// [`ChainedMac`]: computation lies and colluding predecessors.
#[derive(Debug, Clone, Copy, Default)]
pub struct EncapsulatedResults;

impl ProtectionMechanism for EncapsulatedResults {
    fn name(&self) -> &'static str {
        "encapsulated"
    }

    fn description(&self) -> &'static str {
        "signed per-hop partial result encapsulation, publicly verifiable"
    }

    fn profile(&self) -> MechanismProfile {
        MechanismProfile {
            moment: Some(CheckMoment::AfterSession),
            reference_data: ReferenceDataRequest::new().with(ReferenceDataKind::ResultingState),
            topology: RouteTopology::Linear,
            uses_signatures: true,
        }
    }

    fn run(&self, ctx: &mut JourneyCtx<'_>) -> JourneyVerdict {
        let mut nonce = [0u8; 32];
        ctx.rng.fill_bytes(&mut nonce);
        let agent_id = ctx.agent.id.clone();
        let start = ctx.start().clone();
        let forward = ctx.stage("encapsulated.journey");
        let journey = run_encapsulated_journey(
            ctx.hosts,
            start.clone(),
            ctx.agent.clone(),
            &nonce,
            &ctx.config.exec,
            ctx.log,
            ctx.config.max_hops,
            ctx.directory,
            ctx.config.defer_signatures,
        );
        drop(forward);
        let journey = match journey {
            Ok(journey) => journey,
            Err(_) => return JourneyVerdict::clean(false),
        };
        if let Some(fraud) = journey.fraud {
            // An en-route arrival check aborted the journey.
            return JourneyVerdict::accusing(vec![fraud.culprit], false);
        }
        if journey.failure.is_some() {
            return JourneyVerdict::clean(false);
        }
        let Some(final_state) = &journey.final_state else {
            return JourneyVerdict::clean(false);
        };
        let anchor = encapsulation_anchor(&agent_id, &nonce);
        let final_digest = sha256(&to_wire(final_state));
        let _verify = ctx.stage("encapsulated.verify");
        match owner_verify_encapsulations(
            &journey.chain,
            &anchor,
            &start,
            &final_digest,
            &journey.path,
            ctx.directory,
            &mut ctx.queue,
        ) {
            Some(fraud) => {
                ctx.log.record(Event::FraudDetected {
                    culprit: fraud.culprit.clone(),
                    detector: fraud.detector.clone(),
                    reason: fraud.reason.to_string(),
                });
                JourneyVerdict::accusing(vec![fraud.culprit], true)
            }
            None => JourneyVerdict::clean(true),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use refstate_core::protocol::host_directory;
    use refstate_crypto::DsaParams;
    use refstate_platform::HostSpec;
    use refstate_vm::{assemble, Value};

    use crate::api::MechanismConfig;

    /// A four-host route agent: h0 → h1 → h2 → h3, one summed input per
    /// hop (long enough that every chain attack has predecessors to
    /// manipulate).
    fn route_agent(n: usize) -> AgentImage {
        let mut asm = String::from(
            "input \"n\"\nload \"total\"\nadd\nstore \"total\"\nload \"hop\"\npush 1\nadd\nstore \"hop\"\n",
        );
        for hop in 1..n {
            asm.push_str(&format!("load \"hop\"\npush {hop}\neq\njnz to_{hop}\n"));
        }
        asm.push_str("halt\n");
        for hop in 1..n {
            asm.push_str(&format!("to_{hop}:\npush \"h{hop}\"\nmigrate\n"));
        }
        let program = assemble(&asm).unwrap();
        let mut state = DataState::new();
        state.set("total", Value::Int(0));
        state.set("hop", Value::Int(0));
        AgentImage::new("chain-test", program, state)
    }

    fn hosts(n: usize, attacker: Option<(usize, Attack)>) -> Vec<Host> {
        let mut rng = StdRng::seed_from_u64(4242);
        let params = DsaParams::test_group_256();
        let specs: Vec<HostSpec> = (0..n)
            .map(|pos| {
                let mut spec = HostSpec::new(format!("h{pos}"));
                if pos == 0 {
                    spec = spec.trusted();
                }
                spec = spec.with_input("n", Value::Int(10 * (pos as i64 + 1)));
                if let Some((apos, attack)) = &attacker {
                    if *apos == pos {
                        spec = spec.malicious(attack.clone());
                    }
                }
                spec
            })
            .collect();
        Host::build_all(specs, &params, &mut rng)
    }

    fn ctx_verdict(mechanism: &dyn ProtectionMechanism, hs: &mut [Host]) -> JourneyVerdict {
        let directory = host_directory(hs);
        let config = MechanismConfig::default();
        let log = EventLog::new();
        let n = hs.len();
        let route: Vec<HostId> = (0..n).map(|p| HostId::new(format!("h{p}"))).collect();
        let mut ctx = JourneyCtx::new(hs, route, route_agent(n), &directory, &config, &log, 77);
        mechanism.run(&mut ctx)
    }

    #[test]
    fn honest_mac_chain_verifies_clean() {
        let mut hs = hosts(4, None);
        let verdict = ctx_verdict(&ChainedMac, &mut hs);
        assert!(!verdict.detected);
        assert!(verdict.completed);
    }

    #[test]
    fn honest_encapsulated_chain_verifies_clean() {
        for defer in [true, false] {
            let mut hs = hosts(4, None);
            let directory = host_directory(&hs);
            let config = MechanismConfig {
                defer_signatures: defer,
                ..MechanismConfig::default()
            };
            let log = EventLog::new();
            let route: Vec<HostId> = (0..4).map(|p| HostId::new(format!("h{p}"))).collect();
            let mut ctx = JourneyCtx::new(
                &mut hs,
                route,
                route_agent(4),
                &directory,
                &config,
                &log,
                77,
            );
            let verdict = EncapsulatedResults.run(&mut ctx);
            assert!(!verdict.detected, "defer={defer}");
            assert!(verdict.completed);
            assert!(ctx.queue.is_empty(), "the owner flush drains the queue");
        }
    }

    #[test]
    fn owner_verification_tolerates_a_non_empty_queue() {
        // The slot-to-verdict mapping must not assume the caller's queue
        // arrives empty: pre-seed it with an unrelated (failing) check
        // and verify both the clean and the tampered chain still judge
        // and attribute correctly.
        let run_with_seeded_queue = |attack: Option<(usize, Attack)>| {
            let mut hs = hosts(4, attack);
            let directory = host_directory(&hs);
            let config = MechanismConfig::default();
            let log = EventLog::new();
            let nonce = [7u8; 32];
            let agent = route_agent(4);
            let agent_id = agent.id.clone();
            let mut queue = VerificationQueue::new();
            // A failing unrelated check at index 0: a broken mapping
            // would read this verdict as slot 0's signature.
            let unrelated = hs[0].sign(42u64).tampered_with(|v| v + 1);
            queue.defer_signed(&unrelated);
            let journey = run_encapsulated_journey(
                &mut hs,
                "h0",
                agent,
                &nonce,
                &config.exec,
                &log,
                config.max_hops,
                &directory,
                true,
            )
            .unwrap();
            let final_state = journey.final_state.as_ref().expect("journey completed");
            owner_verify_encapsulations(
                &journey.chain,
                &encapsulation_anchor(&agent_id, &nonce),
                &HostId::new("h0"),
                &sha256(&to_wire(final_state)),
                &journey.path,
                &directory,
                &mut queue,
            )
        };
        assert!(
            run_with_seeded_queue(None).is_none(),
            "honest chain misjudged because of a pre-seeded queue"
        );
        // A final-host substitution reaches the owner check (no next
        // arrival): still detected and attributed with the offset.
        let fraud = run_with_seeded_queue(Some((3, Attack::ReplacePartialResult)))
            .expect("substitution detected");
        assert_eq!(fraud.culprit, HostId::new("h3"));
    }

    #[test]
    fn truncation_detected_by_both_mechanisms() {
        let attack = Attack::TruncateChainTail { drop: 1 };
        let mut hs = hosts(4, Some((2, attack.clone())));
        let v = ctx_verdict(&ChainedMac, &mut hs);
        assert!(v.detected, "chained missed truncation");
        assert!(v.accused.is_empty(), "chained detects without attribution");
        assert!(v.completed, "owner-side detection, journey completed");

        let mut hs = hosts(4, Some((2, attack)));
        let v = ctx_verdict(&EncapsulatedResults, &mut hs);
        assert!(v.detected, "encapsulated missed truncation");
        assert_eq!(v.accused, vec![HostId::new("h2")], "blames the attacker");
        assert!(!v.completed, "aborted at the next arrival");
    }

    #[test]
    fn swap_detected_by_both_mechanisms() {
        for mechanism in [
            &ChainedMac as &dyn ProtectionMechanism,
            &EncapsulatedResults,
        ] {
            let mut hs = hosts(4, Some((2, Attack::SwapChainEntries)));
            let v = ctx_verdict(mechanism, &mut hs);
            assert!(v.detected, "{} missed the swap", mechanism.name());
        }
    }

    #[test]
    fn replacement_detected_by_both_mechanisms() {
        for mechanism in [
            &ChainedMac as &dyn ProtectionMechanism,
            &EncapsulatedResults,
        ] {
            let mut hs = hosts(4, Some((2, Attack::ReplacePartialResult)));
            let v = ctx_verdict(mechanism, &mut hs);
            assert!(v.detected, "{} missed the substitution", mechanism.name());
        }
    }

    #[test]
    fn replacement_by_final_host_is_owner_attributed() {
        // No next arrival exists; the owner's batched check finds the
        // stale signature and attributes the first endorser of the
        // manipulated chain — the attacker.
        let mut hs = hosts(4, Some((3, Attack::ReplacePartialResult)));
        let v = ctx_verdict(&EncapsulatedResults, &mut hs);
        assert!(v.detected);
        assert_eq!(v.accused, vec![HostId::new("h3")]);
        assert!(v.completed, "owner-side detection after the halt");
    }

    #[test]
    fn colluding_predecessor_forgery_evades_both() {
        let attack = Attack::ForgeChainEntry {
            accomplice: HostId::new("h1"),
        };
        for mechanism in [
            &ChainedMac as &dyn ProtectionMechanism,
            &EncapsulatedResults,
        ] {
            let mut hs = hosts(4, Some((2, attack.clone())));
            let v = ctx_verdict(mechanism, &mut hs);
            assert!(
                !v.detected,
                "{} impossibly detected key-sharing collusion",
                mechanism.name()
            );
            assert!(v.completed);
        }
    }

    #[test]
    fn computation_lies_evade_the_family_but_not_reexecution() {
        // The structural contrast, asserted in both directions: the
        // chained family misses what re-execution catches.
        let lie = Attack::TamperVariable {
            name: "total".into(),
            value: Value::Int(-999),
        };
        for mechanism in [
            &ChainedMac as &dyn ProtectionMechanism,
            &EncapsulatedResults,
        ] {
            let mut hs = hosts(4, Some((2, lie.clone())));
            let v = ctx_verdict(mechanism, &mut hs);
            assert!(
                !v.detected,
                "{} cannot see computation lies without re-execution",
                mechanism.name()
            );
        }
        let mut hs = hosts(4, Some((2, lie)));
        let v = ctx_verdict(&crate::fleet::FrameworkReExecution, &mut hs);
        assert!(v.detected, "re-execution catches the same lie");
        assert_eq!(v.accused, vec![HostId::new("h2")]);
    }

    #[test]
    fn mac_chain_links_wire_round_trip() {
        use refstate_wire::from_wire;
        let link = ChainLink {
            seq: 3,
            executor: HostId::new("h3"),
            result_digest: sha256(b"r"),
            next: Some(HostId::new("h4")),
            mac: sha256(b"m"),
        };
        assert_eq!(from_wire::<ChainLink>(&to_wire(&link)).unwrap(), link);
        let payload = Encapsulation {
            seq: 0,
            executor: HostId::new("h0"),
            result_digest: sha256(b"r"),
            prev_head: sha256(b"a"),
            next: None,
        };
        assert_eq!(
            from_wire::<Encapsulation>(&to_wire(&payload)).unwrap(),
            payload
        );
    }

    #[test]
    fn verify_mac_chain_pins_each_break_kind() {
        let secret = ChainSecret::from_rng(&mut StdRng::seed_from_u64(9));
        let agent = AgentId::new("chain-test");
        let start = HostId::new("h0");
        let mut hs = hosts(3, None);
        let log = EventLog::new();
        let journey = run_mac_chained_journey(
            &mut hs,
            "h0",
            route_agent(3),
            &secret,
            &ExecConfig::default(),
            &log,
            10,
        )
        .unwrap();
        let final_digest = sha256(&to_wire(&journey.final_state));
        let ok = verify_mac_chain(&journey.links, &secret, &agent, &start, &final_digest);
        assert!(!ok.tampered());

        // Empty chain.
        let v = verify_mac_chain(&[], &secret, &agent, &start, &final_digest);
        assert_eq!(v.first_break, Some((0, ChainBreak::EmptyChain)));
        // Dropped head: the wrong host opens the chain.
        let v = verify_mac_chain(&journey.links[1..], &secret, &agent, &start, &final_digest);
        assert_eq!(v.first_break, Some((0, ChainBreak::WrongStart)));
        // Truncated tail: the last link dangles.
        let v = verify_mac_chain(&journey.links[..2], &secret, &agent, &start, &final_digest);
        assert_eq!(v.first_break, Some((1, ChainBreak::DanglingNextHop)));
        // Substituted result: MAC no longer covers the entry.
        let mut forged = journey.links.clone();
        forged[1].result_digest = sha256(b"oops");
        let v = verify_mac_chain(&forged, &secret, &agent, &start, &final_digest);
        assert_eq!(v.first_break, Some((1, ChainBreak::MacMismatch)));
        // Delivered state differs from the final recorded result.
        let v = verify_mac_chain(&journey.links, &secret, &agent, &start, &sha256(b"other"));
        assert_eq!(v.first_break, Some((2, ChainBreak::FinalStateMismatch)));
    }

    #[test]
    fn chain_secret_keys_are_per_host_and_debug_is_redacted() {
        let secret = ChainSecret::from_rng(&mut StdRng::seed_from_u64(1));
        assert_ne!(
            secret.host_key(&HostId::new("a")),
            secret.host_key(&HostId::new("b"))
        );
        assert_eq!(format!("{secret:?}"), "ChainSecret(..)");
    }
}
