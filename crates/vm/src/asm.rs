//! A small text assembler for agent programs.
//!
//! The dialect is one instruction per line, `;` or `#` comments, `name:`
//! labels, quoted string operands, and decimal integer literals:
//!
//! ```text
//! ; compare two offers and keep the cheaper one
//!     input "offer"
//!     store "best"
//! loop:
//!     input "offer"
//!     dup
//!     load "best"
//!     lt
//!     jz keep
//!     store "best"
//!     jump done
//! keep:
//!     pop
//! done:
//!     halt
//! ```

use std::error::Error;
use std::fmt;

use crate::instr::{Instr, SyscallKind};
use crate::program::Program;
use crate::value::Value;

/// An assembly error with its line number (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for AsmError {}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError {
        line,
        message: message.into(),
    }
}

/// Splits a line into the mnemonic and the raw operand text.
fn split_mnemonic(line: &str) -> (&str, &str) {
    match line.find(char::is_whitespace) {
        Some(i) => (&line[..i], line[i..].trim()),
        None => (line, ""),
    }
}

/// Strips a trailing comment that is not inside a string literal.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str => escaped = !escaped,
            '"' if !escaped => in_str = !in_str,
            ';' | '#' if !in_str => return &line[..i],
            _ => escaped = false,
        }
        if c != '\\' {
            escaped = false;
        }
    }
    line
}

/// Parses a quoted string literal with `\"`, `\\`, `\n`, `\t` escapes.
fn parse_string(line_no: usize, text: &str) -> Result<String, AsmError> {
    let inner = text
        .strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .ok_or_else(|| err(line_no, format!("expected quoted string, found {text:?}")))?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                other => {
                    return Err(err(line_no, format!("bad escape sequence \\{other:?}")));
                }
            }
        } else if c == '"' {
            return Err(err(line_no, "unescaped quote inside string"));
        } else {
            out.push(c);
        }
    }
    Ok(out)
}

/// Parses a `push` operand: integer, boolean, or string.
fn parse_value(line_no: usize, text: &str) -> Result<Value, AsmError> {
    if text.starts_with('"') {
        return Ok(Value::Str(parse_string(line_no, text)?));
    }
    match text {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    text.parse::<i64>()
        .map(Value::Int)
        .map_err(|_| err(line_no, format!("cannot parse operand {text:?}")))
}

enum Pending {
    Done(Instr),
    Jump(String),
    JumpIfFalse(String),
    JumpIfTrue(String),
    Call(String),
}

/// Assembles source text into a [`Program`].
///
/// # Errors
///
/// Returns [`AsmError`] with a line number for syntax problems, unknown
/// mnemonics, and undefined labels.
///
/// # Examples
///
/// ```
/// let p = refstate_vm::assemble("push 1\nstore \"x\"\nhalt")?;
/// assert_eq!(p.len(), 3);
/// # Ok::<(), refstate_vm::AsmError>(())
/// ```
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    let mut pendings: Vec<(usize, Pending)> = Vec::new();
    let mut labels: std::collections::BTreeMap<String, usize> = std::collections::BTreeMap::new();

    for (idx, raw_line) in source.lines().enumerate() {
        let line_no = idx + 1;
        let mut line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        // Labels: `name:` optionally followed by an instruction.
        while let Some(colon) = line.find(':') {
            let (label, rest) = line.split_at(colon);
            let label = label.trim();
            if label.is_empty()
                || !label
                    .chars()
                    .all(|c| c.is_alphanumeric() || c == '_' || c == '-')
            {
                break;
            }
            if labels.insert(label.to_owned(), pendings.len()).is_some() {
                return Err(err(line_no, format!("label {label:?} defined twice")));
            }
            line = rest[1..].trim();
            if line.is_empty() {
                break;
            }
        }
        if line.is_empty() {
            continue;
        }

        let (mnemonic, operand) = split_mnemonic(line);
        let need_no_operand = |instr: Instr| -> Result<Pending, AsmError> {
            if operand.is_empty() {
                Ok(Pending::Done(instr))
            } else {
                Err(err(line_no, format!("{mnemonic} takes no operand")))
            }
        };
        let need_str = || parse_string(line_no, operand);
        let need_label = || -> Result<String, AsmError> {
            if operand.is_empty() {
                Err(err(line_no, format!("{mnemonic} needs a label operand")))
            } else {
                Ok(operand.to_owned())
            }
        };

        let pending = match mnemonic {
            "push" => Pending::Done(Instr::Push(parse_value(line_no, operand)?)),
            "load" => Pending::Done(Instr::Load(need_str()?)),
            "store" => Pending::Done(Instr::Store(need_str()?)),
            "delete" => Pending::Done(Instr::Delete(need_str()?)),
            "pop" => need_no_operand(Instr::Pop)?,
            "dup" => need_no_operand(Instr::Dup)?,
            "swap" => need_no_operand(Instr::Swap)?,
            "add" => need_no_operand(Instr::Add)?,
            "sub" => need_no_operand(Instr::Sub)?,
            "mul" => need_no_operand(Instr::Mul)?,
            "div" => need_no_operand(Instr::Div)?,
            "mod" => need_no_operand(Instr::Mod)?,
            "neg" => need_no_operand(Instr::Neg)?,
            "eq" => need_no_operand(Instr::Eq)?,
            "ne" => need_no_operand(Instr::Ne)?,
            "lt" => need_no_operand(Instr::Lt)?,
            "le" => need_no_operand(Instr::Le)?,
            "gt" => need_no_operand(Instr::Gt)?,
            "ge" => need_no_operand(Instr::Ge)?,
            "and" => need_no_operand(Instr::And)?,
            "or" => need_no_operand(Instr::Or)?,
            "not" => need_no_operand(Instr::Not)?,
            "concat" => need_no_operand(Instr::Concat)?,
            "strlen" => need_no_operand(Instr::StrLen)?,
            "tostr" => need_no_operand(Instr::ToStr)?,
            "listnew" => need_no_operand(Instr::ListNew)?,
            "listpush" => need_no_operand(Instr::ListPush)?,
            "listget" => need_no_operand(Instr::ListGet)?,
            "listset" => need_no_operand(Instr::ListSet)?,
            "listlen" => need_no_operand(Instr::ListLen)?,
            "jump" | "jmp" => Pending::Jump(need_label()?),
            "jz" | "jif" => Pending::JumpIfFalse(need_label()?),
            "jnz" | "jit" => Pending::JumpIfTrue(need_label()?),
            "call" => Pending::Call(need_label()?),
            "ret" => need_no_operand(Instr::Ret)?,
            "nop" => need_no_operand(Instr::Nop)?,
            "input" => Pending::Done(Instr::Input(need_str()?)),
            "syscall" => match operand {
                "time" => Pending::Done(Instr::Syscall(SyscallKind::Time)),
                "random" => Pending::Done(Instr::Syscall(SyscallKind::Random)),
                other => return Err(err(line_no, format!("unknown syscall {other:?}"))),
            },
            "send" => Pending::Done(Instr::Send(need_str()?)),
            "recv" => Pending::Done(Instr::Recv(need_str()?)),
            "migrate" => need_no_operand(Instr::Migrate)?,
            "halt" => need_no_operand(Instr::Halt)?,
            other => return Err(err(line_no, format!("unknown instruction {other:?}"))),
        };
        pendings.push((line_no, pending));
    }

    let mut instrs = Vec::with_capacity(pendings.len());
    for (line_no, pending) in pendings {
        let resolve = |label: &str| -> Result<usize, AsmError> {
            labels
                .get(label)
                .copied()
                .ok_or_else(|| err(line_no, format!("undefined label {label:?}")))
        };
        instrs.push(match pending {
            Pending::Done(i) => i,
            Pending::Jump(l) => Instr::Jump(resolve(&l)?),
            Pending::JumpIfFalse(l) => Instr::JumpIfFalse(resolve(&l)?),
            Pending::JumpIfTrue(l) => Instr::JumpIfTrue(resolve(&l)?),
            Pending::Call(l) => Instr::Call(resolve(&l)?),
        });
    }
    // Labels may point one past the last instruction (e.g. `end:` at EOF);
    // map those to an appended halt so jumps stay valid.
    let needs_sentinel = labels.values().any(|&t| t == instrs.len());
    if needs_sentinel {
        instrs.push(Instr::Halt);
    }
    Program::new(instrs).map_err(|e| err(0, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_basic_program() {
        let p = assemble("push 1\npush 2\nadd\nstore \"x\"\nhalt").unwrap();
        assert_eq!(p.len(), 5);
        assert_eq!(p.get(0), Some(&Instr::Push(Value::Int(1))));
        assert_eq!(p.get(3), Some(&Instr::Store("x".into())));
    }

    #[test]
    fn comments_and_blank_lines() {
        let p = assemble(
            r#"
            ; leading comment
            push 1   ; trailing comment
            # hash comment

            halt
            "#,
        )
        .unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn comment_chars_inside_strings() {
        let p = assemble("push \"a;b#c\"\nhalt").unwrap();
        assert_eq!(p.get(0), Some(&Instr::Push(Value::Str("a;b#c".into()))));
    }

    #[test]
    fn labels_resolve_forward_and_backward() {
        let p = assemble(
            r#"
            start:
                push true
                jnz end
                jump start
            end:
                halt
            "#,
        )
        .unwrap();
        assert_eq!(p.get(1), Some(&Instr::JumpIfTrue(3)));
        assert_eq!(p.get(2), Some(&Instr::Jump(0)));
    }

    #[test]
    fn label_followed_by_instruction_on_same_line() {
        let p = assemble("start: push 1\njump start").unwrap();
        assert_eq!(p.get(1), Some(&Instr::Jump(0)));
    }

    #[test]
    fn trailing_label_gets_sentinel_halt() {
        let p = assemble("push true\njnz end\nnop\nend:").unwrap();
        assert_eq!(p.get(1), Some(&Instr::JumpIfTrue(3)));
        assert_eq!(p.get(3), Some(&Instr::Halt));
    }

    #[test]
    fn value_literals() {
        let p = assemble("push -42\npush true\npush false\npush \"s\"\nhalt").unwrap();
        assert_eq!(p.get(0), Some(&Instr::Push(Value::Int(-42))));
        assert_eq!(p.get(1), Some(&Instr::Push(Value::Bool(true))));
        assert_eq!(p.get(2), Some(&Instr::Push(Value::Bool(false))));
        assert_eq!(p.get(3), Some(&Instr::Push(Value::Str("s".into()))));
    }

    #[test]
    fn string_escapes() {
        let p = assemble(r#"push "a\"b\\c\nd\te""#.to_string().as_str()).unwrap();
        assert_eq!(
            p.get(0),
            Some(&Instr::Push(Value::Str("a\"b\\c\nd\te".into())))
        );
    }

    #[test]
    fn error_line_numbers() {
        let e = assemble("push 1\nbogus\nhalt").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("bogus"));
    }

    #[test]
    fn undefined_label_reported() {
        let e = assemble("jump nowhere").unwrap_err();
        assert!(e.message.contains("nowhere"));
    }

    #[test]
    fn duplicate_label_reported() {
        let e = assemble("x:\nnop\nx:\nhalt").unwrap_err();
        assert!(e.message.contains("defined twice"));
    }

    #[test]
    fn operand_errors() {
        assert!(assemble("add 5").is_err());
        assert!(assemble("push").is_err());
        assert!(assemble("load x").is_err()); // must be quoted
        assert!(assemble("syscall bogus").is_err());
        assert!(assemble("jump").is_err());
    }

    #[test]
    fn syscall_variants() {
        let p = assemble("syscall time\nsyscall random\nhalt").unwrap();
        assert_eq!(p.get(0), Some(&Instr::Syscall(SyscallKind::Time)));
        assert_eq!(p.get(1), Some(&Instr::Syscall(SyscallKind::Random)));
    }

    #[test]
    fn round_trip_through_display() {
        // Disassembly of simple ops re-assembles to the same program.
        let src = "push 1\ndup\nadd\nstore \"x\"\nhalt";
        let p1 = assemble(src).unwrap();
        let listing: String = p1
            .iter()
            .map(|i| i.to_string())
            .collect::<Vec<_>>()
            .join("\n");
        let p2 = assemble(&listing).unwrap();
        assert_eq!(p1, p2);
    }
}
