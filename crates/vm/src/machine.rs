//! Full machine snapshots, used by the proof-verification mechanism.

use refstate_wire::{Decode, Encode, Reader, WireError, Writer};

use crate::state::DataState;
use crate::value::Value;

/// The complete execution state of an interpreter at an instruction
/// boundary: program counter, operand stack, call stack, variables, and
/// step count.
///
/// The proof-verification baseline commits to the sequence of these
/// snapshots (one per executed step) in a Merkle tree; a verifier then asks
/// for a random step `i`, re-executes the single instruction from snapshot
/// `i`, and checks the result against snapshot `i + 1` — without replaying
/// the whole session.
///
/// Snapshots have a canonical wire encoding, so their hashes are
/// well-defined across hosts.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MachineState {
    /// Program counter.
    pub pc: u64,
    /// Operand stack, bottom first.
    pub stack: Vec<Value>,
    /// Call stack of return addresses, bottom first.
    pub call_stack: Vec<u64>,
    /// The agent's variables.
    pub state: DataState,
    /// Number of instructions executed so far this session.
    pub steps: u64,
    /// Number of input-class values consumed so far this session (needed
    /// to resume replay mid-session, e.g. for audited proof steps).
    pub inputs_consumed: u64,
}

impl MachineState {
    /// The machine state at the start of a session (weak migration:
    /// execution always restarts at instruction 0 with empty stacks).
    pub fn session_start(state: DataState) -> Self {
        MachineState {
            pc: 0,
            stack: Vec::new(),
            call_stack: Vec::new(),
            state,
            steps: 0,
            inputs_consumed: 0,
        }
    }
}

impl Encode for MachineState {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.pc);
        self.stack.encode(w);
        self.call_stack.encode(w);
        self.state.encode(w);
        w.put_u64(self.steps);
        w.put_u64(self.inputs_consumed);
    }
}

impl Decode for MachineState {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(MachineState {
            pc: r.take_u64()?,
            stack: Vec::<Value>::decode(r)?,
            call_stack: Vec::<u64>::decode(r)?,
            state: DataState::decode(r)?,
            steps: r.take_u64()?,
            inputs_consumed: r.take_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refstate_wire::{from_wire, to_wire};

    #[test]
    fn session_start_is_clean() {
        let mut s = DataState::new();
        s.set("x", Value::Int(1));
        let m = MachineState::session_start(s.clone());
        assert_eq!(m.pc, 0);
        assert!(m.stack.is_empty());
        assert!(m.call_stack.is_empty());
        assert_eq!(m.state, s);
        assert_eq!(m.steps, 0);
    }

    #[test]
    fn wire_round_trip() {
        let m = MachineState {
            pc: 7,
            stack: vec![Value::Int(1), Value::Str("s".into())],
            call_stack: vec![3, 9],
            state: [("v".to_string(), Value::Bool(true))].into_iter().collect(),
            steps: 42,
            inputs_consumed: 3,
        };
        assert_eq!(from_wire::<MachineState>(&to_wire(&m)).unwrap(), m);
    }

    #[test]
    fn encoding_distinguishes_pc() {
        let a = MachineState {
            pc: 1,
            ..Default::default()
        };
        let b = MachineState {
            pc: 2,
            ..Default::default()
        };
        assert_ne!(to_wire(&a), to_wire(&b));
    }
}
