//! A deterministic mobile-agent virtual machine.
//!
//! The paper's protection schemes (state appraisal, replication, traces,
//! proofs, and the reference-state framework itself) all assume an agent
//! runtime with three properties:
//!
//! 1. **Separable state** — the agent's variable part (its *data state*) can
//!    be extracted, hashed, signed, transported, and re-installed.
//! 2. **Deterministic re-execution** — given the recorded *input* of a
//!    session, any host can re-run the session and must reach the same
//!    resulting state (this is what makes a "reference state" computable).
//! 3. **Trace hooks** — the runtime can record which statement executed and
//!    which external values entered the agent (Vigna's traces, Fig. 3 of
//!    the paper).
//!
//! The original system used Java and the Mole platform; none of that is
//! available (or relevant) here, so this crate implements a small stack
//! bytecode VM with exactly those three properties:
//!
//! * [`Value`] / [`DataState`] — the agent's variable part,
//! * [`Program`] / [`Instr`] / [`ProgramBuilder`] / [`assemble`] — agent
//!   code, writable in Rust or in a tiny assembly dialect,
//! * [`SessionIo`] — the boundary through which *all* nondeterminism
//!   (inputs, system calls, messages) enters an execution session,
//! * [`Interpreter`] / [`run_session`] — execution with step limits,
//!   input logging, and optional tracing,
//! * [`ReplayIo`] — re-execution from a recorded [`InputLog`],
//! * [`MachineState`] — full machine snapshots for the proof-verification
//!   mechanism's single-step spot checks.
//!
//! # Examples
//!
//! A complete session: an agent that doubles an input price.
//!
//! ```
//! use refstate_vm::{assemble, run_session, DataState, ExecConfig, ScriptedIo, Value};
//!
//! let program = assemble(r#"
//!     input "price"
//!     push 2
//!     mul
//!     store "total"
//!     halt
//! "#)?;
//! let mut io = ScriptedIo::new();
//! io.push_input("price", Value::Int(21));
//! let outcome = run_session(&program, DataState::new(), &mut io, &ExecConfig::default())?;
//! assert_eq!(outcome.state.get("total"), Some(&Value::Int(42)));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod asm;
mod compiled;
mod error;
mod instr;
mod interp;
mod io;
mod log;
mod machine;
mod program;
mod state;
mod trace;
mod value;

pub use asm::{assemble, AsmError};
pub use compiled::{
    cached_program_images, run_compiled_session, warm_compile_cache, CompiledProgram,
    COMPILE_CACHE_CAP,
};
pub use error::VmError;
pub use instr::{Instr, SyscallKind};
pub use interp::{run_session, ExecConfig, Interpreter, SessionEnd, SessionOutcome};
pub use io::{NullIo, ReplayIo, ScriptedIo, SessionIo};
pub use log::{InputKind, InputLog, InputRecord, OutputRecord, SessionFingerprint};
pub use machine::MachineState;
pub use program::{Program, ProgramBuilder};
pub use state::DataState;
pub use trace::{Trace, TraceEntry, TraceMode};
pub use value::Value;
