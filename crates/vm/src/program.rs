//! Agent programs and the builder for constructing them in Rust.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, OnceLock};

use refstate_wire::{Decode, Encode, Reader, WireError, Writer};

use crate::compiled::CompiledProgram;
use crate::instr::Instr;
use crate::value::Value;

/// An immutable agent program: a validated instruction sequence.
///
/// Jump targets are validated at construction, so the interpreter can trust
/// them (it still range-checks defensively). The wire encoding of a program
/// is canonical, so code can be hashed and signed like any other part of the
/// agent.
///
/// # Examples
///
/// ```
/// use refstate_vm::{Instr, Program, Value};
///
/// let p = Program::new(vec![
///     Instr::Push(Value::Int(1)),
///     Instr::Store("x".into()),
///     Instr::Halt,
/// ])?;
/// assert_eq!(p.len(), 3);
/// # Ok::<(), refstate_vm::VmError>(())
/// ```
#[derive(Clone)]
pub struct Program {
    /// The validated instruction stream. `Arc`-shared: agent images are
    /// cloned per hop, per replica, and per mechanism, and none of those
    /// copies may re-copy the code.
    instrs: Arc<[Instr]>,
    /// The lazily compiled fast-path form, shared across clones (the
    /// PR-3 `DsaParams` accel idiom): an agent image cloned per hop,
    /// mechanism, or replica compiles once. Derived data — excluded from
    /// equality, debug, and the wire encoding.
    compiled: Arc<OnceLock<Arc<CompiledProgram>>>,
}

impl PartialEq for Program {
    fn eq(&self, other: &Self) -> bool {
        self.instrs == other.instrs
    }
}

impl Eq for Program {}

impl fmt::Debug for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Program")
            .field("instrs", &self.instrs)
            .finish_non_exhaustive()
    }
}

impl Program {
    /// Validates and wraps an instruction sequence.
    ///
    /// # Errors
    ///
    /// Returns [`crate::VmError::PcOutOfRange`] if any jump or call targets
    /// an index outside the program.
    pub fn new(instrs: Vec<Instr>) -> Result<Self, crate::VmError> {
        let len = instrs.len();
        for instr in &instrs {
            if let Instr::Jump(t) | Instr::JumpIfFalse(t) | Instr::JumpIfTrue(t) | Instr::Call(t) =
                instr
            {
                if *t >= len {
                    return Err(crate::VmError::PcOutOfRange { target: *t, len });
                }
            }
        }
        Ok(Program {
            instrs: instrs.into(),
            compiled: Arc::new(OnceLock::new()),
        })
    }

    /// The shared compiled form of this program, compiling on first use.
    ///
    /// Clones of a `Program` share the result through one cell, so the
    /// hot drivers (host execution, replay verification) pay the
    /// compilation — and the content-hash lookup behind it — once per
    /// program lineage, not once per session.
    pub fn compiled(&self) -> Arc<CompiledProgram> {
        self.compiled
            .get_or_init(|| crate::compiled::cached_by_content(self))
            .clone()
    }

    /// The instruction at `pc`.
    pub fn get(&self, pc: usize) -> Option<&Instr> {
        self.instrs.get(pc)
    }

    /// The number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Returns `true` for the empty program.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Iterates over the instructions.
    pub fn iter(&self) -> impl Iterator<Item = &Instr> {
        self.instrs.iter()
    }

    /// Renders a disassembly listing.
    pub fn disassemble(&self) -> String {
        let mut out = String::new();
        for (i, instr) in self.instrs.iter().enumerate() {
            out.push_str(&format!("{i:4}  {instr}\n"));
        }
        out
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.disassemble())
    }
}

impl Encode for Program {
    fn encode(&self, w: &mut Writer) {
        self.instrs.encode(w);
    }
}

impl Decode for Program {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let instrs = Vec::<Instr>::decode(r)?;
        Program::new(instrs).map_err(|_| WireError::InvalidValue {
            context: "Program jump target",
        })
    }
}

/// An incremental program builder with label support.
///
/// Use this when writing agents in Rust; use [`crate::assemble`] for the
/// text dialect. Forward references are allowed: labels may be used before
/// they are defined and are resolved by [`ProgramBuilder::build`].
///
/// # Examples
///
/// ```
/// use refstate_vm::{ProgramBuilder, Value};
///
/// // while x > 0 { x = x - 1 }
/// let mut b = ProgramBuilder::new();
/// b.push(Value::Int(3)).store("x");
/// b.label("loop");
/// b.load("x").push(Value::Int(0)).gt().jump_if_false("end");
/// b.load("x").push(Value::Int(1)).sub().store("x");
/// b.jump("loop");
/// b.label("end");
/// b.halt();
/// let program = b.build()?;
/// # Ok::<(), refstate_vm::VmError>(())
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    instrs: Vec<Instr>,
    labels: BTreeMap<String, usize>,
    /// (instruction index, label) pairs to patch at build time.
    fixups: Vec<(usize, String)>,
}

macro_rules! simple_ops {
    ($($(#[$doc:meta])* $method:ident => $instr:ident),* $(,)?) => {
        $(
            $(#[$doc])*
            pub fn $method(&mut self) -> &mut Self {
                self.instrs.push(Instr::$instr);
                self
            }
        )*
    };
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Defines `name` at the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already defined (a programming error in the
    /// agent under construction).
    pub fn label(&mut self, name: impl Into<String>) -> &mut Self {
        let name = name.into();
        let prev = self.labels.insert(name.clone(), self.instrs.len());
        assert!(prev.is_none(), "label {name:?} defined twice");
        self
    }

    /// Appends a raw instruction.
    pub fn raw(&mut self, instr: Instr) -> &mut Self {
        self.instrs.push(instr);
        self
    }

    /// Pushes a constant.
    pub fn push(&mut self, v: impl Into<Value>) -> &mut Self {
        self.instrs.push(Instr::Push(v.into()));
        self
    }

    /// Loads a variable.
    pub fn load(&mut self, name: impl Into<String>) -> &mut Self {
        self.instrs.push(Instr::Load(name.into()));
        self
    }

    /// Stores into a variable.
    pub fn store(&mut self, name: impl Into<String>) -> &mut Self {
        self.instrs.push(Instr::Store(name.into()));
        self
    }

    /// Deletes a variable.
    pub fn delete(&mut self, name: impl Into<String>) -> &mut Self {
        self.instrs.push(Instr::Delete(name.into()));
        self
    }

    /// Reads an external input with the given tag.
    pub fn input(&mut self, tag: impl Into<String>) -> &mut Self {
        self.instrs.push(Instr::Input(tag.into()));
        self
    }

    /// Calls a host service.
    pub fn syscall(&mut self, kind: crate::instr::SyscallKind) -> &mut Self {
        self.instrs.push(Instr::Syscall(kind));
        self
    }

    /// Sends the top of stack to a partner.
    pub fn send(&mut self, partner: impl Into<String>) -> &mut Self {
        self.instrs.push(Instr::Send(partner.into()));
        self
    }

    /// Receives a value from a partner.
    pub fn recv(&mut self, partner: impl Into<String>) -> &mut Self {
        self.instrs.push(Instr::Recv(partner.into()));
        self
    }

    /// Jumps to a label.
    pub fn jump(&mut self, label: impl Into<String>) -> &mut Self {
        self.fixups.push((self.instrs.len(), label.into()));
        self.instrs.push(Instr::Jump(0));
        self
    }

    /// Pops a bool and jumps to `label` when false.
    pub fn jump_if_false(&mut self, label: impl Into<String>) -> &mut Self {
        self.fixups.push((self.instrs.len(), label.into()));
        self.instrs.push(Instr::JumpIfFalse(0));
        self
    }

    /// Pops a bool and jumps to `label` when true.
    pub fn jump_if_true(&mut self, label: impl Into<String>) -> &mut Self {
        self.fixups.push((self.instrs.len(), label.into()));
        self.instrs.push(Instr::JumpIfTrue(0));
        self
    }

    /// Calls the subroutine at `label`.
    pub fn call(&mut self, label: impl Into<String>) -> &mut Self {
        self.fixups.push((self.instrs.len(), label.into()));
        self.instrs.push(Instr::Call(0));
        self
    }

    simple_ops! {
        /// Discards the top of stack.
        pop => Pop,
        /// Duplicates the top of stack.
        dup => Dup,
        /// Swaps the top two values.
        swap => Swap,
        /// Integer addition.
        add => Add,
        /// Integer subtraction.
        sub => Sub,
        /// Integer multiplication.
        mul => Mul,
        /// Integer division.
        div => Div,
        /// Integer remainder.
        modulo => Mod,
        /// Integer negation.
        neg => Neg,
        /// Equality.
        eq => Eq,
        /// Inequality.
        ne => Ne,
        /// Less-than.
        lt => Lt,
        /// Less-or-equal.
        le => Le,
        /// Greater-than.
        gt => Gt,
        /// Greater-or-equal.
        ge => Ge,
        /// Conjunction.
        and => And,
        /// Disjunction.
        or => Or,
        /// Negation.
        not => Not,
        /// String concatenation.
        concat => Concat,
        /// String length.
        strlen => StrLen,
        /// Convert to string.
        tostr => ToStr,
        /// Push an empty list.
        list_new => ListNew,
        /// Append to a list.
        list_push => ListPush,
        /// Index into a list.
        list_get => ListGet,
        /// Replace a list element.
        list_set => ListSet,
        /// List length.
        list_len => ListLen,
        /// Return from subroutine.
        ret => Ret,
        /// No operation.
        nop => Nop,
        /// Migrate to the host named by the top of stack.
        migrate => Migrate,
        /// End the agent's task.
        halt => Halt,
    }

    /// Resolves labels and produces the program.
    ///
    /// # Errors
    ///
    /// Returns [`crate::VmError::PcOutOfRange`] if a referenced label was
    /// never defined.
    pub fn build(&mut self) -> Result<Program, crate::VmError> {
        let mut instrs = std::mem::take(&mut self.instrs);
        for (at, label) in self.fixups.drain(..) {
            let target = *self
                .labels
                .get(&label)
                .ok_or(crate::VmError::PcOutOfRange {
                    target: usize::MAX,
                    len: instrs.len(),
                })?;
            match &mut instrs[at] {
                Instr::Jump(t) | Instr::JumpIfFalse(t) | Instr::JumpIfTrue(t) | Instr::Call(t) => {
                    *t = target
                }
                other => unreachable!("fixup pointed at non-jump {other}"),
            }
        }
        Program::new(instrs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refstate_wire::{from_wire, to_wire};

    #[test]
    fn validates_jump_targets() {
        assert!(Program::new(vec![Instr::Jump(1), Instr::Halt]).is_ok());
        assert!(Program::new(vec![Instr::Jump(2), Instr::Halt]).is_err());
        assert!(Program::new(vec![Instr::Call(5)]).is_err());
    }

    #[test]
    fn wire_round_trip() {
        let p = Program::new(vec![
            Instr::Push(Value::Int(1)),
            Instr::JumpIfTrue(0),
            Instr::Halt,
        ])
        .unwrap();
        assert_eq!(from_wire::<Program>(&to_wire(&p)).unwrap(), p);
    }

    #[test]
    fn wire_rejects_invalid_targets() {
        // Encode, then check a program whose jump exceeds its length fails
        // to decode: craft manually.
        let bad = vec![Instr::Jump(7)];
        let bytes = to_wire(&bad); // Vec<Instr> encodes fine
        assert!(from_wire::<Program>(&bytes).is_err());
    }

    #[test]
    fn builder_resolves_forward_and_backward_labels() {
        let mut b = ProgramBuilder::new();
        b.push(Value::Bool(true));
        b.jump_if_true("end"); // forward reference
        b.label("loop");
        b.jump("loop"); // backward reference
        b.label("end");
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.get(1), Some(&Instr::JumpIfTrue(3)));
        assert_eq!(p.get(2), Some(&Instr::Jump(2)));
    }

    #[test]
    fn builder_missing_label_errors() {
        let mut b = ProgramBuilder::new();
        b.jump("nowhere");
        assert!(b.build().is_err());
    }

    #[test]
    #[should_panic(expected = "defined twice")]
    fn builder_duplicate_label_panics() {
        let mut b = ProgramBuilder::new();
        b.label("x").label("x");
    }

    #[test]
    fn disassembly_lists_every_instruction() {
        let p = Program::new(vec![Instr::Nop, Instr::Halt]).unwrap();
        let text = p.disassemble();
        assert!(text.contains("0  nop"));
        assert!(text.contains("1  halt"));
        assert_eq!(p.to_string(), text);
    }

    #[test]
    fn iter_and_len() {
        let p = Program::new(vec![Instr::Nop, Instr::Halt]).unwrap();
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert_eq!(p.iter().count(), 2);
        assert!(p.get(5).is_none());
    }
}
