//! The interpreter: executes one session of an agent on a host.

use crate::error::VmError;
use crate::instr::Instr;
use crate::io::SessionIo;
use crate::log::{InputKind, InputLog, InputRecord, OutputRecord};
use crate::machine::MachineState;
use crate::program::Program;
use crate::state::DataState;
use crate::trace::{Trace, TraceEntry, TraceMode};
use crate::value::Value;
use refstate_wire::{Decode, Encode, Reader, WireError, Writer};

/// Execution configuration for one session.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Maximum instructions before the session is aborted (runaway guard).
    pub step_limit: u64,
    /// What to record in the execution trace.
    pub trace_mode: TraceMode,
    /// A label naming the session being (re-)executed, carried into
    /// [`VmError::StepLimitExceeded`] so runaway replays are attributable
    /// in fleet logs. Replay drivers set it to the session's
    /// [`crate::SessionFingerprint::label`]; live sessions usually leave
    /// it `None`.
    pub session_label: Option<String>,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            step_limit: 10_000_000,
            trace_mode: TraceMode::Off,
            session_label: None,
        }
    }
}

impl ExecConfig {
    /// A config with full Vigna-style tracing enabled.
    pub fn traced() -> Self {
        ExecConfig {
            trace_mode: TraceMode::Full,
            ..Self::default()
        }
    }
}

/// How an execution session ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionEnd {
    /// The agent asked to migrate to the named host.
    Migrate(String),
    /// The agent finished its task.
    Halt,
}

impl Encode for SessionEnd {
    fn encode(&self, w: &mut Writer) {
        match self {
            SessionEnd::Migrate(host) => {
                w.put_u8(0);
                w.put_str(host);
            }
            SessionEnd::Halt => w.put_u8(1),
        }
    }
}

impl Decode for SessionEnd {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.take_u8()? {
            0 => Ok(SessionEnd::Migrate(r.take_str()?.to_owned())),
            1 => Ok(SessionEnd::Halt),
            tag => Err(WireError::InvalidTag {
                context: "SessionEnd",
                tag,
            }),
        }
    }
}

/// Everything one execution session produced.
#[derive(Debug, Clone)]
pub struct SessionOutcome {
    /// How the session ended.
    pub end: SessionEnd,
    /// The resulting data state (the paper's "resulting agent state").
    pub state: DataState,
    /// All input consumed, in order — the session's reference input.
    pub input_log: InputLog,
    /// Messages the agent sent.
    pub outputs: Vec<OutputRecord>,
    /// The execution trace, as configured.
    pub trace: Trace,
    /// Instructions executed.
    pub steps: u64,
}

/// Runs one complete execution session.
///
/// This is the host-side entry point: take the agent's initial state, run
/// its program from the entry point (weak migration), and return the
/// resulting state plus the recorded reference data.
///
/// # Errors
///
/// Propagates any [`VmError`] the program raises; see the error type for
/// the full catalogue.
///
/// # Examples
///
/// ```
/// use refstate_vm::*;
///
/// let program = assemble(r#"
///     push 1
///     push 2
///     add
///     store "sum"
///     halt
/// "#)?;
/// let out = run_session(&program, DataState::new(), &mut NullIo, &ExecConfig::default())?;
/// assert_eq!(out.state.get_int("sum"), Some(3));
/// assert_eq!(out.end, SessionEnd::Halt);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn run_session(
    program: &Program,
    initial_state: DataState,
    io: &mut dyn SessionIo,
    config: &ExecConfig,
) -> Result<SessionOutcome, VmError> {
    let mut interp = Interpreter::new(program, initial_state, config.clone());
    let end = interp.run(io)?;
    Ok(interp.into_outcome(end))
}

/// A single-stepping interpreter over an agent program.
///
/// Most callers use [`run_session`]; the step-level API exists for the
/// proof mechanism (per-step snapshots) and for tests that need to observe
/// intermediate machine states.
#[derive(Debug)]
pub struct Interpreter<'p> {
    program: &'p Program,
    pc: usize,
    stack: Vec<Value>,
    call_stack: Vec<usize>,
    state: DataState,
    steps: u64,
    config: ExecConfig,
    input_log: InputLog,
    inputs_consumed: u64,
    outputs: Vec<OutputRecord>,
    trace: Trace,
}

impl<'p> Interpreter<'p> {
    /// Creates an interpreter at the session entry point (pc 0).
    pub fn new(program: &'p Program, initial_state: DataState, config: ExecConfig) -> Self {
        let trace = Trace::new(config.trace_mode);
        Interpreter {
            program,
            pc: 0,
            stack: Vec::new(),
            call_stack: Vec::new(),
            state: initial_state,
            steps: 0,
            config,
            input_log: InputLog::new(),
            inputs_consumed: 0,
            outputs: Vec::new(),
            trace,
        }
    }

    /// Resumes an interpreter from a captured [`MachineState`].
    pub fn resume(program: &'p Program, machine: MachineState, config: ExecConfig) -> Self {
        let trace = Trace::new(config.trace_mode);
        Interpreter {
            program,
            pc: machine.pc as usize,
            stack: machine.stack,
            call_stack: machine.call_stack.into_iter().map(|v| v as usize).collect(),
            state: machine.state,
            steps: machine.steps,
            config,
            input_log: InputLog::new(),
            inputs_consumed: machine.inputs_consumed,
            outputs: Vec::new(),
            trace,
        }
    }

    /// Captures the full machine state at the current instruction boundary.
    pub fn capture(&self) -> MachineState {
        MachineState {
            pc: self.pc as u64,
            stack: self.stack.clone(),
            call_stack: self.call_stack.iter().map(|&v| v as u64).collect(),
            state: self.state.clone(),
            steps: self.steps,
            inputs_consumed: self.inputs_consumed,
        }
    }

    /// The current data state.
    pub fn state(&self) -> &DataState {
        &self.state
    }

    /// Instructions executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Runs until the session ends.
    ///
    /// # Errors
    ///
    /// Propagates the first [`VmError`].
    pub fn run(&mut self, io: &mut dyn SessionIo) -> Result<SessionEnd, VmError> {
        loop {
            if let Some(end) = self.step(io)? {
                return Ok(end);
            }
        }
    }

    /// Consumes the interpreter, producing the session outcome.
    pub fn into_outcome(self, end: SessionEnd) -> SessionOutcome {
        SessionOutcome {
            end,
            state: self.state,
            input_log: self.input_log,
            outputs: self.outputs,
            trace: self.trace,
            steps: self.steps,
        }
    }

    fn pop(&mut self) -> Result<Value, VmError> {
        self.stack
            .pop()
            .ok_or(VmError::StackUnderflow { pc: self.pc })
    }

    fn pop_int(&mut self) -> Result<i64, VmError> {
        let v = self.pop()?;
        v.as_int().ok_or_else(|| VmError::TypeMismatch {
            pc: self.pc,
            expected: "int",
            found: v.type_name(),
        })
    }

    fn pop_bool(&mut self) -> Result<bool, VmError> {
        let v = self.pop()?;
        v.as_bool().ok_or_else(|| VmError::TypeMismatch {
            pc: self.pc,
            expected: "bool",
            found: v.type_name(),
        })
    }

    fn pop_str(&mut self) -> Result<String, VmError> {
        let v = self.pop()?;
        match v {
            Value::Str(s) => Ok(s),
            other => Err(VmError::TypeMismatch {
                pc: self.pc,
                expected: "str",
                found: other.type_name(),
            }),
        }
    }

    fn pop_list(&mut self) -> Result<Vec<Value>, VmError> {
        let v = self.pop()?;
        match v {
            Value::List(l) => Ok(l),
            other => Err(VmError::TypeMismatch {
                pc: self.pc,
                expected: "list",
                found: other.type_name(),
            }),
        }
    }

    fn bin_int(&mut self, f: impl FnOnce(i64, i64) -> i64) -> Result<(), VmError> {
        let b = self.pop_int()?;
        let a = self.pop_int()?;
        self.stack.push(Value::Int(f(a, b)));
        Ok(())
    }

    fn compare_ord(&mut self, f: impl FnOnce(std::cmp::Ordering) -> bool) -> Result<(), VmError> {
        let b = self.pop()?;
        let a = self.pop()?;
        let ord = match (&a, &b) {
            (Value::Int(x), Value::Int(y)) => x.cmp(y),
            (Value::Str(x), Value::Str(y)) => x.cmp(y),
            _ => {
                return Err(VmError::TypeMismatch {
                    pc: self.pc,
                    expected: "two ints or two strings",
                    found: b.type_name(),
                })
            }
        };
        self.stack.push(Value::Bool(f(ord)));
        Ok(())
    }

    fn record_input(&mut self, kind: InputKind, value: &Value) {
        self.inputs_consumed += 1;
        let pc = self.pc as u64;
        self.input_log.record(InputRecord {
            pc,
            kind: kind.clone(),
            value: value.clone(),
        });
        if !matches!(self.trace.mode(), TraceMode::Off) {
            let slot = kind.to_string();
            self.trace.push(TraceEntry::InputWrite {
                pc,
                slot,
                value: value.clone(),
            });
        }
    }

    fn jump_to(&mut self, target: usize) -> Result<(), VmError> {
        if target > self.program.len() {
            return Err(VmError::PcOutOfRange {
                target,
                len: self.program.len(),
            });
        }
        self.pc = target;
        Ok(())
    }

    /// Executes one instruction.
    ///
    /// Returns `Ok(Some(end))` when the session ends, `Ok(None)` to
    /// continue.
    ///
    /// # Errors
    ///
    /// Any [`VmError`]; the interpreter must not be stepped further after
    /// an error.
    pub fn step(&mut self, io: &mut dyn SessionIo) -> Result<Option<SessionEnd>, VmError> {
        if self.steps >= self.config.step_limit {
            return Err(VmError::StepLimitExceeded {
                limit: self.config.step_limit,
                session: self.config.session_label.clone(),
            });
        }
        let instr = self
            .program
            .get(self.pc)
            .ok_or(VmError::FellOffEnd)?
            .clone();
        self.steps += 1;
        if matches!(self.trace.mode(), TraceMode::Full) {
            self.trace.push(TraceEntry::Stmt { pc: self.pc as u64 });
        }
        let mut next_pc = self.pc + 1;
        match instr {
            Instr::Push(v) => self.stack.push(v),
            Instr::Load(name) => {
                let v = self
                    .state
                    .get(&name)
                    .cloned()
                    .ok_or_else(|| VmError::UnknownVariable {
                        pc: self.pc,
                        name: name.clone(),
                    })?;
                self.stack.push(v);
            }
            Instr::Store(name) => {
                let v = self.pop()?;
                self.state.set(name, v);
            }
            Instr::Delete(name) => {
                self.state.remove(&name);
            }
            Instr::Pop => {
                self.pop()?;
            }
            Instr::Dup => {
                let v = self.pop()?;
                self.stack.push(v.clone());
                self.stack.push(v);
            }
            Instr::Swap => {
                let b = self.pop()?;
                let a = self.pop()?;
                self.stack.push(b);
                self.stack.push(a);
            }
            Instr::Add => self.bin_int(i64::wrapping_add)?,
            Instr::Sub => self.bin_int(i64::wrapping_sub)?,
            Instr::Mul => self.bin_int(i64::wrapping_mul)?,
            Instr::Div => {
                let b = self.pop_int()?;
                let a = self.pop_int()?;
                if b == 0 {
                    return Err(VmError::DivisionByZero { pc: self.pc });
                }
                self.stack.push(Value::Int(a.wrapping_div(b)));
            }
            Instr::Mod => {
                let b = self.pop_int()?;
                let a = self.pop_int()?;
                if b == 0 {
                    return Err(VmError::DivisionByZero { pc: self.pc });
                }
                self.stack.push(Value::Int(a.wrapping_rem(b)));
            }
            Instr::Neg => {
                let a = self.pop_int()?;
                self.stack.push(Value::Int(a.wrapping_neg()));
            }
            Instr::Eq => {
                let b = self.pop()?;
                let a = self.pop()?;
                self.stack.push(Value::Bool(a == b));
            }
            Instr::Ne => {
                let b = self.pop()?;
                let a = self.pop()?;
                self.stack.push(Value::Bool(a != b));
            }
            Instr::Lt => self.compare_ord(std::cmp::Ordering::is_lt)?,
            Instr::Le => self.compare_ord(std::cmp::Ordering::is_le)?,
            Instr::Gt => self.compare_ord(std::cmp::Ordering::is_gt)?,
            Instr::Ge => self.compare_ord(std::cmp::Ordering::is_ge)?,
            Instr::And => {
                let b = self.pop_bool()?;
                let a = self.pop_bool()?;
                self.stack.push(Value::Bool(a && b));
            }
            Instr::Or => {
                let b = self.pop_bool()?;
                let a = self.pop_bool()?;
                self.stack.push(Value::Bool(a || b));
            }
            Instr::Not => {
                let a = self.pop_bool()?;
                self.stack.push(Value::Bool(!a));
            }
            Instr::Concat => {
                let b = self.pop_str()?;
                let a = self.pop_str()?;
                self.stack.push(Value::Str(a + &b));
            }
            Instr::StrLen => {
                let s = self.pop_str()?;
                self.stack.push(Value::Int(s.chars().count() as i64));
            }
            Instr::ToStr => {
                let v = self.pop()?;
                let rendered = match v {
                    Value::Str(s) => s,
                    other => other.to_string(),
                };
                self.stack.push(Value::Str(rendered));
            }
            Instr::ListNew => self.stack.push(Value::List(Vec::new())),
            Instr::ListPush => {
                let v = self.pop()?;
                let mut list = self.pop_list()?;
                list.push(v);
                self.stack.push(Value::List(list));
            }
            Instr::ListGet => {
                let idx = self.pop_int()?;
                let list = self.pop_list()?;
                let item = usize::try_from(idx)
                    .ok()
                    .and_then(|i| list.get(i))
                    .cloned()
                    .ok_or(VmError::IndexOutOfBounds {
                        pc: self.pc,
                        index: idx,
                        len: list.len(),
                    })?;
                self.stack.push(item);
            }
            Instr::ListSet => {
                let v = self.pop()?;
                let idx = self.pop_int()?;
                let mut list = self.pop_list()?;
                let slot = usize::try_from(idx)
                    .ok()
                    .filter(|&i| i < list.len())
                    .ok_or(VmError::IndexOutOfBounds {
                        pc: self.pc,
                        index: idx,
                        len: list.len(),
                    })?;
                list[slot] = v;
                self.stack.push(Value::List(list));
            }
            Instr::ListLen => {
                let list = self.pop_list()?;
                self.stack.push(Value::Int(list.len() as i64));
            }
            Instr::Jump(t) => next_pc = t,
            Instr::JumpIfFalse(t) => {
                if !self.pop_bool()? {
                    next_pc = t;
                }
            }
            Instr::JumpIfTrue(t) => {
                if self.pop_bool()? {
                    next_pc = t;
                }
            }
            Instr::Call(t) => {
                self.call_stack.push(next_pc);
                next_pc = t;
            }
            Instr::Ret => {
                next_pc = self
                    .call_stack
                    .pop()
                    .ok_or(VmError::CallStackUnderflow { pc: self.pc })?;
            }
            Instr::Nop => {}
            Instr::Input(tag) => {
                let v = io.input(self.pc, &tag)?;
                self.record_input(InputKind::Tagged(tag), &v);
                self.stack.push(v);
            }
            Instr::Syscall(kind) => {
                let v = io.syscall(self.pc, kind)?;
                self.record_input(InputKind::Syscall(kind), &v);
                self.stack.push(v);
            }
            Instr::Recv(partner) => {
                let v = io.recv(self.pc, &partner)?;
                self.record_input(InputKind::Message(partner), &v);
                self.stack.push(v);
            }
            Instr::Send(partner) => {
                let v = self.pop()?;
                self.outputs.push(OutputRecord {
                    pc: self.pc as u64,
                    partner: partner.clone(),
                    value: v.clone(),
                });
                io.send(self.pc, &partner, v)?;
            }
            Instr::Migrate => {
                let host = self.pop_str()?;
                self.pc += 1;
                return Ok(Some(SessionEnd::Migrate(host)));
            }
            Instr::Halt => {
                self.pc += 1;
                return Ok(Some(SessionEnd::Halt));
            }
        }
        self.jump_to(next_pc)?;
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::io::{NullIo, ReplayIo, ScriptedIo};

    fn run(src: &str, io: &mut dyn SessionIo) -> Result<SessionOutcome, VmError> {
        let program = assemble(src).expect("assembly");
        run_session(&program, DataState::new(), io, &ExecConfig::default())
    }

    #[test]
    fn arithmetic() {
        let out = run(
            r#"
            push 10
            push 3
            sub        ; 7
            push 6
            mul        ; 42
            push 5
            div        ; 8
            push 3
            mod        ; 2
            neg        ; -2
            store "r"
            halt
        "#,
            &mut NullIo,
        )
        .unwrap();
        assert_eq!(out.state.get_int("r"), Some(-2));
    }

    #[test]
    fn division_by_zero() {
        let err = run("push 1\npush 0\ndiv\nhalt", &mut NullIo).unwrap_err();
        assert!(matches!(err, VmError::DivisionByZero { .. }));
        let err = run("push 1\npush 0\nmod\nhalt", &mut NullIo).unwrap_err();
        assert!(matches!(err, VmError::DivisionByZero { .. }));
    }

    #[test]
    fn comparisons_and_logic() {
        let out = run(
            r#"
            push 3
            push 5
            lt            ; true
            push "a"
            push "b"
            le            ; true
            and
            not           ; false
            push true
            or            ; true
            store "ok"
            halt
        "#,
            &mut NullIo,
        )
        .unwrap();
        assert_eq!(out.state.get("ok"), Some(&Value::Bool(true)));
    }

    #[test]
    fn type_errors_are_reported() {
        let err = run("push true\npush 1\nadd\nhalt", &mut NullIo).unwrap_err();
        assert!(matches!(
            err,
            VmError::TypeMismatch {
                expected: "int",
                ..
            }
        ));
        let err = run("push 1\npush true\nlt\nhalt", &mut NullIo).unwrap_err();
        assert!(matches!(err, VmError::TypeMismatch { .. }));
    }

    #[test]
    fn strings() {
        let out = run(
            r#"
            push "foo"
            push "bar"
            concat
            dup
            strlen
            store "n"
            store "s"
            push 42
            tostr
            store "t"
            halt
        "#,
            &mut NullIo,
        )
        .unwrap();
        assert_eq!(out.state.get_str("s"), Some("foobar"));
        assert_eq!(out.state.get_int("n"), Some(6));
        assert_eq!(out.state.get_str("t"), Some("42"));
    }

    #[test]
    fn lists() {
        let out = run(
            r#"
            listnew
            push 10
            listpush
            push 20
            listpush      ; [10, 20]
            dup
            push 0
            push 99
            listset       ; [99, 20]
            dup
            push 1
            listget       ; 20
            store "second"
            dup
            listlen
            store "len"
            store "list"
            halt
        "#,
            &mut NullIo,
        )
        .unwrap();
        assert_eq!(out.state.get_int("second"), Some(20));
        assert_eq!(out.state.get_int("len"), Some(2));
        assert_eq!(
            out.state.get("list"),
            Some(&Value::List(vec![Value::Int(99), Value::Int(20)]))
        );
    }

    #[test]
    fn list_bounds_checked() {
        let err = run("listnew\npush 0\nlistget\nhalt", &mut NullIo).unwrap_err();
        assert!(matches!(err, VmError::IndexOutOfBounds { .. }));
        let err = run("listnew\npush -1\npush 1\nlistset\nhalt", &mut NullIo).unwrap_err();
        assert!(matches!(err, VmError::IndexOutOfBounds { .. }));
    }

    #[test]
    fn control_flow_loop() {
        // sum = 0; for i in 1..=5 { sum += i }
        let out = run(
            r#"
            push 0
            store "sum"
            push 1
            store "i"
        loop:
            load "i"
            push 5
            gt
            jnz end
            load "sum"
            load "i"
            add
            store "sum"
            load "i"
            push 1
            add
            store "i"
            jump loop
        end:
            halt
        "#,
            &mut NullIo,
        )
        .unwrap();
        assert_eq!(out.state.get_int("sum"), Some(15));
    }

    #[test]
    fn subroutines() {
        let out = run(
            r#"
            push 7
            call double
            store "r"
            halt
        double:
            push 2
            mul
            ret
        "#,
            &mut NullIo,
        )
        .unwrap();
        assert_eq!(out.state.get_int("r"), Some(14));
    }

    #[test]
    fn ret_without_call_errors() {
        let err = run("ret", &mut NullIo).unwrap_err();
        assert!(matches!(err, VmError::CallStackUnderflow { .. }));
    }

    #[test]
    fn stack_underflow() {
        let err = run("pop", &mut NullIo).unwrap_err();
        assert!(matches!(err, VmError::StackUnderflow { pc: 0 }));
    }

    #[test]
    fn unknown_variable() {
        let err = run("load \"ghost\"\nhalt", &mut NullIo).unwrap_err();
        assert!(matches!(err, VmError::UnknownVariable { .. }));
    }

    #[test]
    fn step_limit() {
        let program = assemble("loop:\njump loop").unwrap();
        let config = ExecConfig {
            step_limit: 100,
            ..Default::default()
        };
        let err = run_session(&program, DataState::new(), &mut NullIo, &config).unwrap_err();
        assert_eq!(
            err,
            VmError::StepLimitExceeded {
                limit: 100,
                session: None
            }
        );
    }

    #[test]
    fn fell_off_end() {
        let err = run("push 1\npop", &mut NullIo).unwrap_err();
        assert_eq!(err, VmError::FellOffEnd);
    }

    #[test]
    fn migration_ends_session() {
        let out = run("push \"host-b\"\nmigrate", &mut NullIo).unwrap();
        assert_eq!(out.end, SessionEnd::Migrate("host-b".into()));
    }

    #[test]
    fn inputs_are_logged_and_traced() {
        let program = assemble(
            r#"
            input "price"
            store "p"
            syscall random
            store "r"
            recv "shop"
            store "m"
            halt
        "#,
        )
        .unwrap();
        let mut io = ScriptedIo::new();
        io.push_input("price", Value::Int(10));
        io.push_message("shop", Value::Str("hi".into()));
        let out = run_session(&program, DataState::new(), &mut io, &ExecConfig::traced()).unwrap();
        assert_eq!(out.input_log.len(), 3);
        let kinds: Vec<String> = out
            .input_log
            .records()
            .iter()
            .map(|r| r.kind.to_string())
            .collect();
        assert_eq!(kinds, vec!["input:price", "syscall:random", "recv:shop"]);
        // Full trace includes both Stmt and InputWrite entries.
        let input_writes = out
            .trace
            .entries()
            .iter()
            .filter(|e| matches!(e, TraceEntry::InputWrite { .. }))
            .count();
        assert_eq!(input_writes, 3);
        assert!(out.trace.len() > 3);
    }

    #[test]
    fn sends_are_recorded_as_outputs() {
        let program = assemble("push 100\nsend \"bank\"\nhalt").unwrap();
        let mut io = ScriptedIo::new();
        let out = run_session(&program, DataState::new(), &mut io, &ExecConfig::default()).unwrap();
        assert_eq!(out.outputs.len(), 1);
        assert_eq!(out.outputs[0].partner, "bank");
        assert_eq!(io.sent().len(), 1);
    }

    #[test]
    fn replay_reproduces_state() {
        let program = assemble(
            r#"
            input "a"
            input "a"
            add
            syscall time
            add
            store "total"
            halt
        "#,
        )
        .unwrap();
        let mut live = ScriptedIo::new();
        live.push_input("a", Value::Int(5))
            .push_input("a", Value::Int(6));
        let original = run_session(
            &program,
            DataState::new(),
            &mut live,
            &ExecConfig::default(),
        )
        .unwrap();

        let mut replay = ReplayIo::new(&original.input_log);
        let rerun = run_session(
            &program,
            DataState::new(),
            &mut replay,
            &ExecConfig::default(),
        )
        .unwrap();
        assert_eq!(rerun.state, original.state);
        assert!(replay.fully_consumed());
    }

    #[test]
    fn weak_migration_preserves_state_across_sessions() {
        let program = assemble(
            r#"
            load "visits"
            push 1
            add
            store "visits"
            load "visits"
            push 3
            ge
            jnz done
            push "next-host"
            migrate
        done:
            halt
        "#,
        )
        .unwrap();
        let mut state: DataState = [("visits".to_string(), Value::Int(0))]
            .into_iter()
            .collect();
        let mut hops = 0;
        loop {
            let out = run_session(&program, state, &mut NullIo, &ExecConfig::default()).unwrap();
            state = out.state;
            match out.end {
                SessionEnd::Migrate(_) => hops += 1,
                SessionEnd::Halt => break,
            }
        }
        assert_eq!(hops, 2);
        assert_eq!(state.get_int("visits"), Some(3));
    }

    #[test]
    fn capture_resume_round_trip() {
        let program = assemble("push 1\npush 2\nadd\nstore \"x\"\nhalt").unwrap();
        let mut a = Interpreter::new(&program, DataState::new(), ExecConfig::default());
        a.step(&mut NullIo).unwrap();
        a.step(&mut NullIo).unwrap();
        let snapshot = a.capture();
        assert_eq!(snapshot.steps, 2);
        assert_eq!(snapshot.stack.len(), 2);

        let mut b = Interpreter::resume(&program, snapshot, ExecConfig::default());
        let end = b.run(&mut NullIo).unwrap();
        assert_eq!(end, SessionEnd::Halt);
        assert_eq!(b.state().get_int("x"), Some(3));

        // The original finishes identically.
        let end_a = a.run(&mut NullIo).unwrap();
        assert_eq!(end_a, SessionEnd::Halt);
        assert_eq!(a.state().get_int("x"), Some(3));
    }

    #[test]
    fn dup_swap() {
        let out = run(
            "push 1\npush 2\nswap\nstore \"a\"\nstore \"b\"\npush 9\ndup\nadd\nstore \"c\"\nhalt",
            &mut NullIo,
        )
        .unwrap();
        assert_eq!(out.state.get_int("a"), Some(1));
        assert_eq!(out.state.get_int("b"), Some(2));
        assert_eq!(out.state.get_int("c"), Some(18));
    }

    #[test]
    fn delete_removes_variable() {
        let out = run("push 1\nstore \"x\"\ndelete \"x\"\nhalt", &mut NullIo).unwrap();
        assert!(!out.state.contains("x"));
    }

    #[test]
    fn steps_counted() {
        let out = run("nop\nnop\nhalt", &mut NullIo).unwrap();
        assert_eq!(out.steps, 3);
    }

    #[test]
    fn session_end_wire_round_trip() {
        use refstate_wire::{from_wire, to_wire};
        for end in [SessionEnd::Halt, SessionEnd::Migrate("host-b".into())] {
            assert_eq!(from_wire::<SessionEnd>(&to_wire(&end)).unwrap(), end);
        }
        assert!(from_wire::<SessionEnd>(&[9]).is_err());
    }
}
