//! Pre-decoded programs and the flat dispatch loop: the fast execution
//! path behind every re-execution-based check.
//!
//! The step-level [`crate::Interpreter`] clones one [`Instr`] per executed
//! instruction — for the name-carrying instructions (`load`, `store`,
//! `input`, …) that is one `String` allocation per step, paid again by
//! every re-execution of every session. A [`CompiledProgram`] decodes the
//! instruction stream once: variable, tag, and partner names are interned
//! as reference-counted `Arc<str>` (duplicate names share one allocation),
//! jump targets stay pre-resolved, and [`run_compiled_session`] executes a
//! flat loop that borrows each instruction instead of cloning it.
//!
//! Compilation itself is cheap but not free, so hot drivers share compiled
//! programs through [`CompiledProgram::cached`], a process-wide table
//! keyed by the program's [`code hash`](CompiledProgram::code_hash): a
//! fleet re-running the same agent program across hops, replicas, and
//! mechanisms compiles it once.
//!
//! The original [`crate::run_session`] loop is kept unchanged as the
//! pinned reference oracle (the same idiom the crypto layer uses for its
//! schoolbook `verify`); `compiled == interpreted` equivalence is pinned
//! by tests here and by the `vm` property suite.

use std::collections::{BTreeSet, HashMap};
use std::sync::{Arc, Mutex, OnceLock};

use refstate_telemetry as telemetry;
use refstate_wire::to_wire;

use crate::error::VmError;
use crate::instr::{Instr, SyscallKind};
use crate::interp::{ExecConfig, SessionEnd, SessionOutcome};
use crate::io::SessionIo;
use crate::log::{fnv128, InputKind, InputLog, InputRecord, OutputRecord};
use crate::program::Program;
use crate::state::DataState;
use crate::trace::{Trace, TraceEntry, TraceMode};
use crate::value::Value;

/// One pre-decoded instruction: identical semantics to [`Instr`], with
/// interned names so per-step access never allocates.
#[derive(Debug, Clone)]
enum CInstr {
    Push(Value),
    Load(Arc<str>),
    Store(Arc<str>),
    Delete(Arc<str>),
    Pop,
    Dup,
    Swap,
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Neg,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
    Not,
    Concat,
    StrLen,
    ToStr,
    ListNew,
    ListPush,
    ListGet,
    ListSet,
    ListLen,
    Jump(usize),
    JumpIfFalse(usize),
    JumpIfTrue(usize),
    Call(usize),
    Ret,
    Nop,
    Input(Arc<str>),
    Syscall(SyscallKind),
    Send(Arc<str>),
    Recv(Arc<str>),
    Migrate,
    Halt,
}

/// A validated program in its pre-decoded executable form.
///
/// Construction resolves every name through an interning table and caches
/// the program's content hash, so re-execution drivers can both dispatch
/// without per-step allocation and key replay caches without re-hashing
/// the code.
///
/// # Examples
///
/// ```
/// use refstate_vm::{assemble, run_compiled_session, CompiledProgram, DataState, ExecConfig, NullIo};
///
/// let program = assemble("push 2\npush 3\nmul\nstore \"p\"\nhalt")?;
/// let compiled = CompiledProgram::compile(&program);
/// let out = run_compiled_session(&compiled, DataState::new(), &mut NullIo, &ExecConfig::default())?;
/// assert_eq!(out.state.get_int("p"), Some(6));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct CompiledProgram {
    code: Vec<CInstr>,
    code_hash: u128,
}

impl CompiledProgram {
    /// Compiles a validated [`Program`] (interning names, hashing the
    /// canonical encoding).
    pub fn compile(program: &Program) -> CompiledProgram {
        let code_hash = fnv128(&to_wire(program));
        // `Arc<str>: Borrow<str>`, so the set is queryable by plain name.
        let mut interned: BTreeSet<Arc<str>> = BTreeSet::new();
        let mut intern = |name: &str| -> Arc<str> {
            if let Some(shared) = interned.get(name) {
                return shared.clone();
            }
            let shared: Arc<str> = Arc::from(name);
            interned.insert(shared.clone());
            shared
        };
        let code = program
            .iter()
            .map(|instr| match instr {
                Instr::Push(v) => CInstr::Push(v.clone()),
                Instr::Load(n) => CInstr::Load(intern(n)),
                Instr::Store(n) => CInstr::Store(intern(n)),
                Instr::Delete(n) => CInstr::Delete(intern(n)),
                Instr::Pop => CInstr::Pop,
                Instr::Dup => CInstr::Dup,
                Instr::Swap => CInstr::Swap,
                Instr::Add => CInstr::Add,
                Instr::Sub => CInstr::Sub,
                Instr::Mul => CInstr::Mul,
                Instr::Div => CInstr::Div,
                Instr::Mod => CInstr::Mod,
                Instr::Neg => CInstr::Neg,
                Instr::Eq => CInstr::Eq,
                Instr::Ne => CInstr::Ne,
                Instr::Lt => CInstr::Lt,
                Instr::Le => CInstr::Le,
                Instr::Gt => CInstr::Gt,
                Instr::Ge => CInstr::Ge,
                Instr::And => CInstr::And,
                Instr::Or => CInstr::Or,
                Instr::Not => CInstr::Not,
                Instr::Concat => CInstr::Concat,
                Instr::StrLen => CInstr::StrLen,
                Instr::ToStr => CInstr::ToStr,
                Instr::ListNew => CInstr::ListNew,
                Instr::ListPush => CInstr::ListPush,
                Instr::ListGet => CInstr::ListGet,
                Instr::ListSet => CInstr::ListSet,
                Instr::ListLen => CInstr::ListLen,
                Instr::Jump(t) => CInstr::Jump(*t),
                Instr::JumpIfFalse(t) => CInstr::JumpIfFalse(*t),
                Instr::JumpIfTrue(t) => CInstr::JumpIfTrue(*t),
                Instr::Call(t) => CInstr::Call(*t),
                Instr::Ret => CInstr::Ret,
                Instr::Nop => CInstr::Nop,
                Instr::Input(tag) => CInstr::Input(intern(tag)),
                Instr::Syscall(k) => CInstr::Syscall(*k),
                Instr::Send(p) => CInstr::Send(intern(p)),
                Instr::Recv(p) => CInstr::Recv(intern(p)),
                Instr::Migrate => CInstr::Migrate,
                Instr::Halt => CInstr::Halt,
                // `Instr` is non_exhaustive for wire evolution; within the
                // crate the match above is complete.
                #[allow(unreachable_patterns)]
                other => unreachable!("uncompiled instruction {other}"),
            })
            .collect();
        CompiledProgram { code, code_hash }
    }

    /// Returns the shared compiled form of `program`, compiling on first
    /// use.
    ///
    /// Clones of one `Program` share the compilation through the
    /// program's own cell ([`Program::compiled`]); *distinct* programs
    /// with identical content share it through a process-wide table
    /// keyed by content hash (bounded by [`COMPILE_CACHE_CAP`]).
    pub fn cached(program: &Program) -> Arc<CompiledProgram> {
        program.compiled()
    }

    /// The FNV-1a-128 hash of the program's canonical wire encoding — the
    /// program component of a [`crate::SessionFingerprint`].
    pub fn code_hash(&self) -> u128 {
        self.code_hash
    }

    /// The number of instructions.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Returns `true` for the empty program.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }
}

/// Upper bound on distinct programs retained by the process-wide compile
/// cache before it is cleared.
pub const COMPILE_CACHE_CAP: usize = 256;

/// The process-wide, content-keyed compile table behind
/// [`Program::compiled`]: distinct `Program` values with identical
/// instruction streams (a fleet's per-scenario agents, decoded wire
/// copies) share one compilation. Bounded: when it exceeds
/// [`COMPILE_CACHE_CAP`] entries it is cleared wholesale (outstanding
/// `Arc`s keep their programs alive). Each program *lineage* pays this
/// lookup — the wire serialization, the content hash, and the lock —
/// once; per-session callers go through the lineage's own cell.
///
/// The FNV content key is sound here because every caller compiles a
/// program it already holds and trusts (the owner's agent code, or a
/// wire-decoded copy it is about to execute *as its own*): an aliased
/// entry could only substitute a program the same process previously
/// chose to run, and verification verdicts never key off this table —
/// the replay cache in `refstate-core` uses SHA-256 for everything an
/// adversary supplies.
pub(crate) fn cached_by_content(program: &Program) -> Arc<CompiledProgram> {
    let cache = compile_cache();
    let image = to_wire(program);
    let code_hash = fnv128(&image);
    {
        let map = cache.lock().unwrap_or_else(|p| p.into_inner());
        if let Some((hit, _)) = map.get(&code_hash) {
            return hit.clone();
        }
    }
    // Compile outside the lock; a racing compile of the same program
    // produces an identical value, so last-insert-wins is harmless.
    let compiled = Arc::new(CompiledProgram::compile(program));
    debug_assert_eq!(compiled.code_hash, code_hash);
    let mut map = cache.lock().unwrap_or_else(|p| p.into_inner());
    if map.len() >= COMPILE_CACHE_CAP {
        map.clear();
    }
    map.insert(code_hash, (compiled.clone(), Arc::from(image)));
    compiled
}

/// The table behind [`cached_by_content`]. Each entry keeps the program's
/// canonical wire image alongside its compilation (the image was already
/// materialized to compute the content key), so persistence layers can
/// export the table's contents without re-encoding.
type CompileCache = Mutex<HashMap<u128, (Arc<CompiledProgram>, Arc<[u8]>)>>;

fn compile_cache() -> &'static CompileCache {
    static CACHE: OnceLock<CompileCache> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Snapshot of the process-wide compile table: each retained program's
/// code hash and canonical wire image, sorted by code hash so callers see
/// a deterministic order. Persistence layers use this to checkpoint the
/// table; [`warm_compile_cache`] is the matching restore path.
pub fn cached_program_images() -> Vec<(u128, Arc<[u8]>)> {
    let map = compile_cache().lock().unwrap_or_else(|p| p.into_inner());
    let mut images: Vec<(u128, Arc<[u8]>)> = map
        .iter()
        .map(|(hash, (_, image))| (*hash, image.clone()))
        .collect();
    images.sort_by_key(|(hash, _)| *hash);
    images
}

/// Decodes a canonical program image (as produced by
/// [`cached_program_images`]) and compiles it into the process-wide table,
/// returning its code hash. A warm restart feeds persisted images through
/// this before serving traffic, so the first journey of every known
/// program skips compilation.
///
/// # Errors
///
/// Returns the [`refstate_wire::WireError`] if `image` is not a valid
/// `Program` encoding.
pub fn warm_compile_cache(image: &[u8]) -> Result<u128, refstate_wire::WireError> {
    let program: Program = refstate_wire::from_wire(image)?;
    Ok(program.compiled().code_hash())
}

/// Runs one complete execution session over a pre-compiled program.
///
/// Exactly equivalent to [`crate::run_session`] — same outcomes, same
/// errors, same trace and log contents — but dispatching over the
/// pre-decoded instruction stream without per-step instruction clones.
/// When the session hits its step limit, the error names the session via
/// [`ExecConfig::session_label`] so a cache-poisoning replay is
/// diagnosable from fleet logs.
///
/// # Errors
///
/// Propagates any [`VmError`] the program raises.
pub fn run_compiled_session(
    program: &CompiledProgram,
    initial_state: DataState,
    io: &mut dyn SessionIo,
    config: &ExecConfig,
) -> Result<SessionOutcome, VmError> {
    let timer = telemetry::Timer::start();
    let result = run_compiled_session_inner(program, initial_state, io, config);
    if timer.is_active() {
        if let Ok(outcome) = &result {
            telemetry::observe("vm.session_steps", outcome.steps);
        }
        timer.finish("vm.session", "vm");
    }
    result
}

fn run_compiled_session_inner(
    program: &CompiledProgram,
    initial_state: DataState,
    io: &mut dyn SessionIo,
    config: &ExecConfig,
) -> Result<SessionOutcome, VmError> {
    let code = &program.code;
    let mut pc = 0usize;
    let mut stack: Vec<Value> = Vec::new();
    let mut call_stack: Vec<usize> = Vec::new();
    let mut state = initial_state;
    let mut steps: u64 = 0;
    let mut input_log = InputLog::new();
    let mut outputs: Vec<OutputRecord> = Vec::new();
    let mut trace = Trace::new(config.trace_mode);
    let trace_inputs = !matches!(config.trace_mode, TraceMode::Off);
    let trace_full = matches!(config.trace_mode, TraceMode::Full);

    macro_rules! pop {
        () => {
            stack.pop().ok_or(VmError::StackUnderflow { pc })?
        };
    }
    macro_rules! pop_int {
        () => {{
            let v = pop!();
            v.as_int().ok_or_else(|| VmError::TypeMismatch {
                pc,
                expected: "int",
                found: v.type_name(),
            })?
        }};
    }
    macro_rules! pop_bool {
        () => {{
            let v = pop!();
            v.as_bool().ok_or_else(|| VmError::TypeMismatch {
                pc,
                expected: "bool",
                found: v.type_name(),
            })?
        }};
    }
    macro_rules! pop_str {
        () => {{
            match pop!() {
                Value::Str(s) => s,
                other => {
                    return Err(VmError::TypeMismatch {
                        pc,
                        expected: "str",
                        found: other.type_name(),
                    })
                }
            }
        }};
    }
    macro_rules! pop_list {
        () => {{
            match pop!() {
                Value::List(l) => l,
                other => {
                    return Err(VmError::TypeMismatch {
                        pc,
                        expected: "list",
                        found: other.type_name(),
                    })
                }
            }
        }};
    }
    macro_rules! record_input {
        ($kind:expr, $value:expr) => {{
            let kind: InputKind = $kind;
            let value: &Value = $value;
            input_log.record(InputRecord {
                pc: pc as u64,
                kind: kind.clone(),
                value: value.clone(),
            });
            if trace_inputs {
                trace.push(TraceEntry::InputWrite {
                    pc: pc as u64,
                    slot: kind.to_string(),
                    value: value.clone(),
                });
            }
        }};
    }

    let end = loop {
        if steps >= config.step_limit {
            return Err(VmError::StepLimitExceeded {
                limit: config.step_limit,
                session: config.session_label.clone(),
            });
        }
        let Some(instr) = code.get(pc) else {
            return Err(VmError::FellOffEnd);
        };
        steps += 1;
        if trace_full {
            trace.push(TraceEntry::Stmt { pc: pc as u64 });
        }
        let mut next_pc = pc + 1;
        match instr {
            CInstr::Push(v) => stack.push(v.clone()),
            CInstr::Load(name) => {
                let v = state
                    .get(name)
                    .cloned()
                    .ok_or_else(|| VmError::UnknownVariable {
                        pc,
                        name: name.as_ref().to_owned(),
                    })?;
                stack.push(v);
            }
            CInstr::Store(name) => {
                let v = pop!();
                state.set(name.as_ref(), v);
            }
            CInstr::Delete(name) => {
                state.remove(name);
            }
            CInstr::Pop => {
                pop!();
            }
            CInstr::Dup => {
                let v = pop!();
                stack.push(v.clone());
                stack.push(v);
            }
            CInstr::Swap => {
                let b = pop!();
                let a = pop!();
                stack.push(b);
                stack.push(a);
            }
            CInstr::Add => {
                let b = pop_int!();
                let a = pop_int!();
                stack.push(Value::Int(a.wrapping_add(b)));
            }
            CInstr::Sub => {
                let b = pop_int!();
                let a = pop_int!();
                stack.push(Value::Int(a.wrapping_sub(b)));
            }
            CInstr::Mul => {
                let b = pop_int!();
                let a = pop_int!();
                stack.push(Value::Int(a.wrapping_mul(b)));
            }
            CInstr::Div => {
                let b = pop_int!();
                let a = pop_int!();
                if b == 0 {
                    return Err(VmError::DivisionByZero { pc });
                }
                stack.push(Value::Int(a.wrapping_div(b)));
            }
            CInstr::Mod => {
                let b = pop_int!();
                let a = pop_int!();
                if b == 0 {
                    return Err(VmError::DivisionByZero { pc });
                }
                stack.push(Value::Int(a.wrapping_rem(b)));
            }
            CInstr::Neg => {
                let a = pop_int!();
                stack.push(Value::Int(a.wrapping_neg()));
            }
            CInstr::Eq => {
                let b = pop!();
                let a = pop!();
                stack.push(Value::Bool(a == b));
            }
            CInstr::Ne => {
                let b = pop!();
                let a = pop!();
                stack.push(Value::Bool(a != b));
            }
            CInstr::Lt | CInstr::Le | CInstr::Gt | CInstr::Ge => {
                let b = pop!();
                let a = pop!();
                let ord = match (&a, &b) {
                    (Value::Int(x), Value::Int(y)) => x.cmp(y),
                    (Value::Str(x), Value::Str(y)) => x.cmp(y),
                    _ => {
                        return Err(VmError::TypeMismatch {
                            pc,
                            expected: "two ints or two strings",
                            found: b.type_name(),
                        })
                    }
                };
                let keep = match instr {
                    CInstr::Lt => ord.is_lt(),
                    CInstr::Le => ord.is_le(),
                    CInstr::Gt => ord.is_gt(),
                    _ => ord.is_ge(),
                };
                stack.push(Value::Bool(keep));
            }
            CInstr::And => {
                let b = pop_bool!();
                let a = pop_bool!();
                stack.push(Value::Bool(a && b));
            }
            CInstr::Or => {
                let b = pop_bool!();
                let a = pop_bool!();
                stack.push(Value::Bool(a || b));
            }
            CInstr::Not => {
                let a = pop_bool!();
                stack.push(Value::Bool(!a));
            }
            CInstr::Concat => {
                let b = pop_str!();
                let a = pop_str!();
                stack.push(Value::Str(a + &b));
            }
            CInstr::StrLen => {
                let s = pop_str!();
                stack.push(Value::Int(s.chars().count() as i64));
            }
            CInstr::ToStr => {
                let v = pop!();
                let rendered = match v {
                    Value::Str(s) => s,
                    other => other.to_string(),
                };
                stack.push(Value::Str(rendered));
            }
            CInstr::ListNew => stack.push(Value::List(Vec::new())),
            CInstr::ListPush => {
                let v = pop!();
                let mut list = pop_list!();
                list.push(v);
                stack.push(Value::List(list));
            }
            CInstr::ListGet => {
                let idx = pop_int!();
                let list = pop_list!();
                let item = usize::try_from(idx)
                    .ok()
                    .and_then(|i| list.get(i))
                    .cloned()
                    .ok_or(VmError::IndexOutOfBounds {
                        pc,
                        index: idx,
                        len: list.len(),
                    })?;
                stack.push(item);
            }
            CInstr::ListSet => {
                let v = pop!();
                let idx = pop_int!();
                let mut list = pop_list!();
                let slot = usize::try_from(idx)
                    .ok()
                    .filter(|&i| i < list.len())
                    .ok_or(VmError::IndexOutOfBounds {
                        pc,
                        index: idx,
                        len: list.len(),
                    })?;
                list[slot] = v;
                stack.push(Value::List(list));
            }
            CInstr::ListLen => {
                let list = pop_list!();
                stack.push(Value::Int(list.len() as i64));
            }
            CInstr::Jump(t) => next_pc = *t,
            CInstr::JumpIfFalse(t) => {
                if !pop_bool!() {
                    next_pc = *t;
                }
            }
            CInstr::JumpIfTrue(t) => {
                if pop_bool!() {
                    next_pc = *t;
                }
            }
            CInstr::Call(t) => {
                call_stack.push(next_pc);
                next_pc = *t;
            }
            CInstr::Ret => {
                next_pc = call_stack.pop().ok_or(VmError::CallStackUnderflow { pc })?;
            }
            CInstr::Nop => {}
            CInstr::Input(tag) => {
                let v = io.input(pc, tag)?;
                record_input!(InputKind::Tagged(tag.as_ref().to_owned()), &v);
                stack.push(v);
            }
            CInstr::Syscall(kind) => {
                let v = io.syscall(pc, *kind)?;
                record_input!(InputKind::Syscall(*kind), &v);
                stack.push(v);
            }
            CInstr::Recv(partner) => {
                let v = io.recv(pc, partner)?;
                record_input!(InputKind::Message(partner.as_ref().to_owned()), &v);
                stack.push(v);
            }
            CInstr::Send(partner) => {
                let v = pop!();
                outputs.push(OutputRecord {
                    pc: pc as u64,
                    partner: partner.as_ref().to_owned(),
                    value: v.clone(),
                });
                io.send(pc, partner, v)?;
            }
            CInstr::Migrate => {
                let host = pop_str!();
                break SessionEnd::Migrate(host);
            }
            CInstr::Halt => break SessionEnd::Halt,
        }
        // Jump targets are validated at Program construction; the range
        // check is kept for loop-exit parity with the interpreter.
        if next_pc > code.len() {
            return Err(VmError::PcOutOfRange {
                target: next_pc,
                len: code.len(),
            });
        }
        pc = next_pc;
    };

    Ok(SessionOutcome {
        end,
        state,
        input_log,
        outputs,
        trace,
        steps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::interp::run_session;
    use crate::io::{NullIo, ReplayIo, ScriptedIo};

    /// Every program here is executed by both loops and the full outcomes
    /// are compared field by field.
    fn both(
        src: &str,
        make_io: impl Fn() -> ScriptedIo,
        config: &ExecConfig,
    ) -> (
        Result<SessionOutcome, VmError>,
        Result<SessionOutcome, VmError>,
    ) {
        let program = assemble(src).expect("assembles");
        let compiled = CompiledProgram::compile(&program);
        let mut io_a = make_io();
        let mut io_b = make_io();
        let interpreted = run_session(&program, DataState::new(), &mut io_a, config);
        let fast = run_compiled_session(&compiled, DataState::new(), &mut io_b, config);
        (interpreted, fast)
    }

    fn assert_equivalent(src: &str, make_io: impl Fn() -> ScriptedIo, config: &ExecConfig) {
        let (interpreted, fast) = both(src, make_io, config);
        match (interpreted, fast) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.end, b.end, "{src}");
                assert_eq!(a.state, b.state, "{src}");
                assert_eq!(a.input_log, b.input_log, "{src}");
                assert_eq!(a.outputs, b.outputs, "{src}");
                assert_eq!(a.trace, b.trace, "{src}");
                assert_eq!(a.steps, b.steps, "{src}");
            }
            (Err(a), Err(b)) => assert_eq!(a, b, "{src}"),
            (a, b) => panic!("loops diverged on {src}: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn compiled_matches_interpreter_on_programs() {
        let scripted = || {
            let mut io = ScriptedIo::new();
            io.push_input("price", Value::Int(10))
                .push_input("price", Value::Int(20))
                .push_message("shop", Value::Str("hi".into()));
            io
        };
        let programs = [
            "push 10\npush 3\nsub\npush 6\nmul\npush 5\ndiv\npush 3\nmod\nneg\nstore \"r\"\nhalt",
            "push \"foo\"\npush \"bar\"\nconcat\ndup\nstrlen\nstore \"n\"\nstore \"s\"\nhalt",
            "listnew\npush 1\nlistpush\npush 2\nlistpush\ndup\nlistlen\nstore \"n\"\npush 0\npush 9\nlistset\nstore \"l\"\nhalt",
            "input \"price\"\nstore \"p\"\nsyscall random\nstore \"r\"\nrecv \"shop\"\nstore \"m\"\nhalt",
            "push 7\ncall double\nstore \"r\"\nhalt\ndouble:\npush 2\nmul\nret",
            "push 100\nsend \"bank\"\nhalt",
            "push \"host-b\"\nmigrate",
            // Errors, one per class:
            "pop",
            "push 1\npush 0\ndiv\nhalt",
            "push true\npush 1\nadd\nhalt",
            "load \"ghost\"\nhalt",
            "listnew\npush 0\nlistget\nhalt",
            "ret",
            "push 1\npop",
            "push 42\ntostr\nstore \"t\"\nhalt",
            "push 1\nstore \"x\"\ndelete \"x\"\nhalt",
        ];
        for config in [
            ExecConfig::default(),
            ExecConfig::traced(),
            ExecConfig {
                trace_mode: TraceMode::InputsOnly,
                ..Default::default()
            },
        ] {
            for src in programs {
                assert_equivalent(src, scripted, &config);
            }
        }
    }

    #[test]
    fn compiled_matches_interpreter_on_loops_and_step_limits() {
        let config = ExecConfig {
            step_limit: 100,
            ..Default::default()
        };
        assert_equivalent("loop:\njump loop", ScriptedIo::new, &config);
        assert_equivalent(
            r#"
            push 0
            store "sum"
            push 1
            store "i"
        loop:
            load "i"
            push 5
            gt
            jnz end
            load "sum"
            load "i"
            add
            store "sum"
            load "i"
            push 1
            add
            store "i"
            jump loop
        end:
            halt
        "#,
            ScriptedIo::new,
            &ExecConfig::default(),
        );
    }

    #[test]
    fn step_limit_error_names_the_session() {
        let program = assemble("loop:\njump loop").unwrap();
        let compiled = CompiledProgram::compile(&program);
        let config = ExecConfig {
            step_limit: 10,
            session_label: Some("s-deadbeef".into()),
            ..Default::default()
        };
        let err =
            run_compiled_session(&compiled, DataState::new(), &mut NullIo, &config).unwrap_err();
        assert_eq!(
            err,
            VmError::StepLimitExceeded {
                limit: 10,
                session: Some("s-deadbeef".into()),
            }
        );
        assert!(err.to_string().contains("s-deadbeef"));
    }

    #[test]
    fn compiled_replay_reproduces_live_state() {
        let program = assemble(
            r#"
            input "a"
            input "a"
            add
            syscall time
            add
            store "total"
            halt
        "#,
        )
        .unwrap();
        let mut live = ScriptedIo::new();
        live.push_input("a", Value::Int(5))
            .push_input("a", Value::Int(6));
        let original = run_session(
            &program,
            DataState::new(),
            &mut live,
            &ExecConfig::default(),
        )
        .unwrap();
        let compiled = CompiledProgram::compile(&program);
        let mut replay = ReplayIo::new(&original.input_log);
        let rerun = run_compiled_session(
            &compiled,
            DataState::new(),
            &mut replay,
            &ExecConfig::default(),
        )
        .unwrap();
        assert_eq!(rerun.state, original.state);
        assert!(replay.fully_consumed());
    }

    #[test]
    fn compile_cache_shares_by_content() {
        let a = assemble("push 1\nstore \"x\"\nhalt").unwrap();
        let b = assemble("push 1\nstore \"x\"\nhalt").unwrap();
        let c = assemble("push 2\nstore \"x\"\nhalt").unwrap();
        let ca = CompiledProgram::cached(&a);
        let cb = CompiledProgram::cached(&b);
        let cc = CompiledProgram::cached(&c);
        assert!(Arc::ptr_eq(&ca, &cb), "identical programs share one entry");
        assert_eq!(ca.code_hash(), cb.code_hash());
        assert_ne!(ca.code_hash(), cc.code_hash());
        assert_eq!(ca.len(), 3);
        assert!(!ca.is_empty());
    }

    #[test]
    fn compile_cache_images_round_trip_through_warming() {
        let program = assemble("push 41\npush 1\nadd\nstore \"answer\"\nhalt").unwrap();
        let compiled = CompiledProgram::cached(&program);
        let images = cached_program_images();
        let (hash, image) = images
            .iter()
            .find(|(hash, _)| *hash == compiled.code_hash())
            .expect("cached program appears in the image snapshot");
        assert_eq!(fnv128(image), *hash, "image hashes back to its key");
        // Warming from the persisted image lands on the same shared entry.
        let warmed_hash = warm_compile_cache(image).unwrap();
        assert_eq!(warmed_hash, compiled.code_hash());
        assert!(warm_compile_cache(b"garbage").is_err());
        // Snapshot order is deterministic: sorted by code hash.
        let hashes: Vec<u128> = cached_program_images().iter().map(|(h, _)| *h).collect();
        let mut sorted = hashes.clone();
        sorted.sort_unstable();
        assert_eq!(hashes, sorted);
    }

    #[test]
    fn interned_names_share_allocations() {
        let program = assemble("load \"x\"\nstore \"x\"\nload \"x\"\nstore \"x\"\nhalt").unwrap();
        let compiled = CompiledProgram::compile(&program);
        let names: Vec<&Arc<str>> = compiled
            .code
            .iter()
            .filter_map(|i| match i {
                CInstr::Load(n) | CInstr::Store(n) => Some(n),
                _ => None,
            })
            .collect();
        assert_eq!(names.len(), 4);
        assert!(names.windows(2).all(|w| Arc::ptr_eq(w[0], w[1])));
    }
}
