//! Agent values.

use std::fmt;

use refstate_wire::{Decode, Encode, Reader, WireError, Writer};

/// A value in the agent's data state or operand stack.
///
/// The set mirrors what 2000-era agent systems moved between hosts:
/// integers, booleans, strings, raw bytes, and nested lists.
///
/// # Examples
///
/// ```
/// use refstate_vm::Value;
///
/// let v = Value::List(vec![Value::Int(1), Value::Str("x".into())]);
/// assert_eq!(v.type_name(), "list");
/// assert_eq!(v.to_string(), "[1, \"x\"]");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// A 64-bit signed integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// A UTF-8 string.
    Str(String),
    /// Raw bytes.
    Bytes(Vec<u8>),
    /// A list of values.
    List(Vec<Value>),
}

impl Value {
    /// A short lowercase name of the value's type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Bool(_) => "bool",
            Value::Str(_) => "str",
            Value::Bytes(_) => "bytes",
            Value::List(_) => "list",
        }
    }

    /// Returns the integer if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the boolean if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the string if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the list if this is a `List`.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(v) => Some(v),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v:?}"),
            Value::Bytes(v) => {
                f.write_str("0x")?;
                for b in v {
                    write!(f, "{b:02x}")?;
                }
                Ok(())
            }
            Value::List(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Self {
        Value::Bytes(v)
    }
}

impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Self {
        Value::List(v)
    }
}

const TAG_INT: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_STR: u8 = 2;
const TAG_BYTES: u8 = 3;
const TAG_LIST: u8 = 4;

impl Encode for Value {
    fn encode(&self, w: &mut Writer) {
        match self {
            Value::Int(v) => {
                w.put_u8(TAG_INT);
                w.put_i64(*v);
            }
            Value::Bool(v) => {
                w.put_u8(TAG_BOOL);
                w.put_bool(*v);
            }
            Value::Str(v) => {
                w.put_u8(TAG_STR);
                w.put_str(v);
            }
            Value::Bytes(v) => {
                w.put_u8(TAG_BYTES);
                w.put_bytes(v);
            }
            Value::List(items) => {
                w.put_u8(TAG_LIST);
                items.encode(w);
            }
        }
    }
}

impl Decode for Value {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.take_u8()? {
            TAG_INT => Ok(Value::Int(r.take_i64()?)),
            TAG_BOOL => Ok(Value::Bool(r.take_bool()?)),
            TAG_STR => Ok(Value::Str(r.take_str()?.to_owned())),
            TAG_BYTES => Ok(Value::Bytes(r.take_bytes()?.to_vec())),
            TAG_LIST => Ok(Value::List(Vec::<Value>::decode(r)?)),
            tag => Err(WireError::InvalidTag {
                context: "Value",
                tag,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refstate_wire::{from_wire, to_wire};

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(5).as_int(), Some(5));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Str("x".into()).as_str(), Some("x"));
        assert_eq!(Value::List(vec![]).as_list(), Some(&[][..]));
        assert_eq!(Value::Int(5).as_bool(), None);
        assert_eq!(Value::Bool(true).as_int(), None);
    }

    #[test]
    fn type_names() {
        assert_eq!(Value::Int(0).type_name(), "int");
        assert_eq!(Value::Bool(false).type_name(), "bool");
        assert_eq!(Value::Str(String::new()).type_name(), "str");
        assert_eq!(Value::Bytes(vec![]).type_name(), "bytes");
        assert_eq!(Value::List(vec![]).type_name(), "list");
    }

    #[test]
    fn display() {
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::Bool(true).to_string(), "true");
        assert_eq!(Value::Str("a\"b".into()).to_string(), "\"a\\\"b\"");
        assert_eq!(Value::Bytes(vec![0xde, 0xad]).to_string(), "0xdead");
        assert_eq!(
            Value::List(vec![Value::Int(1), Value::List(vec![Value::Bool(false)])]).to_string(),
            "[1, [false]]"
        );
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(7i64), Value::Int(7));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("s"), Value::Str("s".into()));
        assert_eq!(Value::from(vec![1u8]), Value::Bytes(vec![1]));
        assert_eq!(
            Value::from(vec![Value::Int(1)]),
            Value::List(vec![Value::Int(1)])
        );
    }

    #[test]
    fn wire_round_trip() {
        let values = [
            Value::Int(i64::MIN),
            Value::Int(i64::MAX),
            Value::Bool(false),
            Value::Str("héllo".into()),
            Value::Bytes((0..=255).collect()),
            Value::List(vec![
                Value::Int(1),
                Value::List(vec![Value::Str("nested".into())]),
            ]),
        ];
        for v in values {
            assert_eq!(from_wire::<Value>(&to_wire(&v)).unwrap(), v);
        }
    }

    #[test]
    fn wire_rejects_bad_tag() {
        assert!(from_wire::<Value>(&[99]).is_err());
    }
}
