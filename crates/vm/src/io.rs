//! The session I/O boundary: where all nondeterminism enters an execution.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use crate::error::VmError;
use crate::instr::SyscallKind;
use crate::log::{InputKind, InputLog};
use crate::value::Value;

/// The interface through which an executing agent receives external values
/// and emits messages.
///
/// Every method except [`SessionIo::send`] is *input-class*: its results are
/// recorded by the interpreter into the session's [`InputLog`], which is
/// exactly the reference data that makes deterministic re-execution
/// possible.
pub trait SessionIo {
    /// Supplies the next value for `input <tag>`.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::InputUnavailable`] if no value is available.
    fn input(&mut self, pc: usize, tag: &str) -> Result<Value, VmError>;

    /// Supplies the result of a host service call.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::InputUnavailable`] if the host refuses the call.
    fn syscall(&mut self, pc: usize, kind: SyscallKind) -> Result<Value, VmError>;

    /// Supplies the next message from `partner` for `recv <partner>`.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::InputUnavailable`] if no message is pending.
    fn recv(&mut self, pc: usize, partner: &str) -> Result<Value, VmError>;

    /// Delivers a message the agent sent to `partner`.
    ///
    /// Implementations used for *re-execution* suppress delivery (the
    /// paper's framework: "output actions can be suppressed as they are not
    /// needed for checking").
    ///
    /// # Errors
    ///
    /// Live implementations may fail when the partner is unreachable.
    fn send(&mut self, pc: usize, partner: &str, value: Value) -> Result<(), VmError>;
}

/// Scripted I/O for live sessions and tests: per-tag input queues,
/// deterministic syscall scripts, per-partner message queues, and a capture
/// buffer for sends.
///
/// # Examples
///
/// ```
/// use refstate_vm::{ScriptedIo, SessionIo, Value};
///
/// let mut io = ScriptedIo::new();
/// io.push_input("price", Value::Int(100));
/// let v = io.input(0, "price")?;
/// assert_eq!(v, Value::Int(100));
/// assert!(io.input(1, "price").is_err()); // queue exhausted
/// # Ok::<(), refstate_vm::VmError>(())
/// ```
#[derive(Debug, Default)]
pub struct ScriptedIo {
    inputs: BTreeMap<String, VecDeque<Value>>,
    messages: BTreeMap<String, VecDeque<Value>>,
    /// Scripted syscall results, consumed in order; when empty, a
    /// deterministic counter-based fallback is used.
    syscall_script: VecDeque<Value>,
    /// Fallback counters so time/random stay deterministic per session.
    clock: i64,
    sent: Vec<(String, Value)>,
}

impl ScriptedIo {
    /// Creates an I/O script with no queued values.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues a value for `input <tag>`.
    pub fn push_input(&mut self, tag: impl Into<String>, value: Value) -> &mut Self {
        self.inputs.entry(tag.into()).or_default().push_back(value);
        self
    }

    /// Queues a message from `partner` for `recv <partner>`.
    pub fn push_message(&mut self, partner: impl Into<String>, value: Value) -> &mut Self {
        self.messages
            .entry(partner.into())
            .or_default()
            .push_back(value);
        self
    }

    /// Queues an explicit syscall result.
    pub fn push_syscall_result(&mut self, value: Value) -> &mut Self {
        self.syscall_script.push_back(value);
        self
    }

    /// Messages the agent sent during the session, in order.
    pub fn sent(&self) -> &[(String, Value)] {
        &self.sent
    }
}

impl SessionIo for ScriptedIo {
    fn input(&mut self, pc: usize, tag: &str) -> Result<Value, VmError> {
        self.inputs
            .get_mut(tag)
            .and_then(VecDeque::pop_front)
            .ok_or_else(|| VmError::InputUnavailable {
                pc,
                what: format!("input:{tag}"),
            })
    }

    fn syscall(&mut self, _pc: usize, kind: SyscallKind) -> Result<Value, VmError> {
        if let Some(v) = self.syscall_script.pop_front() {
            return Ok(v);
        }
        // Deterministic fallback: a monotone session clock and an LCG.
        self.clock += 1;
        Ok(match kind {
            SyscallKind::Time => Value::Int(1_000_000 + self.clock),
            SyscallKind::Random => {
                let x = (self.clock as u64)
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                Value::Int((x >> 33) as i64)
            }
        })
    }

    fn recv(&mut self, pc: usize, partner: &str) -> Result<Value, VmError> {
        self.messages
            .get_mut(partner)
            .and_then(VecDeque::pop_front)
            .ok_or_else(|| VmError::InputUnavailable {
                pc,
                what: format!("recv:{partner}"),
            })
    }

    fn send(&mut self, _pc: usize, partner: &str, value: Value) -> Result<(), VmError> {
        self.sent.push((partner.to_owned(), value));
        Ok(())
    }
}

/// Replay I/O: feeds a recorded [`InputLog`] back to the interpreter and
/// suppresses sends.
///
/// This is the mechanism behind every re-execution-based check: the checking
/// host runs the agent again, the interpreter asks for inputs, and `ReplayIo`
/// answers from the log — verifying on the way that the log entry's *kind*
/// matches what the program actually requested (a host that recorded a
/// fabricated log fails here or produces a different resulting state).
#[derive(Debug)]
pub struct ReplayIo {
    records: Vec<(InputKind, Value)>,
    next: usize,
    suppressed_sends: Vec<(String, Value)>,
}

impl ReplayIo {
    /// Creates a replayer over a recorded input log.
    pub fn new(log: &InputLog) -> Self {
        ReplayIo {
            records: log
                .records()
                .iter()
                .map(|r| (r.kind.clone(), r.value.clone()))
                .collect(),
            next: 0,
            suppressed_sends: Vec::new(),
        }
    }

    fn next_value(&mut self, pc: usize, expected: InputKind) -> Result<Value, VmError> {
        let (kind, value) =
            self.records
                .get(self.next)
                .ok_or_else(|| VmError::InputUnavailable {
                    pc,
                    what: format!("replay:{expected}"),
                })?;
        if *kind != expected {
            return Err(VmError::ReplayMismatch {
                pc,
                detail: format!("log records {kind}, program requested {expected}"),
            });
        }
        self.next += 1;
        Ok(value.clone())
    }

    /// Returns `true` when every recorded input was consumed — a complete
    /// replay should end with an exhausted log.
    pub fn fully_consumed(&self) -> bool {
        self.next == self.records.len()
    }

    /// Messages the re-executed agent tried to send (suppressed, but kept
    /// for comparison against the original session's claims).
    pub fn suppressed_sends(&self) -> &[(String, Value)] {
        &self.suppressed_sends
    }
}

impl SessionIo for ReplayIo {
    fn input(&mut self, pc: usize, tag: &str) -> Result<Value, VmError> {
        self.next_value(pc, InputKind::Tagged(tag.to_owned()))
    }

    fn syscall(&mut self, pc: usize, kind: SyscallKind) -> Result<Value, VmError> {
        self.next_value(pc, InputKind::Syscall(kind))
    }

    fn recv(&mut self, pc: usize, partner: &str) -> Result<Value, VmError> {
        self.next_value(pc, InputKind::Message(partner.to_owned()))
    }

    fn send(&mut self, _pc: usize, partner: &str, value: Value) -> Result<(), VmError> {
        self.suppressed_sends.push((partner.to_owned(), value));
        Ok(())
    }
}

/// I/O that refuses everything: for agents that must be pure.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullIo;

impl SessionIo for NullIo {
    fn input(&mut self, pc: usize, tag: &str) -> Result<Value, VmError> {
        Err(VmError::InputUnavailable {
            pc,
            what: format!("input:{tag}"),
        })
    }

    fn syscall(&mut self, pc: usize, kind: SyscallKind) -> Result<Value, VmError> {
        Err(VmError::InputUnavailable {
            pc,
            what: format!("syscall:{kind}"),
        })
    }

    fn recv(&mut self, pc: usize, partner: &str) -> Result<Value, VmError> {
        Err(VmError::InputUnavailable {
            pc,
            what: format!("recv:{partner}"),
        })
    }

    fn send(&mut self, pc: usize, partner: &str, _value: Value) -> Result<(), VmError> {
        Err(VmError::InputUnavailable {
            pc,
            what: format!("send:{partner}"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::InputRecord;

    #[test]
    fn scripted_inputs_fifo_per_tag() {
        let mut io = ScriptedIo::new();
        io.push_input("a", Value::Int(1))
            .push_input("a", Value::Int(2))
            .push_input("b", Value::Int(3));
        assert_eq!(io.input(0, "a").unwrap(), Value::Int(1));
        assert_eq!(io.input(0, "b").unwrap(), Value::Int(3));
        assert_eq!(io.input(0, "a").unwrap(), Value::Int(2));
        assert!(io.input(0, "a").is_err());
    }

    #[test]
    fn scripted_syscalls_deterministic() {
        let mut a = ScriptedIo::new();
        let mut b = ScriptedIo::new();
        for _ in 0..5 {
            assert_eq!(
                a.syscall(0, SyscallKind::Random).unwrap(),
                b.syscall(0, SyscallKind::Random).unwrap()
            );
        }
        let t1 = a.syscall(0, SyscallKind::Time).unwrap().as_int().unwrap();
        let t2 = a.syscall(0, SyscallKind::Time).unwrap().as_int().unwrap();
        assert!(t2 > t1, "clock must be monotone");
    }

    #[test]
    fn scripted_syscall_script_takes_priority() {
        let mut io = ScriptedIo::new();
        io.push_syscall_result(Value::Int(42));
        assert_eq!(io.syscall(0, SyscallKind::Time).unwrap(), Value::Int(42));
    }

    #[test]
    fn scripted_send_captured() {
        let mut io = ScriptedIo::new();
        io.send(1, "bank", Value::Int(100)).unwrap();
        assert_eq!(io.sent(), &[("bank".to_string(), Value::Int(100))]);
    }

    #[test]
    fn replay_feeds_in_order_and_checks_kinds() {
        let log: InputLog = [
            InputRecord {
                pc: 0,
                kind: InputKind::Tagged("p".into()),
                value: Value::Int(1),
            },
            InputRecord {
                pc: 1,
                kind: InputKind::Syscall(SyscallKind::Time),
                value: Value::Int(50),
            },
        ]
        .into_iter()
        .collect();
        let mut io = ReplayIo::new(&log);
        assert_eq!(io.input(0, "p").unwrap(), Value::Int(1));
        assert!(!io.fully_consumed());
        assert_eq!(io.syscall(1, SyscallKind::Time).unwrap(), Value::Int(50));
        assert!(io.fully_consumed());
        assert!(io.input(2, "p").is_err());
    }

    #[test]
    fn replay_detects_kind_mismatch() {
        let log: InputLog = [InputRecord {
            pc: 0,
            kind: InputKind::Tagged("p".into()),
            value: Value::Int(1),
        }]
        .into_iter()
        .collect();
        let mut io = ReplayIo::new(&log);
        let err = io.recv(0, "partner").unwrap_err();
        assert!(matches!(err, VmError::ReplayMismatch { .. }));
    }

    #[test]
    fn replay_suppresses_sends() {
        let mut io = ReplayIo::new(&InputLog::new());
        io.send(3, "shop", Value::Str("buy".into())).unwrap();
        assert_eq!(io.suppressed_sends().len(), 1);
    }

    #[test]
    fn null_io_refuses_everything() {
        let mut io = NullIo;
        assert!(io.input(0, "x").is_err());
        assert!(io.syscall(0, SyscallKind::Time).is_err());
        assert!(io.recv(0, "p").is_err());
        assert!(io.send(0, "p", Value::Int(1)).is_err());
    }
}
