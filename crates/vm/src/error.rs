//! Virtual-machine execution errors.

use std::error::Error;
use std::fmt;

/// An error raised during agent execution.
///
/// Errors carry the program counter at which they occurred so that a
/// checking host can report *where* a re-execution diverged.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum VmError {
    /// The operand stack was empty when an instruction needed a value.
    StackUnderflow {
        /// Program counter of the failing instruction.
        pc: usize,
    },
    /// An operand had the wrong type.
    TypeMismatch {
        /// Program counter of the failing instruction.
        pc: usize,
        /// What the instruction expected.
        expected: &'static str,
        /// The type actually found.
        found: &'static str,
    },
    /// Integer division or modulo by zero.
    DivisionByZero {
        /// Program counter of the failing instruction.
        pc: usize,
    },
    /// A variable was loaded before being stored.
    UnknownVariable {
        /// Program counter of the failing instruction.
        pc: usize,
        /// The variable name.
        name: String,
    },
    /// A list index was out of bounds.
    IndexOutOfBounds {
        /// Program counter of the failing instruction.
        pc: usize,
        /// The requested index.
        index: i64,
        /// The list length.
        len: usize,
    },
    /// A jump or call target was outside the program.
    PcOutOfRange {
        /// The invalid target.
        target: usize,
        /// The program length.
        len: usize,
    },
    /// `ret` executed with an empty call stack.
    CallStackUnderflow {
        /// Program counter of the failing instruction.
        pc: usize,
    },
    /// The configured step limit was exceeded (runaway agent).
    StepLimitExceeded {
        /// The limit that was hit.
        limit: u64,
        /// The fingerprinted session label ([`crate::ExecConfig::session_label`])
        /// under which the limit was hit, when the caller supplied one —
        /// replay drivers label re-executions with the session fingerprint
        /// so a poisoned or runaway cache entry is diagnosable from fleet
        /// logs.
        session: Option<String>,
    },
    /// The session I/O could not supply a requested input.
    InputUnavailable {
        /// Program counter of the failing instruction.
        pc: usize,
        /// The input tag, syscall name, or partner.
        what: String,
    },
    /// Replay input did not match the recorded kind (tampered input log).
    ReplayMismatch {
        /// Program counter of the failing instruction.
        pc: usize,
        /// Description of the mismatch.
        detail: String,
    },
    /// The program ran off its end without `halt` or `migrate`.
    FellOffEnd,
}

impl VmError {
    /// The program counter associated with the error, when applicable.
    pub fn pc(&self) -> Option<usize> {
        match self {
            VmError::StackUnderflow { pc }
            | VmError::TypeMismatch { pc, .. }
            | VmError::DivisionByZero { pc }
            | VmError::UnknownVariable { pc, .. }
            | VmError::IndexOutOfBounds { pc, .. }
            | VmError::CallStackUnderflow { pc }
            | VmError::InputUnavailable { pc, .. }
            | VmError::ReplayMismatch { pc, .. } => Some(*pc),
            _ => None,
        }
    }
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::StackUnderflow { pc } => write!(f, "stack underflow at pc {pc}"),
            VmError::TypeMismatch {
                pc,
                expected,
                found,
            } => {
                write!(
                    f,
                    "type mismatch at pc {pc}: expected {expected}, found {found}"
                )
            }
            VmError::DivisionByZero { pc } => write!(f, "division by zero at pc {pc}"),
            VmError::UnknownVariable { pc, name } => {
                write!(f, "unknown variable {name:?} at pc {pc}")
            }
            VmError::IndexOutOfBounds { pc, index, len } => {
                write!(
                    f,
                    "index {index} out of bounds for list of length {len} at pc {pc}"
                )
            }
            VmError::PcOutOfRange { target, len } => {
                write!(f, "jump target {target} outside program of length {len}")
            }
            VmError::CallStackUnderflow { pc } => {
                write!(f, "return with empty call stack at pc {pc}")
            }
            VmError::StepLimitExceeded { limit, session } => {
                write!(f, "step limit of {limit} exceeded")?;
                if let Some(session) = session {
                    write!(f, " (session {session})")?;
                }
                Ok(())
            }
            VmError::InputUnavailable { pc, what } => {
                write!(f, "input {what:?} unavailable at pc {pc}")
            }
            VmError::ReplayMismatch { pc, detail } => {
                write!(f, "replay mismatch at pc {pc}: {detail}")
            }
            VmError::FellOffEnd => f.write_str("program ended without halt or migrate"),
        }
    }
}

impl Error for VmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pc_extraction() {
        assert_eq!(VmError::StackUnderflow { pc: 3 }.pc(), Some(3));
        assert_eq!(VmError::FellOffEnd.pc(), None);
        assert_eq!(
            VmError::StepLimitExceeded {
                limit: 10,
                session: None
            }
            .pc(),
            None
        );
    }

    #[test]
    fn step_limit_display_names_the_session() {
        let anonymous = VmError::StepLimitExceeded {
            limit: 10,
            session: None,
        };
        assert_eq!(anonymous.to_string(), "step limit of 10 exceeded");
        let labelled = VmError::StepLimitExceeded {
            limit: 10,
            session: Some("fp-00c0ffee".into()),
        };
        assert!(labelled.to_string().contains("session fp-00c0ffee"));
    }

    #[test]
    fn display_mentions_location() {
        let e = VmError::TypeMismatch {
            pc: 7,
            expected: "int",
            found: "str",
        };
        let s = e.to_string();
        assert!(s.contains("pc 7") && s.contains("int") && s.contains("str"));
    }

    #[test]
    fn is_send_sync_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<VmError>();
    }
}
