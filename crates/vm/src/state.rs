//! The agent's data state: its variable part.

use std::collections::BTreeMap;
use std::fmt;

use refstate_wire::{Decode, Encode, Reader, WireError, Writer};

use crate::value::Value;

/// The variable part of an agent: named values that persist across
/// migrations.
///
/// In the paper's weak-migration model this *is* the agent state that hosts
/// exchange: the execution state (stack, program counter) is reset at every
/// migration and anything worth keeping lives here. The map is ordered so
/// the wire encoding — and therefore every hash and signature over a state —
/// is canonical.
///
/// # Examples
///
/// ```
/// use refstate_vm::{DataState, Value};
///
/// let mut s = DataState::new();
/// s.set("budget", Value::Int(500));
/// assert_eq!(s.get("budget"), Some(&Value::Int(500)));
/// assert_eq!(s.len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DataState {
    vars: BTreeMap<String, Value>,
}

impl DataState {
    /// Creates an empty state.
    pub fn new() -> Self {
        DataState {
            vars: BTreeMap::new(),
        }
    }

    /// Returns the value of `name`, if set.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.vars.get(name)
    }

    /// Sets `name` to `value`, returning the previous value.
    pub fn set(&mut self, name: impl Into<String>, value: Value) -> Option<Value> {
        self.vars.insert(name.into(), value)
    }

    /// Removes `name`, returning its value.
    pub fn remove(&mut self, name: &str) -> Option<Value> {
        self.vars.remove(name)
    }

    /// Returns `true` if `name` is set.
    pub fn contains(&self, name: &str) -> bool {
        self.vars.contains_key(name)
    }

    /// The number of variables.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// Returns `true` if no variables are set.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.vars.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Convenience accessor for integer variables.
    pub fn get_int(&self, name: &str) -> Option<i64> {
        self.get(name).and_then(Value::as_int)
    }

    /// Convenience accessor for string variables.
    pub fn get_str(&self, name: &str) -> Option<&str> {
        self.get(name).and_then(Value::as_str)
    }
}

impl fmt::Display for DataState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{")?;
        for (i, (k, v)) in self.vars.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{k}={v}")?;
        }
        f.write_str("}")
    }
}

impl FromIterator<(String, Value)> for DataState {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        DataState {
            vars: iter.into_iter().collect(),
        }
    }
}

impl Extend<(String, Value)> for DataState {
    fn extend<I: IntoIterator<Item = (String, Value)>>(&mut self, iter: I) {
        self.vars.extend(iter);
    }
}

impl Encode for DataState {
    fn encode(&self, w: &mut Writer) {
        self.vars.encode(w);
    }
}

impl Decode for DataState {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(DataState {
            vars: BTreeMap::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refstate_wire::{from_wire, to_wire};

    #[test]
    fn basic_operations() {
        let mut s = DataState::new();
        assert!(s.is_empty());
        assert!(s.set("a", Value::Int(1)).is_none());
        assert_eq!(s.set("a", Value::Int(2)), Some(Value::Int(1)));
        assert!(s.contains("a"));
        assert_eq!(s.get_int("a"), Some(2));
        assert_eq!(s.remove("a"), Some(Value::Int(2)));
        assert!(!s.contains("a"));
    }

    #[test]
    fn typed_accessors() {
        let mut s = DataState::new();
        s.set("n", Value::Int(5));
        s.set("s", Value::Str("x".into()));
        assert_eq!(s.get_int("n"), Some(5));
        assert_eq!(s.get_int("s"), None);
        assert_eq!(s.get_str("s"), Some("x"));
        assert_eq!(s.get_str("missing"), None);
    }

    #[test]
    fn canonical_encoding_ignores_insertion_order() {
        let mut a = DataState::new();
        a.set("x", Value::Int(1));
        a.set("y", Value::Int(2));
        let mut b = DataState::new();
        b.set("y", Value::Int(2));
        b.set("x", Value::Int(1));
        assert_eq!(to_wire(&a), to_wire(&b));
    }

    #[test]
    fn wire_round_trip() {
        let s: DataState = [
            ("k1".to_string(), Value::Int(-1)),
            ("k2".to_string(), Value::List(vec![Value::Bool(true)])),
        ]
        .into_iter()
        .collect();
        assert_eq!(from_wire::<DataState>(&to_wire(&s)).unwrap(), s);
    }

    #[test]
    fn display() {
        let mut s = DataState::new();
        s.set("b", Value::Int(2));
        s.set("a", Value::Int(1));
        assert_eq!(s.to_string(), "{a=1, b=2}");
        assert_eq!(DataState::new().to_string(), "{}");
    }

    #[test]
    fn extend_and_iter() {
        let mut s = DataState::new();
        s.extend([
            ("z".to_string(), Value::Int(1)),
            ("a".to_string(), Value::Int(2)),
        ]);
        let keys: Vec<&str> = s.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a", "z"]);
    }
}
