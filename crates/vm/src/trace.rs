//! Execution traces in the style of Vigna's cryptographic traces.
//!
//! A trace is a list of pairs `(n, s)` where `n` identifies the executed
//! statement and `s` — present only for statements that modify agent state
//! using information from outside the agent — records the injected values
//! (Fig. 3 of the paper). The paper also discusses a *reduced* trace without
//! statement identifiers, arguing identifiers prove nothing an attacker
//! could not fabricate; both forms are supported here, plus `Off` for
//! untraced execution.

use std::fmt;

use refstate_wire::{Decode, Encode, Reader, WireError, Writer};

use crate::value::Value;

/// How much the interpreter records while executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceMode {
    /// Record nothing.
    #[default]
    Off,
    /// Record only input events (the paper's reduced trace: "a modified
    /// trace without statement identifiers").
    InputsOnly,
    /// Record every executed statement identifier plus input events
    /// (Vigna's original format).
    Full,
}

/// One trace entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEntry {
    /// Statement `pc` executed (only in [`TraceMode::Full`]).
    Stmt {
        /// The statement identifier (program counter).
        pc: u64,
    },
    /// Statement `pc` injected an external value into the agent.
    InputWrite {
        /// The statement identifier (program counter).
        pc: u64,
        /// A label for the input slot (tag, syscall, or partner).
        slot: String,
        /// The injected value.
        value: Value,
    },
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEntry::Stmt { pc } => write!(f, "{pc}"),
            TraceEntry::InputWrite { pc, slot, value } => write!(f, "{pc} {slot}={value}"),
        }
    }
}

impl Encode for TraceEntry {
    fn encode(&self, w: &mut Writer) {
        match self {
            TraceEntry::Stmt { pc } => {
                w.put_u8(0);
                w.put_u64(*pc);
            }
            TraceEntry::InputWrite { pc, slot, value } => {
                w.put_u8(1);
                w.put_u64(*pc);
                w.put_str(slot);
                value.encode(w);
            }
        }
    }
}

impl Decode for TraceEntry {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.take_u8()? {
            0 => TraceEntry::Stmt { pc: r.take_u64()? },
            1 => TraceEntry::InputWrite {
                pc: r.take_u64()?,
                slot: r.take_str()?.to_owned(),
                value: Value::decode(r)?,
            },
            tag => {
                return Err(WireError::InvalidTag {
                    context: "TraceEntry",
                    tag,
                })
            }
        })
    }
}

/// A recorded execution trace.
///
/// # Examples
///
/// ```
/// use refstate_vm::{Trace, TraceEntry, TraceMode, Value};
///
/// let mut t = Trace::new(TraceMode::Full);
/// t.push(TraceEntry::Stmt { pc: 10 });
/// t.push(TraceEntry::InputWrite { pc: 13, slot: "k".into(), value: Value::Int(2) });
/// assert_eq!(t.render(), "10\n13 k=2\n");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    mode: TraceMode,
    entries: Vec<TraceEntry>,
}

impl Trace {
    /// Creates an empty trace for the given mode.
    pub fn new(mode: TraceMode) -> Self {
        Trace {
            mode,
            entries: Vec::new(),
        }
    }

    /// The recording mode.
    pub fn mode(&self) -> TraceMode {
        self.mode
    }

    /// Appends an entry.
    pub fn push(&mut self, entry: TraceEntry) {
        self.entries.push(entry);
    }

    /// The entries in execution order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// The number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Renders the trace as the paper's Fig.-3b-style listing, one entry
    /// per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }

    /// Drops statement identifiers, converting a full trace to the reduced
    /// form the paper recommends for performance.
    pub fn reduced(&self) -> Trace {
        Trace {
            mode: TraceMode::InputsOnly,
            entries: self
                .entries
                .iter()
                .filter(|e| matches!(e, TraceEntry::InputWrite { .. }))
                .cloned()
                .collect(),
        }
    }
}

impl Encode for Trace {
    fn encode(&self, w: &mut Writer) {
        let mode = match self.mode {
            TraceMode::Off => 0u8,
            TraceMode::InputsOnly => 1,
            TraceMode::Full => 2,
        };
        w.put_u8(mode);
        self.entries.encode(w);
    }
}

impl Decode for Trace {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let mode = match r.take_u8()? {
            0 => TraceMode::Off,
            1 => TraceMode::InputsOnly,
            2 => TraceMode::Full,
            tag => {
                return Err(WireError::InvalidTag {
                    context: "TraceMode",
                    tag,
                })
            }
        };
        Ok(Trace {
            mode,
            entries: Vec::<TraceEntry>::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refstate_wire::{from_wire, to_wire};

    #[test]
    fn push_and_render() {
        let mut t = Trace::new(TraceMode::Full);
        assert!(t.is_empty());
        t.push(TraceEntry::Stmt { pc: 11 });
        t.push(TraceEntry::InputWrite {
            pc: 13,
            slot: "x".into(),
            value: Value::Int(5),
        });
        assert_eq!(t.len(), 2);
        assert_eq!(t.render(), "11\n13 x=5\n");
    }

    #[test]
    fn reduced_drops_stmt_entries() {
        let mut t = Trace::new(TraceMode::Full);
        t.push(TraceEntry::Stmt { pc: 1 });
        t.push(TraceEntry::InputWrite {
            pc: 2,
            slot: "a".into(),
            value: Value::Int(1),
        });
        t.push(TraceEntry::Stmt { pc: 3 });
        let r = t.reduced();
        assert_eq!(r.mode(), TraceMode::InputsOnly);
        assert_eq!(r.len(), 1);
        assert!(matches!(
            r.entries()[0],
            TraceEntry::InputWrite { pc: 2, .. }
        ));
    }

    #[test]
    fn wire_round_trip() {
        let mut t = Trace::new(TraceMode::InputsOnly);
        t.push(TraceEntry::InputWrite {
            pc: 7,
            slot: "k".into(),
            value: Value::Bool(true),
        });
        assert_eq!(from_wire::<Trace>(&to_wire(&t)).unwrap(), t);
        let empty = Trace::new(TraceMode::Off);
        assert_eq!(from_wire::<Trace>(&to_wire(&empty)).unwrap(), empty);
    }

    #[test]
    fn wire_rejects_bad_mode() {
        assert!(from_wire::<Trace>(&[9, 0, 0, 0, 0]).is_err());
    }
}
