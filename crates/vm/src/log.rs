//! Input and output logs of an execution session, and the canonical
//! session fingerprint derived from them.

use std::fmt;

use refstate_wire::{to_wire, Decode, Encode, Reader, WireError, Writer};

use crate::instr::SyscallKind;
use crate::program::Program;
use crate::state::DataState;
use crate::value::Value;

/// FNV-1a over 128 bits: the content hash used for session fingerprints
/// and the compiled-program cache key.
///
/// Deliberately *not* cryptographic — fingerprints key replay caches and
/// label log lines; integrity claims stay on the SHA-256 digests the
/// protocols sign. 128 bits keeps accidental collisions out of reach for
/// any realistic fleet size.
pub(crate) fn fnv128(bytes: &[u8]) -> u128 {
    const OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= b as u128;
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// The canonical identity of one (re-)execution session: program digest ×
/// start-state digest × input-log digest.
///
/// Two sessions with equal fingerprints are the same deterministic
/// computation — re-executing either from its recorded input must produce
/// the same resulting state — which is exactly the key a replay cache
/// needs to collapse the redundant re-executions the verification drivers
/// perform (the paper's reference-state recomputation, Sec. 4).
///
/// # Examples
///
/// ```
/// use refstate_vm::{assemble, DataState, InputLog, SessionFingerprint};
///
/// let program = assemble("halt")?;
/// let a = SessionFingerprint::new(&program, &DataState::new(), &InputLog::new());
/// let b = SessionFingerprint::new(&program, &DataState::new(), &InputLog::new());
/// assert_eq!(a, b);
/// assert!(a.label().starts_with("fp-"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionFingerprint {
    /// Content hash of the program's canonical encoding.
    pub program: u128,
    /// Content hash of the session's initial data state.
    pub start_state: u128,
    /// Content hash of the recorded session input.
    pub input: u128,
}

impl SessionFingerprint {
    /// Fingerprints a session from its three components.
    pub fn new(program: &Program, start_state: &DataState, input: &InputLog) -> Self {
        Self::with_program_hash(fnv128(&to_wire(program)), start_state, input)
    }

    /// Fingerprints a session reusing an already-computed program hash
    /// (see [`crate::CompiledProgram::code_hash`]): re-execution drivers
    /// hash the code once per program, not once per session.
    pub fn with_program_hash(program: u128, start_state: &DataState, input: &InputLog) -> Self {
        SessionFingerprint {
            program,
            start_state: fnv128(&to_wire(start_state)),
            input: fnv128(&to_wire(input)),
        }
    }

    /// A short, log-friendly label (`fp-xxxxxxxxxxxxxxxx`) mixing all
    /// three components; used as the [`crate::ExecConfig::session_label`]
    /// of replay runs.
    pub fn label(&self) -> String {
        let mixed = (self.program ^ self.start_state.rotate_left(43) ^ self.input.rotate_left(87))
            as u64
            ^ (self.program >> 64) as u64;
        format!("fp-{mixed:016x}")
    }
}

impl fmt::Display for SessionFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// How a value entered the agent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InputKind {
    /// `input <tag>` — data received via the current host.
    Tagged(String),
    /// `syscall time` / `syscall random` — host service result.
    Syscall(SyscallKind),
    /// `recv <partner>` — a message from a communication partner.
    Message(String),
}

impl fmt::Display for InputKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InputKind::Tagged(tag) => write!(f, "input:{tag}"),
            InputKind::Syscall(k) => write!(f, "syscall:{k}"),
            InputKind::Message(p) => write!(f, "recv:{p}"),
        }
    }
}

impl Encode for InputKind {
    fn encode(&self, w: &mut Writer) {
        match self {
            InputKind::Tagged(tag) => {
                w.put_u8(0);
                w.put_str(tag);
            }
            InputKind::Syscall(SyscallKind::Time) => w.put_u8(1),
            InputKind::Syscall(SyscallKind::Random) => w.put_u8(2),
            InputKind::Message(p) => {
                w.put_u8(3);
                w.put_str(p);
            }
        }
    }
}

impl Decode for InputKind {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.take_u8()? {
            0 => InputKind::Tagged(r.take_str()?.to_owned()),
            1 => InputKind::Syscall(SyscallKind::Time),
            2 => InputKind::Syscall(SyscallKind::Random),
            3 => InputKind::Message(r.take_str()?.to_owned()),
            tag => {
                return Err(WireError::InvalidTag {
                    context: "InputKind",
                    tag,
                })
            }
        })
    }
}

/// One recorded input: where it happened, how it entered, and the value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InputRecord {
    /// Program counter of the consuming instruction.
    pub pc: u64,
    /// How the value entered the agent.
    pub kind: InputKind,
    /// The value itself.
    pub value: Value,
}

impl Encode for InputRecord {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.pc);
        self.kind.encode(w);
        self.value.encode(w);
    }
}

impl Decode for InputRecord {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(InputRecord {
            pc: r.take_u64()?,
            kind: InputKind::decode(r)?,
            value: Value::decode(r)?,
        })
    }
}

/// The complete input of one execution session, in consumption order.
///
/// This is the reference data that makes re-execution deterministic: the
/// paper defines session input as "all the data injected from the outside
/// of the agent", including communication and system-call results.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct InputLog {
    records: Vec<InputRecord>,
}

impl InputLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        InputLog {
            records: Vec::new(),
        }
    }

    /// Appends a record.
    pub fn record(&mut self, record: InputRecord) {
        self.records.push(record);
    }

    /// The records in consumption order.
    pub fn records(&self) -> &[InputRecord] {
        &self.records
    }

    /// The number of recorded inputs.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if the session consumed no input.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

impl FromIterator<InputRecord> for InputLog {
    fn from_iter<I: IntoIterator<Item = InputRecord>>(iter: I) -> Self {
        InputLog {
            records: iter.into_iter().collect(),
        }
    }
}

impl Encode for InputLog {
    fn encode(&self, w: &mut Writer) {
        self.records.encode(w);
    }
}

impl Decode for InputLog {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(InputLog {
            records: Vec::<InputRecord>::decode(r)?,
        })
    }
}

/// One message the agent sent to a partner (an *output* effect).
///
/// Outputs are not inputs to re-execution — they are recorded so a checker
/// can compare what a host *claims* the agent said against what the
/// re-execution actually says (the paper's §4.1 notes resulting-state-only
/// checking lets hosts lie about sent messages).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutputRecord {
    /// Program counter of the sending instruction.
    pub pc: u64,
    /// The destination partner.
    pub partner: String,
    /// The sent value.
    pub value: Value,
}

impl Encode for OutputRecord {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.pc);
        w.put_str(&self.partner);
        self.value.encode(w);
    }
}

impl Decode for OutputRecord {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(OutputRecord {
            pc: r.take_u64()?,
            partner: r.take_str()?.to_owned(),
            value: Value::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refstate_wire::{from_wire, to_wire};

    fn sample_log() -> InputLog {
        [
            InputRecord {
                pc: 0,
                kind: InputKind::Tagged("price".into()),
                value: Value::Int(10),
            },
            InputRecord {
                pc: 3,
                kind: InputKind::Syscall(SyscallKind::Random),
                value: Value::Int(99),
            },
            InputRecord {
                pc: 9,
                kind: InputKind::Message("shop".into()),
                value: Value::Str("ok".into()),
            },
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn log_round_trip() {
        let log = sample_log();
        assert_eq!(from_wire::<InputLog>(&to_wire(&log)).unwrap(), log);
        assert_eq!(log.len(), 3);
        assert!(!log.is_empty());
    }

    #[test]
    fn record_appends_in_order() {
        let mut log = InputLog::new();
        assert!(log.is_empty());
        log.record(InputRecord {
            pc: 1,
            kind: InputKind::Tagged("a".into()),
            value: Value::Int(1),
        });
        log.record(InputRecord {
            pc: 2,
            kind: InputKind::Tagged("b".into()),
            value: Value::Int(2),
        });
        assert_eq!(log.records()[0].pc, 1);
        assert_eq!(log.records()[1].pc, 2);
    }

    #[test]
    fn kind_display() {
        assert_eq!(InputKind::Tagged("p".into()).to_string(), "input:p");
        assert_eq!(
            InputKind::Syscall(SyscallKind::Time).to_string(),
            "syscall:time"
        );
        assert_eq!(InputKind::Message("m".into()).to_string(), "recv:m");
    }

    #[test]
    fn output_record_round_trip() {
        let rec = OutputRecord {
            pc: 5,
            partner: "bank".into(),
            value: Value::Int(100),
        };
        assert_eq!(from_wire::<OutputRecord>(&to_wire(&rec)).unwrap(), rec);
    }

    #[test]
    fn kind_bad_tag_rejected() {
        assert!(from_wire::<InputKind>(&[9]).is_err());
    }

    #[test]
    fn fingerprint_separates_components() {
        use crate::asm::assemble;
        let p1 = assemble("halt").unwrap();
        let p2 = assemble("nop\nhalt").unwrap();
        let s1 = DataState::new();
        let mut s2 = DataState::new();
        s2.set("x", Value::Int(1));
        let l1 = InputLog::new();
        let l2 = sample_log();

        let base = SessionFingerprint::new(&p1, &s1, &l1);
        assert_eq!(base, SessionFingerprint::new(&p1, &s1, &l1));
        assert_ne!(base, SessionFingerprint::new(&p2, &s1, &l1));
        assert_ne!(base, SessionFingerprint::new(&p1, &s2, &l1));
        assert_ne!(base, SessionFingerprint::new(&p1, &s1, &l2));
        assert_eq!(base.to_string(), base.label());
    }

    #[test]
    fn fnv128_is_stable_and_input_sensitive() {
        assert_eq!(fnv128(b""), 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d);
        assert_ne!(fnv128(b"a"), fnv128(b"b"));
        assert_ne!(fnv128(b"ab"), fnv128(b"ba"));
    }
}
