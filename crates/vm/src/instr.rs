//! The instruction set.

use std::fmt;

use refstate_wire::{Decode, Encode, Reader, WireError, Writer};

use crate::value::Value;

/// Host services an agent can call.
///
/// Both are *input-class* effects: their results are nondeterministic from
/// the agent's point of view and are therefore recorded in the input log —
/// the paper explicitly lists "results from system calls like random numbers
/// or the current system time" as session input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyscallKind {
    /// The host's current time (milliseconds).
    Time,
    /// A host-supplied random number.
    Random,
}

impl SyscallKind {
    /// The assembly-level name.
    pub fn name(&self) -> &'static str {
        match self {
            SyscallKind::Time => "time",
            SyscallKind::Random => "random",
        }
    }
}

impl fmt::Display for SyscallKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A bytecode instruction.
///
/// The machine is a conventional stack machine; the agent-specific
/// instructions are the effectful ones at the bottom: [`Instr::Input`],
/// [`Instr::Syscall`], [`Instr::Send`], [`Instr::Recv`] (the session-input
/// boundary) and [`Instr::Migrate`] / [`Instr::Halt`] (session ends).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Instr {
    // --- stack & variables ---
    /// Push a constant.
    Push(Value),
    /// Push the value of a variable.
    Load(String),
    /// Pop into a variable.
    Store(String),
    /// Remove a variable from the data state.
    Delete(String),
    /// Discard the top of stack.
    Pop,
    /// Duplicate the top of stack.
    Dup,
    /// Swap the top two stack values.
    Swap,

    // --- arithmetic (Int × Int → Int, wrapping) ---
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Integer division.
    Div,
    /// Remainder.
    Mod,
    /// Negation.
    Neg,

    // --- comparison & logic ---
    /// Equality on any pair of same-typed values.
    Eq,
    /// Inequality.
    Ne,
    /// Less-than on ints or strings.
    Lt,
    /// Less-or-equal on ints or strings.
    Le,
    /// Greater-than on ints or strings.
    Gt,
    /// Greater-or-equal on ints or strings.
    Ge,
    /// Boolean conjunction.
    And,
    /// Boolean disjunction.
    Or,
    /// Boolean negation.
    Not,

    // --- strings ---
    /// Concatenate two strings.
    Concat,
    /// String length (chars).
    StrLen,
    /// Convert any value to its display string.
    ToStr,

    // --- lists ---
    /// Push an empty list.
    ListNew,
    /// `(list, v)` → list with `v` appended.
    ListPush,
    /// `(list, idx)` → element.
    ListGet,
    /// `(list, idx, v)` → list with element replaced.
    ListSet,
    /// `(list)` → length as Int.
    ListLen,

    // --- control flow ---
    /// Unconditional jump to an instruction index.
    Jump(usize),
    /// Pop a bool; jump when `false`.
    JumpIfFalse(usize),
    /// Pop a bool; jump when `true`.
    JumpIfTrue(usize),
    /// Call a subroutine (pushes the return address).
    Call(usize),
    /// Return from a subroutine.
    Ret,
    /// Do nothing.
    Nop,

    // --- session effects ---
    /// Pull the next external input value for a tag (recorded as input).
    Input(String),
    /// Call a host service (recorded as input).
    Syscall(SyscallKind),
    /// Pop a value and send it to a named partner (output effect;
    /// suppressed during re-execution).
    Send(String),
    /// Receive a value from a named partner (recorded as input).
    Recv(String),
    /// Pop a string host name and end the session by migrating there.
    Migrate,
    /// End the session; the agent's task is complete.
    Halt,
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Push(v) => write!(f, "push {v}"),
            Instr::Load(n) => write!(f, "load {n:?}"),
            Instr::Store(n) => write!(f, "store {n:?}"),
            Instr::Delete(n) => write!(f, "delete {n:?}"),
            Instr::Pop => f.write_str("pop"),
            Instr::Dup => f.write_str("dup"),
            Instr::Swap => f.write_str("swap"),
            Instr::Add => f.write_str("add"),
            Instr::Sub => f.write_str("sub"),
            Instr::Mul => f.write_str("mul"),
            Instr::Div => f.write_str("div"),
            Instr::Mod => f.write_str("mod"),
            Instr::Neg => f.write_str("neg"),
            Instr::Eq => f.write_str("eq"),
            Instr::Ne => f.write_str("ne"),
            Instr::Lt => f.write_str("lt"),
            Instr::Le => f.write_str("le"),
            Instr::Gt => f.write_str("gt"),
            Instr::Ge => f.write_str("ge"),
            Instr::And => f.write_str("and"),
            Instr::Or => f.write_str("or"),
            Instr::Not => f.write_str("not"),
            Instr::Concat => f.write_str("concat"),
            Instr::StrLen => f.write_str("strlen"),
            Instr::ToStr => f.write_str("tostr"),
            Instr::ListNew => f.write_str("listnew"),
            Instr::ListPush => f.write_str("listpush"),
            Instr::ListGet => f.write_str("listget"),
            Instr::ListSet => f.write_str("listset"),
            Instr::ListLen => f.write_str("listlen"),
            Instr::Jump(t) => write!(f, "jump {t}"),
            Instr::JumpIfFalse(t) => write!(f, "jz {t}"),
            Instr::JumpIfTrue(t) => write!(f, "jnz {t}"),
            Instr::Call(t) => write!(f, "call {t}"),
            Instr::Ret => f.write_str("ret"),
            Instr::Nop => f.write_str("nop"),
            Instr::Input(tag) => write!(f, "input {tag:?}"),
            Instr::Syscall(k) => write!(f, "syscall {k}"),
            Instr::Send(p) => write!(f, "send {p:?}"),
            Instr::Recv(p) => write!(f, "recv {p:?}"),
            Instr::Migrate => f.write_str("migrate"),
            Instr::Halt => f.write_str("halt"),
        }
    }
}

macro_rules! instr_tags {
    ($($tag:literal => $name:ident),* $(,)?) => {
        impl Instr {
            fn tag(&self) -> u8 {
                match self {
                    Instr::Push(_) => 0,
                    Instr::Load(_) => 1,
                    Instr::Store(_) => 2,
                    Instr::Delete(_) => 3,
                    Instr::Jump(_) => 30,
                    Instr::JumpIfFalse(_) => 31,
                    Instr::JumpIfTrue(_) => 32,
                    Instr::Call(_) => 33,
                    Instr::Input(_) => 40,
                    Instr::Syscall(_) => 41,
                    Instr::Send(_) => 42,
                    Instr::Recv(_) => 43,
                    $(Instr::$name => $tag,)*
                }
            }
        }
    };
}

instr_tags! {
    4 => Pop, 5 => Dup, 6 => Swap,
    10 => Add, 11 => Sub, 12 => Mul, 13 => Div, 14 => Mod, 15 => Neg,
    16 => Eq, 17 => Ne, 18 => Lt, 19 => Le, 20 => Gt, 21 => Ge,
    22 => And, 23 => Or, 24 => Not,
    25 => Concat, 26 => StrLen, 27 => ToStr,
    34 => Ret, 35 => Nop,
    36 => ListNew, 37 => ListPush, 38 => ListGet, 39 => ListSet,
    44 => Migrate, 45 => Halt, 46 => ListLen,
}

impl Encode for Instr {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(self.tag());
        match self {
            Instr::Push(v) => v.encode(w),
            Instr::Load(n) | Instr::Store(n) | Instr::Delete(n) => w.put_str(n),
            Instr::Jump(t) | Instr::JumpIfFalse(t) | Instr::JumpIfTrue(t) | Instr::Call(t) => {
                w.put_u64(*t as u64)
            }
            Instr::Input(s) | Instr::Send(s) | Instr::Recv(s) => w.put_str(s),
            Instr::Syscall(k) => w.put_u8(match k {
                SyscallKind::Time => 0,
                SyscallKind::Random => 1,
            }),
            _ => {}
        }
    }
}

impl Decode for Instr {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let tag = r.take_u8()?;
        Ok(match tag {
            0 => Instr::Push(Value::decode(r)?),
            1 => Instr::Load(r.take_str()?.to_owned()),
            2 => Instr::Store(r.take_str()?.to_owned()),
            3 => Instr::Delete(r.take_str()?.to_owned()),
            4 => Instr::Pop,
            5 => Instr::Dup,
            6 => Instr::Swap,
            10 => Instr::Add,
            11 => Instr::Sub,
            12 => Instr::Mul,
            13 => Instr::Div,
            14 => Instr::Mod,
            15 => Instr::Neg,
            16 => Instr::Eq,
            17 => Instr::Ne,
            18 => Instr::Lt,
            19 => Instr::Le,
            20 => Instr::Gt,
            21 => Instr::Ge,
            22 => Instr::And,
            23 => Instr::Or,
            24 => Instr::Not,
            25 => Instr::Concat,
            26 => Instr::StrLen,
            27 => Instr::ToStr,
            30 => Instr::Jump(r.take_u64()? as usize),
            31 => Instr::JumpIfFalse(r.take_u64()? as usize),
            32 => Instr::JumpIfTrue(r.take_u64()? as usize),
            33 => Instr::Call(r.take_u64()? as usize),
            34 => Instr::Ret,
            35 => Instr::Nop,
            36 => Instr::ListNew,
            37 => Instr::ListPush,
            38 => Instr::ListGet,
            39 => Instr::ListSet,
            40 => Instr::Input(r.take_str()?.to_owned()),
            41 => Instr::Syscall(match r.take_u8()? {
                0 => SyscallKind::Time,
                1 => SyscallKind::Random,
                t => {
                    return Err(WireError::InvalidTag {
                        context: "SyscallKind",
                        tag: t,
                    })
                }
            }),
            42 => Instr::Send(r.take_str()?.to_owned()),
            43 => Instr::Recv(r.take_str()?.to_owned()),
            44 => Instr::Migrate,
            45 => Instr::Halt,
            46 => Instr::ListLen,
            t => {
                return Err(WireError::InvalidTag {
                    context: "Instr",
                    tag: t,
                })
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refstate_wire::{from_wire, to_wire};

    fn all_instrs() -> Vec<Instr> {
        vec![
            Instr::Push(Value::Int(1)),
            Instr::Load("x".into()),
            Instr::Store("x".into()),
            Instr::Delete("x".into()),
            Instr::Pop,
            Instr::Dup,
            Instr::Swap,
            Instr::Add,
            Instr::Sub,
            Instr::Mul,
            Instr::Div,
            Instr::Mod,
            Instr::Neg,
            Instr::Eq,
            Instr::Ne,
            Instr::Lt,
            Instr::Le,
            Instr::Gt,
            Instr::Ge,
            Instr::And,
            Instr::Or,
            Instr::Not,
            Instr::Concat,
            Instr::StrLen,
            Instr::ToStr,
            Instr::ListNew,
            Instr::ListPush,
            Instr::ListGet,
            Instr::ListSet,
            Instr::ListLen,
            Instr::Jump(3),
            Instr::JumpIfFalse(4),
            Instr::JumpIfTrue(5),
            Instr::Call(6),
            Instr::Ret,
            Instr::Nop,
            Instr::Input("price".into()),
            Instr::Syscall(SyscallKind::Time),
            Instr::Syscall(SyscallKind::Random),
            Instr::Send("shop".into()),
            Instr::Recv("shop".into()),
            Instr::Migrate,
            Instr::Halt,
        ]
    }

    #[test]
    fn every_instruction_round_trips() {
        for instr in all_instrs() {
            let bytes = to_wire(&instr);
            assert_eq!(from_wire::<Instr>(&bytes).unwrap(), instr, "{instr}");
        }
    }

    #[test]
    fn tags_are_unique() {
        use std::collections::BTreeSet;
        // Two Syscall instructions share one tag (the payload distinguishes
        // them); every other instruction must have a distinct tag byte.
        let tags: Vec<u8> = all_instrs()
            .iter()
            .filter(|i| !matches!(i, Instr::Syscall(SyscallKind::Random)))
            .map(|i| i.tag())
            .collect();
        let set: BTreeSet<u8> = tags.iter().copied().collect();
        assert_eq!(set.len(), tags.len(), "duplicate instruction tags");
    }

    #[test]
    fn display_is_assembly_like() {
        assert_eq!(Instr::Push(Value::Int(5)).to_string(), "push 5");
        assert_eq!(Instr::Jump(3).to_string(), "jump 3");
        assert_eq!(Instr::Input("p".into()).to_string(), "input \"p\"");
        assert_eq!(
            Instr::Syscall(SyscallKind::Random).to_string(),
            "syscall random"
        );
    }

    #[test]
    fn bad_tag_rejected() {
        assert!(from_wire::<Instr>(&[200]).is_err());
        assert!(from_wire::<Instr>(&[41, 9]).is_err()); // bad syscall kind
    }
}
