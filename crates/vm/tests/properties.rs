//! Property tests for the VM: replay determinism (the property the whole
//! protection scheme rests on), trace/log consistency, snapshot-resume
//! equivalence, and assembler round-trips.

use proptest::prelude::*;
use refstate_vm::{
    assemble, run_compiled_session, run_session, CompiledProgram, DataState, ExecConfig, Instr,
    Interpreter, NullIo, Program, ReplayIo, ScriptedIo, SessionEnd, TraceEntry, TraceMode, Value,
};

/// Strategy: a random but always-valid straight-line program fragment that
/// manipulates one accumulator variable and consumes external inputs.
fn program_spec() -> impl Strategy<Value = (Vec<i64>, Vec<u8>)> {
    (
        proptest::collection::vec(-1000i64..1000, 1..20),
        proptest::collection::vec(0u8..4, 0..30),
    )
}

/// Builds a program from an op list: each op consumes the accumulator and
/// maybe an input.
fn build_program(ops: &[u8], input_count: usize) -> Program {
    let mut src = String::from("push 0\nstore \"acc\"\n");
    let mut inputs_used = 0usize;
    for op in ops {
        match op % 4 {
            0 => src.push_str("load \"acc\"\npush 3\nadd\nstore \"acc\"\n"),
            1 => src.push_str("load \"acc\"\npush 2\nmul\nstore \"acc\"\n"),
            2 => src.push_str("load \"acc\"\nneg\nstore \"acc\"\n"),
            _ => {
                if inputs_used < input_count {
                    src.push_str("input \"x\"\nload \"acc\"\nadd\nstore \"acc\"\n");
                    inputs_used += 1;
                }
            }
        }
    }
    src.push_str("syscall random\nstore \"r\"\nhalt\n");
    assemble(&src).expect("generated program assembles")
}

proptest! {
    /// Live run then replay from the recorded input log must agree in every
    /// observable: resulting state, end, and step count.
    #[test]
    fn replay_reproduces_everything((inputs, ops) in program_spec()) {
        let program = build_program(&ops, inputs.len());
        let mut io = ScriptedIo::new();
        for v in &inputs {
            io.push_input("x", Value::Int(*v));
        }
        let live = run_session(&program, DataState::new(), &mut io, &ExecConfig::default()).unwrap();

        let mut replay = ReplayIo::new(&live.input_log);
        let replayed = run_session(&program, DataState::new(), &mut replay, &ExecConfig::default()).unwrap();

        prop_assert_eq!(&replayed.state, &live.state);
        prop_assert_eq!(&replayed.end, &live.end);
        prop_assert_eq!(replayed.steps, live.steps);
        prop_assert!(replay.fully_consumed());
    }

    /// Tampering any single input-log value changes the resulting state or
    /// fails the replay — the recorded input pins the computation.
    #[test]
    fn tampered_input_log_is_visible((inputs, ops) in program_spec(), delta in 1i64..100) {
        let program = build_program(&ops, inputs.len());
        let mut io = ScriptedIo::new();
        for v in &inputs {
            io.push_input("x", Value::Int(*v));
        }
        let live = run_session(&program, DataState::new(), &mut io, &ExecConfig::default()).unwrap();
        prop_assume!(!live.input_log.is_empty());

        // Forge the first tagged input record.
        let mut records: Vec<_> = live.input_log.records().to_vec();
        let target = records.iter().position(|r| matches!(r.kind, refstate_vm::InputKind::Tagged(_)));
        prop_assume!(target.is_some());
        let target = target.unwrap();
        if let Value::Int(v) = records[target].value {
            records[target].value = Value::Int(v + delta);
        }
        let forged: refstate_vm::InputLog = records.into_iter().collect();

        let mut replay = ReplayIo::new(&forged);
        // An Err is also acceptable: the forged log fails to replay.
        if let Ok(outcome) = run_session(&program, DataState::new(), &mut replay, &ExecConfig::default()) {
            // The accumulator is a function of the inputs: an altered
            // input must surface... unless this op sequence never uses
            // the forged input's value (e.g. a later multiply-by-zero
            // cannot happen here since ops never zero the acc after an
            // input-add; the only masking op is `mul` by 2 / neg, both
            // injective). So the state must differ.
            prop_assert_ne!(outcome.state, live.state);
        }
    }

    /// The compiled flat-dispatch loop is observationally identical to the
    /// pinned step interpreter: same state, end, input log, outputs,
    /// trace, and step count on random programs, under every trace mode.
    #[test]
    fn compiled_loop_matches_interpreter((inputs, ops) in program_spec()) {
        let program = build_program(&ops, inputs.len());
        let compiled = CompiledProgram::compile(&program);
        for trace_mode in [TraceMode::Off, TraceMode::InputsOnly, TraceMode::Full] {
            let config = ExecConfig { trace_mode, ..Default::default() };
            let scripted = || {
                let mut io = ScriptedIo::new();
                for v in &inputs {
                    io.push_input("x", Value::Int(*v));
                }
                io
            };
            let reference = run_session(&program, DataState::new(), &mut scripted(), &config).unwrap();
            let fast = run_compiled_session(&compiled, DataState::new(), &mut scripted(), &config).unwrap();
            prop_assert_eq!(&fast.state, &reference.state);
            prop_assert_eq!(&fast.end, &reference.end);
            prop_assert_eq!(&fast.input_log, &reference.input_log);
            prop_assert_eq!(&fast.outputs, &reference.outputs);
            prop_assert_eq!(&fast.trace, &reference.trace);
            prop_assert_eq!(fast.steps, reference.steps);
        }
    }

    /// Full traces contain exactly one `Stmt` entry per executed step plus
    /// one `InputWrite` per consumed input.
    #[test]
    fn trace_accounting((inputs, ops) in program_spec()) {
        let program = build_program(&ops, inputs.len());
        let mut io = ScriptedIo::new();
        for v in &inputs {
            io.push_input("x", Value::Int(*v));
        }
        let config = ExecConfig { trace_mode: TraceMode::Full, ..Default::default() };
        let out = run_session(&program, DataState::new(), &mut io, &config).unwrap();
        let stmts = out.trace.entries().iter().filter(|e| matches!(e, TraceEntry::Stmt { .. })).count();
        let writes = out.trace.entries().iter().filter(|e| matches!(e, TraceEntry::InputWrite { .. })).count();
        prop_assert_eq!(stmts as u64, out.steps);
        prop_assert_eq!(writes, out.input_log.len());
        // The reduced trace is exactly the input-only projection.
        prop_assert_eq!(out.trace.reduced().len(), writes);
    }

    /// Stopping an interpreter at an arbitrary step boundary, capturing the
    /// machine state, and resuming in a fresh interpreter reaches the same
    /// final state as running straight through.
    #[test]
    fn snapshot_resume_equivalence((inputs, ops) in program_spec(), cut in 0usize..40) {
        let program = build_program(&ops, inputs.len());
        let fill = |io: &mut ScriptedIo| {
            for v in &inputs {
                io.push_input("x", Value::Int(*v));
            }
        };

        // Straight run.
        let mut io = ScriptedIo::new();
        fill(&mut io);
        let straight = run_session(&program, DataState::new(), &mut io, &ExecConfig::default()).unwrap();

        // Split run: execute `cut` steps, snapshot, resume.
        let mut io = ScriptedIo::new();
        fill(&mut io);
        let mut first = Interpreter::new(&program, DataState::new(), ExecConfig::default());
        let mut ended_early = None;
        for _ in 0..cut {
            if let Some(end) = first.step(&mut io).unwrap() { ended_early = Some(end); break; }
        }
        let end = match ended_early {
            Some(end) => {
                prop_assert_eq!(&end, &straight.end);
                prop_assert_eq!(first.state(), &straight.state);
                return Ok(());
            }
            None => {
                let snapshot = first.capture();
                let mut second = Interpreter::resume(&program, snapshot, ExecConfig::default());
                let end = second.run(&mut io).unwrap();
                prop_assert_eq!(second.state(), &straight.state);
                end
            }
        };
        prop_assert_eq!(end, straight.end);
    }

    /// Wire round-trip for arbitrary generated programs.
    #[test]
    fn program_wire_round_trip((inputs, ops) in program_spec()) {
        let program = build_program(&ops, inputs.len());
        let bytes = refstate_wire::to_wire(&program);
        let back: Program = refstate_wire::from_wire(&bytes).unwrap();
        prop_assert_eq!(back, program);
    }

    /// Arithmetic on the VM matches Rust's wrapping semantics.
    #[test]
    fn vm_arithmetic_matches_rust(a in any::<i64>(), b in any::<i64>()) {
        let program = Program::new(vec![
            Instr::Push(Value::Int(a)),
            Instr::Push(Value::Int(b)),
            Instr::Add,
            Instr::Store("sum".into()),
            Instr::Push(Value::Int(a)),
            Instr::Push(Value::Int(b)),
            Instr::Mul,
            Instr::Store("prod".into()),
            Instr::Push(Value::Int(a)),
            Instr::Push(Value::Int(b)),
            Instr::Sub,
            Instr::Store("diff".into()),
            Instr::Halt,
        ]).unwrap();
        let out = run_session(&program, DataState::new(), &mut NullIo, &ExecConfig::default()).unwrap();
        prop_assert_eq!(out.state.get_int("sum"), Some(a.wrapping_add(b)));
        prop_assert_eq!(out.state.get_int("prod"), Some(a.wrapping_mul(b)));
        prop_assert_eq!(out.state.get_int("diff"), Some(a.wrapping_sub(b)));
        prop_assert_eq!(out.end, SessionEnd::Halt);
    }
}
