//! A threaded network: the same [`HostNode`] interface on real OS threads
//! with crossbeam channels.
//!
//! The paper measured "migration in one address space"; this module goes
//! one step further and actually runs each host on its own thread, which
//! the threaded integration tests use to show the protocols are
//! transport-agnostic.

use std::collections::BTreeMap;
use std::thread;
use std::time::Duration;

use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};

use crate::host::HostId;
use crate::net::{HostNode, NetError, Step};

enum Envelope<M> {
    Msg { from: HostId, msg: M },
    Shutdown,
}

/// A node paired with the inbox its thread drains.
type NodeWithInbox<M> = (Box<dyn HostNode<M> + Send>, Receiver<Envelope<M>>);

/// Runs a set of nodes on one thread each until a node reports
/// [`Step::Finished`], then shuts the others down.
///
/// # Examples
///
/// ```
/// use refstate_platform::{HostId, HostNode, NetError, Step, ThreadedNetwork};
///
/// struct Relay { id: HostId, next: HostId }
/// impl HostNode<u32> for Relay {
///     fn id(&self) -> HostId { self.id.clone() }
///     fn on_message(&mut self, _from: &HostId, msg: u32) -> Result<Step<u32>, NetError> {
///         if msg == 0 { Ok(Step::Finished) }
///         else { Ok(Step::Send(vec![(self.next.clone(), msg - 1)])) }
///     }
/// }
///
/// let nodes: Vec<Box<dyn HostNode<u32> + Send>> = vec![
///     Box::new(Relay { id: HostId::new("a"), next: HostId::new("b") }),
///     Box::new(Relay { id: HostId::new("b"), next: HostId::new("a") }),
/// ];
/// let net = ThreadedNetwork::start(nodes);
/// net.inject(HostId::new("main"), HostId::new("a"), 6u32)?;
/// net.join(std::time::Duration::from_secs(5))?;
/// # Ok::<(), NetError>(())
/// ```
pub struct ThreadedNetwork<M> {
    senders: BTreeMap<HostId, Sender<Envelope<M>>>,
    done_rx: Receiver<Result<(), NetError>>,
    handles: Vec<thread::JoinHandle<()>>,
}

impl<M: Send + 'static> ThreadedNetwork<M> {
    /// Spawns one thread per node and returns the running network.
    pub fn start(nodes: Vec<Box<dyn HostNode<M> + Send>>) -> Self {
        let mut senders: BTreeMap<HostId, Sender<Envelope<M>>> = BTreeMap::new();
        let mut receivers: Vec<NodeWithInbox<M>> = Vec::new();
        for node in nodes {
            let (tx, rx) = unbounded();
            senders.insert(node.id(), tx);
            receivers.push((node, rx));
        }
        let (done_tx, done_rx) = bounded(1);

        let mut handles = Vec::new();
        for (mut node, rx) in receivers {
            let peer_senders = senders.clone();
            let done = done_tx.clone();
            let my_id = node.id();
            handles.push(thread::spawn(move || {
                while let Ok(envelope) = rx.recv() {
                    match envelope {
                        Envelope::Shutdown => break,
                        Envelope::Msg { from, msg } => match node.on_message(&from, msg) {
                            Ok(Step::Send(outgoing)) => {
                                for (dest, m) in outgoing {
                                    match peer_senders.get(&dest) {
                                        Some(tx) => {
                                            // A send failure means shutdown
                                            // already started; stop quietly.
                                            if tx
                                                .send(Envelope::Msg {
                                                    from: my_id.clone(),
                                                    msg: m,
                                                })
                                                .is_err()
                                            {
                                                return;
                                            }
                                        }
                                        None => {
                                            let _ = done
                                                .send(Err(NetError::UnknownNode { host: dest }));
                                            return;
                                        }
                                    }
                                }
                            }
                            Ok(Step::Idle) => {}
                            Ok(Step::Finished) => {
                                let _ = done.send(Ok(()));
                            }
                            Err(e) => {
                                let _ = done.send(Err(e));
                                return;
                            }
                        },
                    }
                }
            }));
        }

        ThreadedNetwork {
            senders,
            done_rx,
            handles,
        }
    }

    /// Injects a message into the running network.
    ///
    /// # Errors
    ///
    /// [`NetError::UnknownNode`] if `to` is not a registered node.
    pub fn inject(&self, from: HostId, to: HostId, msg: M) -> Result<(), NetError> {
        let tx = self
            .senders
            .get(&to)
            .ok_or_else(|| NetError::UnknownNode { host: to.clone() })?;
        tx.send(Envelope::Msg { from, msg })
            .map_err(|_| NetError::Node {
                host: to,
                detail: "node thread exited".into(),
            })
    }

    /// Waits for a node to finish, then shuts every thread down.
    ///
    /// # Errors
    ///
    /// [`NetError::Stalled`] on timeout, or the first node error.
    pub fn join(self, timeout: Duration) -> Result<(), NetError> {
        let result = match self.done_rx.recv_timeout(timeout) {
            Ok(r) => r,
            Err(RecvTimeoutError::Timeout) => Err(NetError::Stalled),
            Err(RecvTimeoutError::Disconnected) => Err(NetError::Stalled),
        };
        for tx in self.senders.values() {
            let _ = tx.send(Envelope::Shutdown);
        }
        for handle in self.handles {
            let _ = handle.join();
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Relay {
        id: HostId,
        next: HostId,
    }

    impl HostNode<u32> for Relay {
        fn id(&self) -> HostId {
            self.id.clone()
        }

        fn on_message(&mut self, _from: &HostId, msg: u32) -> Result<Step<u32>, NetError> {
            if msg == 0 {
                Ok(Step::Finished)
            } else {
                Ok(Step::Send(vec![(self.next.clone(), msg - 1)]))
            }
        }
    }

    #[test]
    fn token_ring_completes() {
        let nodes: Vec<Box<dyn HostNode<u32> + Send>> = vec![
            Box::new(Relay {
                id: HostId::new("a"),
                next: HostId::new("b"),
            }),
            Box::new(Relay {
                id: HostId::new("b"),
                next: HostId::new("c"),
            }),
            Box::new(Relay {
                id: HostId::new("c"),
                next: HostId::new("a"),
            }),
        ];
        let net = ThreadedNetwork::start(nodes);
        net.inject(HostId::new("main"), HostId::new("a"), 20)
            .unwrap();
        net.join(Duration::from_secs(10)).unwrap();
    }

    #[test]
    fn timeout_reports_stall() {
        struct Silent(HostId);
        impl HostNode<u32> for Silent {
            fn id(&self) -> HostId {
                self.0.clone()
            }
            fn on_message(&mut self, _: &HostId, _: u32) -> Result<Step<u32>, NetError> {
                Ok(Step::Idle)
            }
        }
        let nodes: Vec<Box<dyn HostNode<u32> + Send>> = vec![Box::new(Silent(HostId::new("s")))];
        let net = ThreadedNetwork::start(nodes);
        net.inject(HostId::new("main"), HostId::new("s"), 1)
            .unwrap();
        let err = net.join(Duration::from_millis(200)).unwrap_err();
        assert!(matches!(err, NetError::Stalled));
    }

    #[test]
    fn inject_to_unknown_node_fails() {
        let nodes: Vec<Box<dyn HostNode<u32> + Send>> = vec![];
        let net = ThreadedNetwork::start(nodes);
        let err = net
            .inject(HostId::new("main"), HostId::new("ghost"), 1)
            .unwrap_err();
        assert!(matches!(err, NetError::UnknownNode { .. }));
    }

    #[test]
    fn node_error_propagates() {
        struct Failing(HostId);
        impl HostNode<u32> for Failing {
            fn id(&self) -> HostId {
                self.0.clone()
            }
            fn on_message(&mut self, _: &HostId, _: u32) -> Result<Step<u32>, NetError> {
                Err(NetError::Node {
                    host: self.0.clone(),
                    detail: "exploded".into(),
                })
            }
        }
        let nodes: Vec<Box<dyn HostNode<u32> + Send>> = vec![Box::new(Failing(HostId::new("f")))];
        let net = ThreadedNetwork::start(nodes);
        net.inject(HostId::new("main"), HostId::new("f"), 1)
            .unwrap();
        let err = net.join(Duration::from_secs(5)).unwrap_err();
        assert!(matches!(err, NetError::Node { .. }));
    }
}
