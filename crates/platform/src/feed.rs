//! Per-host input feeds: the data a host supplies to visiting agents.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use refstate_crypto::Signed;
use refstate_vm::Value;

/// One queued input value, optionally carrying a producer signature.
///
/// Plain values model the common case where the *host* relays input and can
/// therefore lie about it. Signed values model the paper's §4.3 extension:
/// "input can be used that is signed by the party that produces the input",
/// which makes input forgery detectable.
#[derive(Debug, Clone)]
pub struct FeedItem {
    /// The value handed to the agent.
    pub value: Value,
    /// Producer signature over the value, when the §4.3 extension is used.
    pub provenance: Option<Signed<Value>>,
}

impl FeedItem {
    /// A plain, unsigned input item.
    pub fn plain(value: Value) -> Self {
        FeedItem {
            value,
            provenance: None,
        }
    }

    /// An input item with producer provenance.
    pub fn signed(envelope: Signed<Value>) -> Self {
        FeedItem {
            value: envelope.payload().clone(),
            provenance: Some(envelope),
        }
    }
}

/// The inputs a host will supply to an agent, keyed by input tag, plus
/// scripted partner messages.
///
/// The feed persists across sessions of the same host (an agent visiting
/// twice continues consuming where it left off), matching how a shop would
/// keep serving quotes.
///
/// # Examples
///
/// ```
/// use refstate_platform::InputFeed;
/// use refstate_vm::Value;
///
/// let mut feed = InputFeed::new();
/// feed.push("price", Value::Int(100));
/// feed.push("price", Value::Int(90));
/// assert_eq!(feed.remaining("price"), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct InputFeed {
    inputs: BTreeMap<String, VecDeque<FeedItem>>,
    messages: BTreeMap<String, VecDeque<Value>>,
}

impl InputFeed {
    /// Creates an empty feed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues a plain input value for `tag`.
    pub fn push(&mut self, tag: impl Into<String>, value: Value) -> &mut Self {
        self.inputs
            .entry(tag.into())
            .or_default()
            .push_back(FeedItem::plain(value));
        self
    }

    /// Queues a signed input value for `tag` (§4.3 extension).
    pub fn push_signed(&mut self, tag: impl Into<String>, envelope: Signed<Value>) -> &mut Self {
        self.inputs
            .entry(tag.into())
            .or_default()
            .push_back(FeedItem::signed(envelope));
        self
    }

    /// Queues a message from `partner`.
    pub fn push_message(&mut self, partner: impl Into<String>, value: Value) -> &mut Self {
        self.messages
            .entry(partner.into())
            .or_default()
            .push_back(value);
        self
    }

    /// Takes the next input for `tag`.
    pub fn take(&mut self, tag: &str) -> Option<FeedItem> {
        self.inputs.get_mut(tag).and_then(VecDeque::pop_front)
    }

    /// Takes the next message from `partner`.
    pub fn take_message(&mut self, partner: &str) -> Option<Value> {
        self.messages.get_mut(partner).and_then(VecDeque::pop_front)
    }

    /// Number of values still queued for `tag`.
    pub fn remaining(&self, tag: &str) -> usize {
        self.inputs.get(tag).map_or(0, VecDeque::len)
    }

    /// Removes the next queued value for `tag` entirely (the
    /// [`crate::Attack::DropInput`] attack).
    pub fn drop_next(&mut self, tag: &str) -> Option<FeedItem> {
        self.take(tag)
    }

    /// Replaces every queued value for `tag` with `value`, stripping any
    /// provenance (the [`crate::Attack::ForgeInput`] attack).
    pub fn forge_all(&mut self, tag: &str, value: &Value) {
        if let Some(queue) = self.inputs.get_mut(tag) {
            for item in queue.iter_mut() {
                *item = FeedItem::plain(value.clone());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_per_tag() {
        let mut feed = InputFeed::new();
        feed.push("a", Value::Int(1))
            .push("a", Value::Int(2))
            .push("b", Value::Int(3));
        assert_eq!(feed.take("a").unwrap().value, Value::Int(1));
        assert_eq!(feed.take("b").unwrap().value, Value::Int(3));
        assert_eq!(feed.take("a").unwrap().value, Value::Int(2));
        assert!(feed.take("a").is_none());
        assert!(feed.take("zzz").is_none());
    }

    #[test]
    fn messages_separate_from_inputs() {
        let mut feed = InputFeed::new();
        feed.push("x", Value::Int(1));
        feed.push_message("x", Value::Int(2));
        assert_eq!(feed.take_message("x"), Some(Value::Int(2)));
        assert_eq!(feed.take("x").unwrap().value, Value::Int(1));
        assert!(feed.take_message("x").is_none());
    }

    #[test]
    fn drop_next_starves_one_value() {
        let mut feed = InputFeed::new();
        feed.push("p", Value::Int(1)).push("p", Value::Int(2));
        feed.drop_next("p");
        assert_eq!(feed.remaining("p"), 1);
        assert_eq!(feed.take("p").unwrap().value, Value::Int(2));
    }

    #[test]
    fn forge_all_replaces_and_strips_provenance() {
        use rand::SeedableRng;
        use refstate_crypto::{DsaKeyPair, DsaParams, Signed};
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let keys = DsaKeyPair::generate(&DsaParams::test_group_256(), &mut rng);
        let env = Signed::seal(Value::Int(100), "producer", &keys, &mut rng);

        let mut feed = InputFeed::new();
        feed.push_signed("p", env);
        feed.push("p", Value::Int(100));
        feed.forge_all("p", &Value::Int(999));
        let first = feed.take("p").unwrap();
        assert_eq!(first.value, Value::Int(999));
        assert!(
            first.provenance.is_none(),
            "forgery cannot carry provenance"
        );
        assert_eq!(feed.take("p").unwrap().value, Value::Int(999));
    }

    #[test]
    fn signed_item_keeps_envelope() {
        use rand::SeedableRng;
        use refstate_crypto::{DsaKeyPair, DsaParams, Signed};
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let keys = DsaKeyPair::generate(&DsaParams::test_group_256(), &mut rng);
        let env = Signed::seal(Value::Int(7), "shop", &keys, &mut rng);
        let item = FeedItem::signed(env.clone());
        assert_eq!(item.value, Value::Int(7));
        assert_eq!(item.provenance.as_ref().map(|e| e.signer()), Some("shop"));
    }
}
