//! A simulated mobile-agent platform (the Mole analogue).
//!
//! The paper's protocols run on an agent platform: hosts that execute
//! sessions, a migration mechanism that moves the agent (and the protocols'
//! baggage) between hosts, input sources on each host, and — crucially for
//! a *protection* paper — hosts that misbehave. This crate provides all of
//! that:
//!
//! * [`HostId`] / [`HostSpec`] / [`Host`] — host identity, keys, trust
//!   attribute, and per-host input feeds,
//! * [`Behaviour`] / [`Attack`] — honest execution or one of the attack
//!   classes from the paper's Fig. 2 taxonomy that touch agent state or
//!   session input,
//! * [`AgentImage`] — the unit of migration (code + data state),
//! * [`Event`] / [`EventLog`] — a timeline of everything that happened,
//! * [`HostNode`] / [`SimNetwork`] — a deterministic, single-threaded
//!   message-passing network for protocol drivers,
//! * [`ThreadedNetwork`] — the same node interface on real threads with
//!   crossbeam channels, for stress tests and the threaded benches.
//!
//! The paper's measurements ran three hosts "in one address space" —
//! [`SimNetwork`] reproduces exactly that; [`ThreadedNetwork`] goes one
//! step further than the original evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod agent;
mod attack;
mod event;
mod feed;
mod host;
mod journey;
mod net;
mod threaded;

pub use agent::{AgentId, AgentImage};
pub use attack::{Attack, Behaviour};
pub use event::{Event, EventLog};
pub use feed::{FeedItem, InputFeed};
pub use host::{Host, HostId, HostSpec, SessionRecord};
pub use journey::{run_plain_journey, JourneyError, JourneyOutcome};
pub use net::{HostNode, NetError, SimNetwork, Step};
pub use threaded::ThreadedNetwork;
