//! The unit of migration: agent code plus data state.

use std::fmt;

use refstate_crypto::{sha256, Digest};
use refstate_wire::{to_wire, Decode, Encode, Reader, WireError, Writer};

use refstate_vm::{DataState, Program};

/// A unique agent identifier, assigned by the agent's owner at creation.
///
/// # Examples
///
/// ```
/// use refstate_platform::AgentId;
///
/// let id = AgentId::new("shopper-1");
/// assert_eq!(id.as_str(), "shopper-1");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AgentId(String);

impl AgentId {
    /// Creates an agent id.
    pub fn new(id: impl Into<String>) -> Self {
        AgentId(id.into())
    }

    /// The id as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for AgentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for AgentId {
    fn from(s: &str) -> Self {
        AgentId::new(s)
    }
}

impl Encode for AgentId {
    fn encode(&self, w: &mut Writer) {
        w.put_str(&self.0);
    }
}

impl Decode for AgentId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(AgentId(r.take_str()?.to_owned()))
    }
}

/// What actually moves between hosts: the agent's code and its current data
/// state.
///
/// Under weak migration the execution state is *not* transported — every
/// session restarts the program from its entry point, and anything worth
/// keeping lives in the data state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AgentImage {
    /// The agent identifier.
    pub id: AgentId,
    /// The agent's immutable code.
    pub program: Program,
    /// The agent's variable part.
    pub state: DataState,
}

impl AgentImage {
    /// Creates an agent image.
    pub fn new(id: impl Into<AgentId>, program: Program, state: DataState) -> Self {
        AgentImage {
            id: id.into(),
            program,
            state,
        }
    }

    /// Hash of the (canonical encoding of the) agent code.
    pub fn code_digest(&self) -> Digest {
        sha256(&to_wire(&self.program))
    }

    /// Hash of the current data state.
    pub fn state_digest(&self) -> Digest {
        sha256(&to_wire(&self.state))
    }
}

impl From<String> for AgentId {
    fn from(s: String) -> Self {
        AgentId(s)
    }
}

impl Encode for AgentImage {
    fn encode(&self, w: &mut Writer) {
        self.id.encode(w);
        self.program.encode(w);
        self.state.encode(w);
    }
}

impl Decode for AgentImage {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(AgentImage {
            id: AgentId::decode(r)?,
            program: Program::decode(r)?,
            state: DataState::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refstate_vm::{assemble, Value};

    fn image() -> AgentImage {
        let program = assemble("push 1\nstore \"x\"\nhalt").unwrap();
        let mut state = DataState::new();
        state.set("x", Value::Int(0));
        AgentImage::new("a-1", program, state)
    }

    #[test]
    fn digests_are_stable_and_state_sensitive() {
        let a = image();
        let b = image();
        assert_eq!(a.code_digest(), b.code_digest());
        assert_eq!(a.state_digest(), b.state_digest());
        let mut c = image();
        c.state.set("x", Value::Int(1));
        assert_eq!(a.code_digest(), c.code_digest());
        assert_ne!(a.state_digest(), c.state_digest());
    }

    #[test]
    fn wire_round_trip() {
        use refstate_wire::{from_wire, to_wire};
        let a = image();
        assert_eq!(from_wire::<AgentImage>(&to_wire(&a)).unwrap(), a);
        let id = AgentId::new("x");
        assert_eq!(from_wire::<AgentId>(&to_wire(&id)).unwrap(), id);
    }

    #[test]
    fn agent_id_display() {
        assert_eq!(AgentId::new("a").to_string(), "a");
        assert_eq!(AgentId::from("b").as_str(), "b");
    }
}
