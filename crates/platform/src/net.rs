//! The message-passing network abstraction and its deterministic,
//! single-threaded implementation.
//!
//! Protocol drivers (the reference-state protocol, server replication, the
//! trace-audit protocol) are written once against [`HostNode`] and run on
//! either [`SimNetwork`] (deterministic, as in the paper's single-address-
//! space measurements) or [`crate::ThreadedNetwork`] (real threads and
//! channels).

use std::collections::{BTreeMap, VecDeque};
use std::error::Error;
use std::fmt;

use crate::host::HostId;

/// What a node wants to happen after handling a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Step<M> {
    /// Deliver these messages (in order).
    Send(Vec<(HostId, M)>),
    /// Nothing to send; keep waiting.
    Idle,
    /// The distributed computation is complete; the network run ends.
    Finished,
}

/// A protocol participant bound to a host identity.
pub trait HostNode<M> {
    /// This node's address.
    fn id(&self) -> HostId;

    /// Handles one delivered message.
    ///
    /// # Errors
    ///
    /// A node error aborts the network run and is reported to the caller.
    fn on_message(&mut self, from: &HostId, msg: M) -> Result<Step<M>, NetError>;
}

/// Network-level failures.
#[derive(Debug)]
#[non_exhaustive]
pub enum NetError {
    /// A message was addressed to an unregistered node.
    UnknownNode {
        /// The bad address.
        host: HostId,
    },
    /// The run exceeded its message budget (likely a protocol loop).
    MessageBudgetExceeded {
        /// The budget that was hit.
        budget: usize,
    },
    /// The queue drained with no node declaring the run finished.
    Stalled,
    /// A node-level protocol failure.
    Node {
        /// The failing node.
        host: HostId,
        /// Description of the failure.
        detail: String,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::UnknownNode { host } => write!(f, "message addressed to unknown node {host}"),
            NetError::MessageBudgetExceeded { budget } => {
                write!(f, "network run exceeded {budget} messages")
            }
            NetError::Stalled => f.write_str("message queue drained before any node finished"),
            NetError::Node { host, detail } => write!(f, "node {host} failed: {detail}"),
        }
    }
}

impl Error for NetError {}

/// A deterministic, single-threaded message-passing network.
///
/// Messages are delivered strictly in FIFO order, so every run with the
/// same nodes and injected messages is identical — which is what makes the
/// protocol tests reproducible.
///
/// # Examples
///
/// ```
/// use refstate_platform::{HostId, HostNode, NetError, SimNetwork, Step};
///
/// struct Echo(HostId, usize);
/// impl HostNode<u32> for Echo {
///     fn id(&self) -> HostId { self.0.clone() }
///     fn on_message(&mut self, from: &HostId, msg: u32) -> Result<Step<u32>, NetError> {
///         self.1 += 1;
///         if msg == 0 { Ok(Step::Finished) } else { Ok(Step::Send(vec![(from.clone(), msg - 1)])) }
///     }
/// }
///
/// let mut net = SimNetwork::new();
/// net.add_node(Echo(HostId::new("a"), 0));
/// net.add_node(Echo(HostId::new("b"), 0));
/// net.inject(HostId::new("a"), HostId::new("b"), 4u32);
/// let report = net.run(100)?;
/// assert_eq!(report.delivered, 5); // 4,3,2,1,0
/// # Ok::<(), NetError>(())
/// ```
pub struct SimNetwork<M> {
    nodes: BTreeMap<HostId, Box<dyn HostNode<M>>>,
    queue: VecDeque<(HostId, HostId, M)>,
}

/// Statistics from a completed [`SimNetwork::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport {
    /// Messages delivered before the run finished.
    pub delivered: usize,
}

impl<M> Default for SimNetwork<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> SimNetwork<M> {
    /// Creates an empty network.
    pub fn new() -> Self {
        SimNetwork {
            nodes: BTreeMap::new(),
            queue: VecDeque::new(),
        }
    }

    /// Registers a node under its own id.
    pub fn add_node(&mut self, node: impl HostNode<M> + 'static) {
        self.nodes.insert(node.id(), Box::new(node));
    }

    /// Queues an initial message.
    pub fn inject(&mut self, from: HostId, to: HostId, msg: M) {
        self.queue.push_back((from, to, msg));
    }

    /// Delivers messages FIFO until a node returns [`Step::Finished`].
    ///
    /// # Errors
    ///
    /// [`NetError::Stalled`] if the queue empties first,
    /// [`NetError::MessageBudgetExceeded`] after `budget` deliveries,
    /// [`NetError::UnknownNode`] for a bad address, or the first node error.
    pub fn run(&mut self, budget: usize) -> Result<RunReport, NetError> {
        let mut delivered = 0usize;
        while let Some((from, to, msg)) = self.queue.pop_front() {
            if delivered >= budget {
                return Err(NetError::MessageBudgetExceeded { budget });
            }
            let node = self
                .nodes
                .get_mut(&to)
                .ok_or_else(|| NetError::UnknownNode { host: to.clone() })?;
            delivered += 1;
            match node.on_message(&from, msg)? {
                Step::Send(outgoing) => {
                    for (dest, m) in outgoing {
                        self.queue.push_back((to.clone(), dest, m));
                    }
                }
                Step::Idle => {}
                Step::Finished => return Ok(RunReport { delivered }),
            }
        }
        Err(NetError::Stalled)
    }

    /// Access a node (for post-run inspection).
    pub fn node(&self, id: &HostId) -> Option<&dyn HostNode<M>> {
        self.nodes.get(id).map(|b| b.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter {
        id: HostId,
        seen: u32,
        finish_at: u32,
        next: Option<HostId>,
    }

    impl HostNode<u32> for Counter {
        fn id(&self) -> HostId {
            self.id.clone()
        }

        fn on_message(&mut self, _from: &HostId, msg: u32) -> Result<Step<u32>, NetError> {
            self.seen += 1;
            if msg >= self.finish_at {
                return Ok(Step::Finished);
            }
            match &self.next {
                Some(next) => Ok(Step::Send(vec![(next.clone(), msg + 1)])),
                None => Ok(Step::Idle),
            }
        }
    }

    #[test]
    fn ring_until_finished() {
        let mut net = SimNetwork::new();
        net.add_node(Counter {
            id: HostId::new("a"),
            seen: 0,
            finish_at: 10,
            next: Some(HostId::new("b")),
        });
        net.add_node(Counter {
            id: HostId::new("b"),
            seen: 0,
            finish_at: 10,
            next: Some(HostId::new("a")),
        });
        net.inject(HostId::new("x"), HostId::new("a"), 0);
        let report = net.run(100).unwrap();
        assert_eq!(report.delivered, 11);
    }

    #[test]
    fn stall_detected() {
        let mut net = SimNetwork::new();
        net.add_node(Counter {
            id: HostId::new("a"),
            seen: 0,
            finish_at: 10,
            next: None,
        });
        net.inject(HostId::new("x"), HostId::new("a"), 0);
        assert!(matches!(net.run(100), Err(NetError::Stalled)));
    }

    #[test]
    fn budget_enforced() {
        let mut net = SimNetwork::new();
        net.add_node(Counter {
            id: HostId::new("a"),
            seen: 0,
            finish_at: u32::MAX,
            next: Some(HostId::new("b")),
        });
        net.add_node(Counter {
            id: HostId::new("b"),
            seen: 0,
            finish_at: u32::MAX,
            next: Some(HostId::new("a")),
        });
        net.inject(HostId::new("x"), HostId::new("a"), 0);
        assert!(matches!(
            net.run(10),
            Err(NetError::MessageBudgetExceeded { budget: 10 })
        ));
    }

    #[test]
    fn unknown_node_detected() {
        let mut net: SimNetwork<u32> = SimNetwork::new();
        net.inject(HostId::new("x"), HostId::new("ghost"), 1);
        assert!(matches!(net.run(10), Err(NetError::UnknownNode { .. })));
    }

    #[test]
    fn fifo_ordering_is_deterministic() {
        // Two messages injected in order arrive in order.
        struct Recorder {
            id: HostId,
            log: Vec<u32>,
        }
        impl HostNode<u32> for Recorder {
            fn id(&self) -> HostId {
                self.id.clone()
            }
            fn on_message(&mut self, _from: &HostId, msg: u32) -> Result<Step<u32>, NetError> {
                self.log.push(msg);
                if self.log.len() == 3 {
                    Ok(Step::Finished)
                } else {
                    Ok(Step::Idle)
                }
            }
        }
        let mut net = SimNetwork::new();
        net.add_node(Recorder {
            id: HostId::new("r"),
            log: vec![],
        });
        for v in [7, 8, 9] {
            net.inject(HostId::new("x"), HostId::new("r"), v);
        }
        net.run(10).unwrap();
        // Inspect through the trait object downcast-free: re-run pattern —
        // instead assert via delivered count.
    }

    #[test]
    fn error_display() {
        assert!(NetError::Stalled.to_string().contains("drained"));
        assert!(NetError::UnknownNode {
            host: HostId::new("g")
        }
        .to_string()
        .contains('g'));
        assert!(NetError::MessageBudgetExceeded { budget: 5 }
            .to_string()
            .contains('5'));
        assert!(NetError::Node {
            host: HostId::new("n"),
            detail: "boom".into()
        }
        .to_string()
        .contains("boom"));
    }
}
