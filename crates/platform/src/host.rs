//! Hosts: identity, keys, trust attribute, behaviour, and session execution.

use std::fmt;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use refstate_crypto::{DsaKeyPair, DsaParams, DsaPublicKey, Signed};
use refstate_vm::{
    run_compiled_session, CompiledProgram, DataState, ExecConfig, SessionIo, SessionOutcome,
    SyscallKind, Value, VmError,
};
use refstate_wire::Encode;

use crate::agent::AgentImage;
use crate::attack::{Attack, Behaviour};
use crate::event::{Event, EventLog};
use crate::feed::InputFeed;

/// A host (agent platform) identifier.
///
/// # Examples
///
/// ```
/// use refstate_platform::HostId;
///
/// let id = HostId::new("airline-a");
/// assert_eq!(id.as_str(), "airline-a");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HostId(String);

impl HostId {
    /// Creates a host id.
    pub fn new(id: impl Into<String>) -> Self {
        HostId(id.into())
    }

    /// The id as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for HostId {
    fn from(s: &str) -> Self {
        HostId::new(s)
    }
}

impl From<String> for HostId {
    fn from(s: String) -> Self {
        HostId(s)
    }
}

impl refstate_wire::Encode for HostId {
    fn encode(&self, w: &mut refstate_wire::Writer) {
        w.put_str(&self.0);
    }
}

impl refstate_wire::Decode for HostId {
    fn decode(r: &mut refstate_wire::Reader<'_>) -> Result<Self, refstate_wire::WireError> {
        Ok(HostId(r.take_str()?.to_owned()))
    }
}

/// Static description of a host, used to construct a [`Host`].
#[derive(Debug, Clone)]
pub struct HostSpec {
    /// The host's identity.
    pub id: HostId,
    /// Whether the agent owner trusts this host (trusted hosts are not
    /// checked by the example protocol — "trusted hosts will not attack by
    /// definition").
    pub trusted: bool,
    /// Honest or a concrete attack.
    pub behaviour: Behaviour,
    /// The inputs this host serves to visiting agents.
    pub feed: InputFeed,
}

impl HostSpec {
    /// A new honest, untrusted host with an empty feed.
    pub fn new(id: impl Into<HostId>) -> Self {
        HostSpec {
            id: id.into(),
            trusted: false,
            behaviour: Behaviour::Honest,
            feed: InputFeed::new(),
        }
    }

    /// Marks the host as trusted by the agent owner.
    pub fn trusted(mut self) -> Self {
        self.trusted = true;
        self
    }

    /// Sets the behaviour.
    pub fn behaviour(mut self, behaviour: Behaviour) -> Self {
        self.behaviour = behaviour;
        self
    }

    /// Shorthand for `behaviour(Behaviour::Malicious(attack))`.
    pub fn malicious(self, attack: Attack) -> Self {
        self.behaviour(Behaviour::Malicious(attack))
    }

    /// Queues an input value in the host's feed.
    pub fn with_input(mut self, tag: impl Into<String>, value: Value) -> Self {
        self.feed.push(tag, value);
        self
    }

    /// Queues a partner message in the host's feed.
    pub fn with_message(mut self, partner: impl Into<String>, value: Value) -> Self {
        self.feed.push_message(partner, value);
        self
    }
}

/// Everything one host-side execution session produced, including what the
/// protection protocols need as reference data.
#[derive(Debug, Clone)]
pub struct SessionRecord {
    /// The state the agent arrived with.
    pub initial_state: DataState,
    /// The (possibly tampered) session outcome the host reports.
    pub outcome: SessionOutcome,
    /// Producer signatures for inputs that carried provenance (§4.3
    /// extension), indexed parallel to the input log.
    pub provenance: Vec<Option<Signed<Value>>>,
    /// Wall-clock execution time of the session.
    pub elapsed: Duration,
}

/// A live host: spec plus key material and a session RNG.
pub struct Host {
    spec: HostSpec,
    keys: DsaKeyPair,
    rng: StdRng,
    /// Deterministic session clock for syscall results.
    clock: i64,
}

impl fmt::Debug for Host {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Host")
            .field("id", &self.spec.id)
            .field("trusted", &self.spec.trusted)
            .field("behaviour", &self.spec.behaviour)
            .finish_non_exhaustive()
    }
}

impl Host {
    /// Creates a host with fresh keys in the given DSA group.
    pub fn new(spec: HostSpec, params: &DsaParams, rng: &mut dyn RngCore) -> Self {
        let keys = DsaKeyPair::generate(params, rng);
        let host_seed = rng.next_u64();
        Host::with_keys(spec, keys, host_seed)
    }

    /// Creates a host from pre-generated key material and an explicit
    /// session-RNG seed.
    ///
    /// This is the batch-friendly constructor fleet-scale drivers use:
    /// key generation (a modular exponentiation) dominates `Host::new`, so
    /// a scenario engine spinning up thousands of short-lived host sets
    /// draws keys from a pre-generated pool instead. The resulting `Host`
    /// owns all of its data and is `Send`, so host sets can be built on
    /// one thread and executed on another.
    pub fn with_keys(spec: HostSpec, keys: DsaKeyPair, session_seed: u64) -> Self {
        Host {
            spec,
            keys,
            rng: StdRng::seed_from_u64(session_seed),
            clock: 0,
        }
    }

    /// Builds a full host set from specs with fresh keys, in spec order.
    ///
    /// Deterministic for a given `rng` state; convenience for drivers and
    /// tests that construct whole journeys from a route description.
    pub fn build_all(specs: Vec<HostSpec>, params: &DsaParams, rng: &mut dyn RngCore) -> Vec<Host> {
        specs
            .into_iter()
            .map(|spec| Host::new(spec, params, rng))
            .collect()
    }

    /// The host's identity.
    pub fn id(&self) -> &HostId {
        &self.spec.id
    }

    /// Whether the agent owner trusts this host.
    pub fn is_trusted(&self) -> bool {
        self.spec.trusted
    }

    /// The host's behaviour.
    pub fn behaviour(&self) -> &Behaviour {
        &self.spec.behaviour
    }

    /// The host's public key (for directory registration).
    pub fn public_key(&self) -> &DsaPublicKey {
        self.keys.public()
    }

    /// Mutable access to the host's input feed (to model data arriving at
    /// the host between agent visits).
    pub fn feed_mut(&mut self) -> &mut InputFeed {
        &mut self.spec.feed
    }

    /// Signs a payload in the host's name.
    pub fn sign<T: Encode>(&mut self, payload: T) -> Signed<T> {
        Signed::seal(payload, self.spec.id.as_str(), &self.keys, &mut self.rng)
    }

    /// Executes one session of `image` on this host, applying the host's
    /// behaviour.
    ///
    /// Honest hosts run the program faithfully against their input feed.
    /// Malicious hosts apply their [`Attack`]: input attacks modify the
    /// feed before execution, state attacks modify the outcome afterwards.
    /// Every attack application is recorded in `log`.
    ///
    /// # Errors
    ///
    /// Propagates [`VmError`] from the underlying execution (e.g. input
    /// exhaustion, step-limit).
    pub fn execute_session(
        &mut self,
        image: &AgentImage,
        config: &ExecConfig,
        log: &EventLog,
    ) -> Result<SessionRecord, VmError> {
        log.record(Event::SessionStarted {
            host: self.spec.id.clone(),
            agent: image.id.clone(),
        });

        // Input-level attacks act on the feed before the session runs.
        match self.spec.behaviour.attack() {
            Some(Attack::DropInput { tag }) => {
                self.spec.feed.drop_next(tag);
                self.note_attack(log);
            }
            Some(Attack::ForgeInput { tag, value }) => {
                let (tag, value) = (tag.clone(), value.clone());
                self.spec.feed.forge_all(&tag, &value);
                self.note_attack(log);
            }
            _ => {}
        }

        let start = Instant::now();
        let mut io = FeedIo {
            feed: &mut self.spec.feed,
            clock: &mut self.clock,
            provenance: Vec::new(),
            sent: Vec::new(),
        };
        let initial_state = image.state.clone();
        // Live execution runs the compiled fast path; the process-wide
        // compile cache means a program is decoded once per content, not
        // once per step or session, across hops, replicas, and journeys.
        let compiled = CompiledProgram::cached(&image.program);
        let mut outcome = run_compiled_session(&compiled, initial_state.clone(), &mut io, config)?;
        let provenance = io.provenance;
        let elapsed = start.elapsed();

        // State/execution-level attacks act on the honest outcome.
        match self.spec.behaviour.attack() {
            Some(Attack::TamperVariable { name, value }) => {
                outcome.state.set(name.clone(), value.clone());
                self.note_attack(log);
            }
            Some(Attack::DeleteVariable { name }) => {
                outcome.state.remove(name);
                self.note_attack(log);
            }
            Some(Attack::ScaleIntVariable { name, factor }) => {
                if let Some(v) = outcome.state.get_int(name) {
                    outcome
                        .state
                        .set(name.clone(), Value::Int(v.wrapping_mul(*factor)));
                }
                self.note_attack(log);
            }
            Some(Attack::SkipExecution) => {
                outcome.state = initial_state.clone();
                outcome.input_log = refstate_vm::InputLog::new();
                outcome.outputs.clear();
                outcome.steps = 0;
                self.note_attack(log);
            }
            Some(Attack::RedirectMigration { to }) => {
                outcome.end = refstate_vm::SessionEnd::Migrate(to.as_str().to_owned());
                self.note_attack(log);
            }
            Some(Attack::CollaborateTamper { name, value, .. }) => {
                outcome.state.set(name.clone(), value.clone());
                self.note_attack(log);
            }
            Some(Attack::ReplayStaleState { name, value }) => {
                outcome.state.set(name.clone(), value.clone());
                self.note_attack(log);
            }
            Some(Attack::ReadState) => {
                // Honest execution; the theft is invisible in the outcome.
                self.note_attack(log);
            }
            // Chain attacks act on the result chain some mechanisms make
            // the agent carry, not on the session outcome: the chained
            // journey drivers apply (and log) them at the chain layer;
            // under every other mechanism the host executes honestly.
            Some(Attack::TruncateChainTail { .. })
            | Some(Attack::SwapChainEntries)
            | Some(Attack::ReplacePartialResult)
            | Some(Attack::ForgeChainEntry { .. }) => {}
            Some(Attack::DropInput { .. }) | Some(Attack::ForgeInput { .. }) | None => {}
        }

        log.record(Event::SessionEnded {
            host: self.spec.id.clone(),
            agent: image.id.clone(),
            steps: outcome.steps,
        });

        Ok(SessionRecord {
            initial_state,
            outcome,
            provenance,
            elapsed,
        })
    }

    fn note_attack(&self, log: &EventLog) {
        if let Some(attack) = self.spec.behaviour.attack() {
            log.record(Event::AttackApplied {
                host: self.spec.id.clone(),
                attack: attack.label().to_owned(),
            });
        }
    }
}

/// Session I/O backed by the host's input feed.
struct FeedIo<'a> {
    feed: &'a mut InputFeed,
    clock: &'a mut i64,
    provenance: Vec<Option<Signed<Value>>>,
    sent: Vec<(String, Value)>,
}

impl SessionIo for FeedIo<'_> {
    fn input(&mut self, pc: usize, tag: &str) -> Result<Value, VmError> {
        let item = self
            .feed
            .take(tag)
            .ok_or_else(|| VmError::InputUnavailable {
                pc,
                what: format!("input:{tag}"),
            })?;
        self.provenance.push(item.provenance);
        Ok(item.value)
    }

    fn syscall(&mut self, _pc: usize, kind: SyscallKind) -> Result<Value, VmError> {
        *self.clock += 1;
        self.provenance.push(None);
        Ok(match kind {
            SyscallKind::Time => Value::Int(1_700_000_000_000 + *self.clock),
            SyscallKind::Random => {
                let x = (*self.clock as u64)
                    .wrapping_mul(0x9e3779b97f4a7c15)
                    .wrapping_add(0x2545f4914f6cdd1d);
                Value::Int((x >> 17) as i64)
            }
        })
    }

    fn recv(&mut self, pc: usize, partner: &str) -> Result<Value, VmError> {
        let value = self
            .feed
            .take_message(partner)
            .ok_or_else(|| VmError::InputUnavailable {
                pc,
                what: format!("recv:{partner}"),
            })?;
        self.provenance.push(None);
        Ok(value)
    }

    fn send(&mut self, _pc: usize, partner: &str, value: Value) -> Result<(), VmError> {
        self.sent.push((partner.to_owned(), value));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refstate_vm::assemble;

    /// Fleet schedulers move freshly built hosts onto worker threads.
    #[allow(dead_code)]
    fn hosts_are_send(host: Host) -> impl Send {
        host
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1000)
    }

    fn shopping_agent() -> AgentImage {
        let program = assemble(
            r#"
            input "price"
            store "quote"
            push "next"
            migrate
        "#,
        )
        .unwrap();
        AgentImage::new("shopper", program, DataState::new())
    }

    fn make_host(spec: HostSpec) -> Host {
        Host::new(spec, &DsaParams::test_group_256(), &mut rng())
    }

    #[test]
    fn honest_execution() {
        let spec = HostSpec::new("shop").with_input("price", Value::Int(120));
        let mut host = make_host(spec);
        let log = EventLog::new();
        let record = host
            .execute_session(&shopping_agent(), &ExecConfig::default(), &log)
            .unwrap();
        assert_eq!(record.outcome.state.get_int("quote"), Some(120));
        assert_eq!(record.outcome.input_log.len(), 1);
        assert_eq!(record.provenance.len(), 1);
        assert_eq!(
            log.count_matching(|e| matches!(e, Event::SessionEnded { .. })),
            1
        );
        assert_eq!(
            log.count_matching(|e| matches!(e, Event::AttackApplied { .. })),
            0
        );
    }

    #[test]
    fn tamper_variable_changes_state() {
        let spec = HostSpec::new("evil")
            .with_input("price", Value::Int(120))
            .malicious(Attack::TamperVariable {
                name: "quote".into(),
                value: Value::Int(999),
            });
        let mut host = make_host(spec);
        let log = EventLog::new();
        let record = host
            .execute_session(&shopping_agent(), &ExecConfig::default(), &log)
            .unwrap();
        assert_eq!(record.outcome.state.get_int("quote"), Some(999));
        // But the input log still shows the honest input: re-execution will
        // expose the lie.
        assert_eq!(record.outcome.input_log.records()[0].value, Value::Int(120));
        assert_eq!(
            log.count_matching(|e| matches!(e, Event::AttackApplied { .. })),
            1
        );
    }

    #[test]
    fn skip_execution_returns_initial_state() {
        let spec = HostSpec::new("lazy")
            .with_input("price", Value::Int(120))
            .malicious(Attack::SkipExecution);
        let mut host = make_host(spec);
        let log = EventLog::new();
        let agent = shopping_agent();
        let record = host
            .execute_session(&agent, &ExecConfig::default(), &log)
            .unwrap();
        assert_eq!(record.outcome.state, agent.state);
        assert!(record.outcome.input_log.is_empty());
        assert_eq!(record.outcome.steps, 0);
    }

    #[test]
    fn forge_input_is_consistent_with_forged_log() {
        let spec = HostSpec::new("liar")
            .with_input("price", Value::Int(120))
            .malicious(Attack::ForgeInput {
                tag: "price".into(),
                value: Value::Int(10),
            });
        let mut host = make_host(spec);
        let log = EventLog::new();
        let record = host
            .execute_session(&shopping_agent(), &ExecConfig::default(), &log)
            .unwrap();
        // The forged input propagates into both the state and the log —
        // exactly why the paper says re-execution cannot catch it.
        assert_eq!(record.outcome.state.get_int("quote"), Some(10));
        assert_eq!(record.outcome.input_log.records()[0].value, Value::Int(10));
    }

    #[test]
    fn redirect_migration_changes_destination() {
        let spec = HostSpec::new("redirector")
            .with_input("price", Value::Int(120))
            .malicious(Attack::RedirectMigration {
                to: HostId::new("mallory"),
            });
        let mut host = make_host(spec);
        let log = EventLog::new();
        let record = host
            .execute_session(&shopping_agent(), &ExecConfig::default(), &log)
            .unwrap();
        assert_eq!(
            record.outcome.end,
            refstate_vm::SessionEnd::Migrate("mallory".into())
        );
    }

    #[test]
    fn read_state_leaves_no_trace() {
        let honest = HostSpec::new("h").with_input("price", Value::Int(120));
        let reader = HostSpec::new("r")
            .with_input("price", Value::Int(120))
            .malicious(Attack::ReadState);
        let log = EventLog::new();
        let a = make_host(honest)
            .execute_session(&shopping_agent(), &ExecConfig::default(), &log)
            .unwrap();
        let b = make_host(reader)
            .execute_session(&shopping_agent(), &ExecConfig::default(), &log)
            .unwrap();
        assert_eq!(a.outcome.state, b.outcome.state);
        assert_eq!(a.outcome.input_log, b.outcome.input_log);
    }

    #[test]
    fn feed_persists_across_sessions() {
        let spec = HostSpec::new("shop")
            .with_input("price", Value::Int(1))
            .with_input("price", Value::Int(2));
        let mut host = make_host(spec);
        let log = EventLog::new();
        let agent = shopping_agent();
        let r1 = host
            .execute_session(&agent, &ExecConfig::default(), &log)
            .unwrap();
        let r2 = host
            .execute_session(&agent, &ExecConfig::default(), &log)
            .unwrap();
        assert_eq!(r1.outcome.state.get_int("quote"), Some(1));
        assert_eq!(r2.outcome.state.get_int("quote"), Some(2));
    }

    #[test]
    fn input_exhaustion_is_an_error() {
        let spec = HostSpec::new("empty");
        let mut host = make_host(spec);
        let log = EventLog::new();
        let err = host
            .execute_session(&shopping_agent(), &ExecConfig::default(), &log)
            .unwrap_err();
        assert!(matches!(err, VmError::InputUnavailable { .. }));
    }

    #[test]
    fn host_signing_round_trips() {
        let mut host = make_host(HostSpec::new("signer"));
        let mut dir = refstate_crypto::KeyDirectory::new();
        dir.register("signer", host.public_key().clone());
        let env = host.sign(42u64);
        assert!(env.verify(&dir).is_ok());
    }

    #[test]
    fn syscalls_are_deterministic_per_host_stream() {
        let program = assemble("syscall random\nstore \"r\"\nhalt").unwrap();
        let agent = AgentImage::new("a", program, DataState::new());
        let log = EventLog::new();
        let mut h1 = make_host(HostSpec::new("h1"));
        let mut h2 = make_host(HostSpec::new("h2"));
        let r1 = h1
            .execute_session(&agent, &ExecConfig::default(), &log)
            .unwrap();
        let r2 = h2
            .execute_session(&agent, &ExecConfig::default(), &log)
            .unwrap();
        // Fresh hosts with fresh clocks produce the same first value.
        assert_eq!(r1.outcome.state.get("r"), r2.outcome.state.get("r"));
    }
}
