//! The platform event log: a timeline of everything observable.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;
use refstate_telemetry as telemetry;

use crate::agent::AgentId;
use crate::host::HostId;

/// One observable platform event.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Event {
    /// An agent was created at its home host.
    AgentCreated {
        /// The agent.
        agent: AgentId,
        /// The home host.
        home: HostId,
    },
    /// A host started an execution session.
    SessionStarted {
        /// The executing host.
        host: HostId,
        /// The agent.
        agent: AgentId,
    },
    /// A host finished an execution session.
    SessionEnded {
        /// The executing host.
        host: HostId,
        /// The agent.
        agent: AgentId,
        /// Instructions executed.
        steps: u64,
    },
    /// An agent (plus protocol baggage) was sent between hosts.
    Migrated {
        /// Sender.
        from: HostId,
        /// Receiver.
        to: HostId,
        /// The agent.
        agent: AgentId,
        /// Serialized size of the migration message in bytes.
        bytes: usize,
    },
    /// A host applied an attack.
    AttackApplied {
        /// The malicious host.
        host: HostId,
        /// A short label of the attack (see `Attack::label`).
        attack: String,
    },
    /// A checking step ran.
    CheckPerformed {
        /// The host that checked.
        checker: HostId,
        /// The host whose session was checked.
        checked: HostId,
        /// Whether the check passed.
        passed: bool,
    },
    /// A fraud was detected and attributed.
    FraudDetected {
        /// The host blamed.
        culprit: HostId,
        /// The host (or owner) that detected it.
        detector: HostId,
        /// Human-readable explanation.
        reason: String,
    },
    /// A host left the network mid-journey (environmental churn): agents
    /// that try to migrate to it find nobody listening.
    HostChurned {
        /// The departed host.
        host: HostId,
    },
    /// Free-form annotation from a driver.
    Note {
        /// The annotation.
        text: String,
    },
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::AgentCreated { agent, home } => write!(f, "created {agent} at {home}"),
            Event::SessionStarted { host, agent } => write!(f, "{host}: session start {agent}"),
            Event::SessionEnded { host, agent, steps } => {
                write!(f, "{host}: session end {agent} ({steps} steps)")
            }
            Event::Migrated {
                from,
                to,
                agent,
                bytes,
            } => {
                write!(f, "{from} -> {to}: migrate {agent} ({bytes} bytes)")
            }
            Event::AttackApplied { host, attack } => write!(f, "{host}: ATTACK {attack}"),
            Event::CheckPerformed {
                checker,
                checked,
                passed,
            } => {
                write!(
                    f,
                    "{checker}: checked {checked}: {}",
                    if *passed { "ok" } else { "FAILED" }
                )
            }
            Event::FraudDetected {
                culprit,
                detector,
                reason,
            } => {
                write!(f, "{detector}: fraud by {culprit}: {reason}")
            }
            Event::HostChurned { host } => write!(f, "{host}: left the network"),
            Event::Note { text } => write!(f, "note: {text}"),
        }
    }
}

/// A shared, thread-safe, append-only event log.
///
/// Cloning the log clones a handle to the same underlying timeline, so a
/// driver and all its hosts can record into one history — including from
/// the threaded network.
///
/// # Examples
///
/// ```
/// use refstate_platform::{Event, EventLog};
///
/// let log = EventLog::new();
/// log.record(Event::Note { text: "hello".into() });
/// assert_eq!(log.len(), 1);
/// assert!(log.render().contains("hello"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    inner: Arc<LogInner>,
}

/// Number of [`Event`] kinds, for the per-kind telemetry tallies.
const EVENT_KINDS: usize = 9;

/// Telemetry counter names, indexed by [`kind_index`].
const KIND_NAMES: [&str; EVENT_KINDS] = [
    "platform.agent_created",
    "platform.session_started",
    "platform.session_ended",
    "platform.migrated",
    "platform.attack_applied",
    "platform.check_performed",
    "platform.fraud_detected",
    "platform.note",
    "platform.host_churned",
];

fn kind_index(event: &Event) -> usize {
    match event {
        Event::AgentCreated { .. } => 0,
        Event::SessionStarted { .. } => 1,
        Event::SessionEnded { .. } => 2,
        Event::Migrated { .. } => 3,
        Event::AttackApplied { .. } => 4,
        Event::CheckPerformed { .. } => 5,
        Event::FraudDetected { .. } => 6,
        Event::Note { .. } => 7,
        Event::HostChurned { .. } => 8,
    }
}

#[derive(Debug, Default)]
struct LogInner {
    events: Mutex<Vec<Event>>,
    /// Per-kind telemetry tallies, batched here so the record hot path
    /// costs one relaxed atomic add per event instead of a full counter
    /// record; flushed into the collector when the log is dropped.
    tallies: [AtomicU64; EVENT_KINDS],
    /// Telemetry scope captured on the first bridged record, so the
    /// batched counters attribute to the mechanism whose journey produced
    /// the events even though the flush happens at drop time.
    telemetry_scope: OnceLock<&'static str>,
}

impl Drop for LogInner {
    fn drop(&mut self) {
        let scope = self.telemetry_scope.get().copied().unwrap_or("");
        for (i, tally) in self.tallies.iter_mut().enumerate() {
            let n = *tally.get_mut();
            if n > 0 {
                telemetry::count_in_scope(scope, KIND_NAMES[i], n);
            }
        }
    }
}

impl EventLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event.
    ///
    /// The event is also bridged into telemetry: every kind is tallied
    /// into a per-kind counter (batched in the log, flushed when the log
    /// drops), and the low-frequency kinds additionally become instant
    /// events on the trace timeline at the `Full` level, so platform
    /// history and span traces share one exported timeline.
    pub fn record(&self, event: Event) {
        if telemetry::enabled() {
            self.inner
                .telemetry_scope
                .get_or_init(telemetry::current_scope);
            self.inner.tallies[kind_index(&event)].fetch_add(1, Ordering::Relaxed);
            bridge_instant(&event);
        }
        self.inner.events.lock().push(event);
    }

    /// The number of recorded events.
    pub fn len(&self) -> usize {
        self.inner.events.lock().len()
    }

    /// Returns `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.inner.events.lock().is_empty()
    }

    /// A snapshot of the events recorded so far.
    pub fn snapshot(&self) -> Vec<Event> {
        self.inner.events.lock().clone()
    }

    /// Renders the timeline, one event per line.
    pub fn render(&self) -> String {
        let events = self.inner.events.lock();
        let mut out = String::new();
        for (i, e) in events.iter().enumerate() {
            out.push_str(&format!("{i:4}  {e}\n"));
        }
        out
    }

    /// Discards every recorded event, keeping the handle (and its
    /// telemetry tallies) alive.
    ///
    /// Long-lived holders — a resident service reusing one log per tenant
    /// across verification ticks — call this between batches so the
    /// timeline doesn't grow without bound. Verdicts never read prior
    /// ticks' events, so clearing is observationally safe there.
    pub fn clear(&self) {
        self.inner.events.lock().clear();
    }

    /// Counts events matching a predicate.
    pub fn count_matching(&self, predicate: impl Fn(&Event) -> bool) -> usize {
        self.inner
            .events
            .lock()
            .iter()
            .filter(|e| predicate(e))
            .count()
    }
}

/// Mirrors a low-frequency platform event onto the trace timeline as an
/// instant (with the event's principals as args) at the `Full` level.
///
/// The per-hop lifecycle kinds (session start/end, migration, checking)
/// fire tens of times per journey, and the timeline already shows each
/// hop as a `vm.session` span and each check as a `verify.session` span;
/// bridging them as instants too would double the trace volume without
/// adding information, so they are tallied (see [`EventLog::record`]) but
/// not traced. Strictly observational — the event log's own contents are
/// untouched.
fn bridge_instant(event: &Event) {
    if !telemetry::tracing_enabled() {
        return;
    }
    let name = KIND_NAMES[kind_index(event)];
    let args = match event {
        Event::SessionStarted { .. }
        | Event::SessionEnded { .. }
        | Event::Migrated { .. }
        | Event::CheckPerformed { .. } => return,
        Event::AgentCreated { agent, home } => {
            vec![("agent", agent.to_string()), ("home", home.to_string())]
        }
        Event::AttackApplied { host, attack } => {
            vec![("host", host.to_string()), ("attack", attack.clone())]
        }
        Event::FraudDetected {
            culprit,
            detector,
            reason,
        } => vec![
            ("culprit", culprit.to_string()),
            ("detector", detector.to_string()),
            ("reason", reason.clone()),
        ],
        Event::HostChurned { host } => vec![("host", host.to_string())],
        Event::Note { text } => vec![("text", text.clone())],
    };
    telemetry::instant(name, "platform", args);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let log = EventLog::new();
        assert!(log.is_empty());
        log.record(Event::Note { text: "a".into() });
        log.record(Event::AgentCreated {
            agent: AgentId::new("ag"),
            home: HostId::new("h"),
        });
        assert_eq!(log.len(), 2);
        let snap = log.snapshot();
        assert!(matches!(&snap[0], Event::Note { text } if text == "a"));
    }

    #[test]
    fn clones_share_the_timeline() {
        let log = EventLog::new();
        let handle = log.clone();
        handle.record(Event::Note {
            text: "via handle".into(),
        });
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn count_matching_filters() {
        let log = EventLog::new();
        log.record(Event::Note { text: "x".into() });
        log.record(Event::AttackApplied {
            host: HostId::new("m"),
            attack: "tamper".into(),
        });
        assert_eq!(
            log.count_matching(|e| matches!(e, Event::AttackApplied { .. })),
            1
        );
    }

    #[test]
    fn render_is_ordered() {
        let log = EventLog::new();
        log.record(Event::Note {
            text: "first".into(),
        });
        log.record(Event::Note {
            text: "second".into(),
        });
        let text = log.render();
        let first = text.find("first").unwrap();
        let second = text.find("second").unwrap();
        assert!(first < second);
    }

    #[test]
    fn display_variants() {
        let e = Event::Migrated {
            from: HostId::new("a"),
            to: HostId::new("b"),
            agent: AgentId::new("ag"),
            bytes: 128,
        };
        assert_eq!(e.to_string(), "a -> b: migrate ag (128 bytes)");
        let e = Event::CheckPerformed {
            checker: HostId::new("c"),
            checked: HostId::new("d"),
            passed: false,
        };
        assert!(e.to_string().contains("FAILED"));
    }
}
