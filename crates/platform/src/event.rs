//! The platform event log: a timeline of everything observable.

use std::fmt;

use parking_lot::Mutex;
use std::sync::Arc;

use crate::agent::AgentId;
use crate::host::HostId;

/// One observable platform event.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Event {
    /// An agent was created at its home host.
    AgentCreated {
        /// The agent.
        agent: AgentId,
        /// The home host.
        home: HostId,
    },
    /// A host started an execution session.
    SessionStarted {
        /// The executing host.
        host: HostId,
        /// The agent.
        agent: AgentId,
    },
    /// A host finished an execution session.
    SessionEnded {
        /// The executing host.
        host: HostId,
        /// The agent.
        agent: AgentId,
        /// Instructions executed.
        steps: u64,
    },
    /// An agent (plus protocol baggage) was sent between hosts.
    Migrated {
        /// Sender.
        from: HostId,
        /// Receiver.
        to: HostId,
        /// The agent.
        agent: AgentId,
        /// Serialized size of the migration message in bytes.
        bytes: usize,
    },
    /// A host applied an attack.
    AttackApplied {
        /// The malicious host.
        host: HostId,
        /// A short label of the attack (see `Attack::label`).
        attack: String,
    },
    /// A checking step ran.
    CheckPerformed {
        /// The host that checked.
        checker: HostId,
        /// The host whose session was checked.
        checked: HostId,
        /// Whether the check passed.
        passed: bool,
    },
    /// A fraud was detected and attributed.
    FraudDetected {
        /// The host blamed.
        culprit: HostId,
        /// The host (or owner) that detected it.
        detector: HostId,
        /// Human-readable explanation.
        reason: String,
    },
    /// Free-form annotation from a driver.
    Note {
        /// The annotation.
        text: String,
    },
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::AgentCreated { agent, home } => write!(f, "created {agent} at {home}"),
            Event::SessionStarted { host, agent } => write!(f, "{host}: session start {agent}"),
            Event::SessionEnded { host, agent, steps } => {
                write!(f, "{host}: session end {agent} ({steps} steps)")
            }
            Event::Migrated {
                from,
                to,
                agent,
                bytes,
            } => {
                write!(f, "{from} -> {to}: migrate {agent} ({bytes} bytes)")
            }
            Event::AttackApplied { host, attack } => write!(f, "{host}: ATTACK {attack}"),
            Event::CheckPerformed {
                checker,
                checked,
                passed,
            } => {
                write!(
                    f,
                    "{checker}: checked {checked}: {}",
                    if *passed { "ok" } else { "FAILED" }
                )
            }
            Event::FraudDetected {
                culprit,
                detector,
                reason,
            } => {
                write!(f, "{detector}: fraud by {culprit}: {reason}")
            }
            Event::Note { text } => write!(f, "note: {text}"),
        }
    }
}

/// A shared, thread-safe, append-only event log.
///
/// Cloning the log clones a handle to the same underlying timeline, so a
/// driver and all its hosts can record into one history — including from
/// the threaded network.
///
/// # Examples
///
/// ```
/// use refstate_platform::{Event, EventLog};
///
/// let log = EventLog::new();
/// log.record(Event::Note { text: "hello".into() });
/// assert_eq!(log.len(), 1);
/// assert!(log.render().contains("hello"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    events: Arc<Mutex<Vec<Event>>>,
}

impl EventLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event.
    pub fn record(&self, event: Event) {
        self.events.lock().push(event);
    }

    /// The number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Returns `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }

    /// A snapshot of the events recorded so far.
    pub fn snapshot(&self) -> Vec<Event> {
        self.events.lock().clone()
    }

    /// Renders the timeline, one event per line.
    pub fn render(&self) -> String {
        let events = self.events.lock();
        let mut out = String::new();
        for (i, e) in events.iter().enumerate() {
            out.push_str(&format!("{i:4}  {e}\n"));
        }
        out
    }

    /// Counts events matching a predicate.
    pub fn count_matching(&self, predicate: impl Fn(&Event) -> bool) -> usize {
        self.events.lock().iter().filter(|e| predicate(e)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let log = EventLog::new();
        assert!(log.is_empty());
        log.record(Event::Note { text: "a".into() });
        log.record(Event::AgentCreated {
            agent: AgentId::new("ag"),
            home: HostId::new("h"),
        });
        assert_eq!(log.len(), 2);
        let snap = log.snapshot();
        assert!(matches!(&snap[0], Event::Note { text } if text == "a"));
    }

    #[test]
    fn clones_share_the_timeline() {
        let log = EventLog::new();
        let handle = log.clone();
        handle.record(Event::Note {
            text: "via handle".into(),
        });
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn count_matching_filters() {
        let log = EventLog::new();
        log.record(Event::Note { text: "x".into() });
        log.record(Event::AttackApplied {
            host: HostId::new("m"),
            attack: "tamper".into(),
        });
        assert_eq!(
            log.count_matching(|e| matches!(e, Event::AttackApplied { .. })),
            1
        );
    }

    #[test]
    fn render_is_ordered() {
        let log = EventLog::new();
        log.record(Event::Note {
            text: "first".into(),
        });
        log.record(Event::Note {
            text: "second".into(),
        });
        let text = log.render();
        let first = text.find("first").unwrap();
        let second = text.find("second").unwrap();
        assert!(first < second);
    }

    #[test]
    fn display_variants() {
        let e = Event::Migrated {
            from: HostId::new("a"),
            to: HostId::new("b"),
            agent: AgentId::new("ag"),
            bytes: 128,
        };
        assert_eq!(e.to_string(), "a -> b: migrate ag (128 bytes)");
        let e = Event::CheckPerformed {
            checker: HostId::new("c"),
            checked: HostId::new("d"),
            passed: false,
        };
        assert!(e.to_string().contains("FAILED"));
    }
}
