//! The plain (unprotected) journey driver: follow the agent's migrations
//! host to host until it halts.

use std::error::Error;
use std::fmt;

use refstate_vm::{ExecConfig, SessionEnd, VmError};

use crate::agent::AgentImage;
use crate::event::{Event, EventLog};
use crate::host::{Host, HostId, SessionRecord};

/// Errors from running a journey.
#[derive(Debug)]
#[non_exhaustive]
pub enum JourneyError {
    /// The agent asked to migrate to a host that does not exist.
    UnknownHost {
        /// The requested destination.
        host: HostId,
    },
    /// The journey exceeded the hop limit (runaway itinerary).
    TooManyHops {
        /// The limit that was hit.
        limit: usize,
    },
    /// A session failed.
    Vm(VmError),
}

impl fmt::Display for JourneyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JourneyError::UnknownHost { host } => write!(f, "unknown migration target {host}"),
            JourneyError::TooManyHops { limit } => write!(f, "journey exceeded {limit} hops"),
            JourneyError::Vm(e) => write!(f, "session failed: {e}"),
        }
    }
}

impl Error for JourneyError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            JourneyError::Vm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<VmError> for JourneyError {
    fn from(e: VmError) -> Self {
        JourneyError::Vm(e)
    }
}

/// The result of a completed journey.
#[derive(Debug)]
pub struct JourneyOutcome {
    /// The agent as it finished (final data state).
    pub final_image: AgentImage,
    /// The hosts visited, in order (including the start host).
    pub path: Vec<HostId>,
    /// Per-session records, parallel to `path`.
    pub records: Vec<SessionRecord>,
}

/// Runs an agent across `hosts` with **no protection at all**: sessions
/// execute, migrations follow the agent's `migrate` instructions, and
/// nobody checks anything.
///
/// This is the baseline the paper's Table 1 measures (modulo the
/// whole-agent signature, which the bench harness adds around this).
///
/// # Errors
///
/// See [`JourneyError`].
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use refstate_crypto::DsaParams;
/// use refstate_platform::*;
/// use refstate_vm::{assemble, DataState, ExecConfig, Value};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let params = DsaParams::test_group_256();
/// let mut hosts = vec![
///     Host::new(HostSpec::new("home").with_input("p", Value::Int(10)), &params, &mut rng),
///     Host::new(HostSpec::new("shop").with_input("p", Value::Int(20)), &params, &mut rng),
/// ];
/// let program = assemble(r#"
///     input "p"
///     store "first"
///     push "shop"
///     migrate
/// "#)?;
/// // Session 2 re-runs from the top on "shop"; "first" already exists, so
/// // the shop's quote overwrites it and the agent halts... this tiny agent
/// // simply migrates once and halts on arrival.
/// let program = assemble(r#"
///     load "done"
///     jnz finish
///     input "p"
///     store "first"
///     push true
///     store "done"
///     push "shop"
///     migrate
/// finish:
///     halt
/// "#)?;
/// let mut state = DataState::new();
/// state.set("done", Value::Bool(false));
/// let agent = AgentImage::new("a", program, state);
/// let log = EventLog::new();
/// let outcome = run_plain_journey(&mut hosts, "home", agent, &ExecConfig::default(), &log, 10)?;
/// assert_eq!(outcome.path.len(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn run_plain_journey(
    hosts: &mut [Host],
    start: impl Into<HostId>,
    mut agent: AgentImage,
    config: &ExecConfig,
    log: &EventLog,
    max_hops: usize,
) -> Result<JourneyOutcome, JourneyError> {
    let mut current = start.into();
    log.record(Event::AgentCreated {
        agent: agent.id.clone(),
        home: current.clone(),
    });
    let mut path = vec![current.clone()];
    let mut records = Vec::new();

    for _ in 0..max_hops {
        let host = hosts
            .iter_mut()
            .find(|h| h.id() == &current)
            .ok_or_else(|| JourneyError::UnknownHost {
                host: current.clone(),
            })?;
        let record = host.execute_session(&agent, config, log)?;
        agent.state = record.outcome.state.clone();
        let end = record.outcome.end.clone();
        records.push(record);
        match end {
            SessionEnd::Halt => {
                return Ok(JourneyOutcome {
                    final_image: agent,
                    path,
                    records,
                });
            }
            SessionEnd::Migrate(next) => {
                let next = HostId::new(next);
                if !hosts.iter().any(|h| h.id() == &next) {
                    return Err(JourneyError::UnknownHost { host: next });
                }
                let bytes = refstate_wire::to_wire(&agent).len();
                log.record(Event::Migrated {
                    from: current.clone(),
                    to: next.clone(),
                    agent: agent.id.clone(),
                    bytes,
                });
                path.push(next.clone());
                current = next;
            }
        }
    }
    Err(JourneyError::TooManyHops { limit: max_hops })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use refstate_crypto::DsaParams;
    use refstate_vm::{assemble, DataState, Value};

    use crate::host::HostSpec;

    /// A three-hop agent: collects a quote on each host, then returns the
    /// minimum. The itinerary lives in agent state.
    fn quote_agent() -> AgentImage {
        let program = assemble(
            r#"
            ; collect this host's quote
            input "quote"
            load "quotes"
            swap
            listpush
            store "quotes"
            ; done with the itinerary?
            load "idx"
            load "hosts"
            listlen
            ge
            jnz summarize
            ; migrate to hosts[idx]; idx += 1
            load "hosts"
            load "idx"
            listget
            load "idx"
            push 1
            add
            store "idx"
            migrate
        summarize:
            ; find min quote
            load "quotes"
            push 0
            listget
            store "best"
            push 1
            store "i"
        minloop:
            load "i"
            load "quotes"
            listlen
            ge
            jnz done
            load "quotes"
            load "i"
            listget
            dup
            load "best"
            lt
            jz skip
            store "best"
            jump next
        skip:
            pop
        next:
            load "i"
            push 1
            add
            store "i"
            jump minloop
        done:
            halt
        "#,
        )
        .unwrap();
        let mut state = DataState::new();
        state.set(
            "hosts",
            Value::List(vec![Value::Str("h2".into()), Value::Str("h3".into())]),
        );
        state.set("idx", Value::Int(0));
        state.set("quotes", Value::List(vec![]));
        AgentImage::new("quotes", program, state)
    }

    fn make_hosts(prices: [i64; 3]) -> Vec<Host> {
        let mut rng = StdRng::seed_from_u64(77);
        let params = DsaParams::test_group_256();
        vec![
            Host::new(
                HostSpec::new("h1")
                    .trusted()
                    .with_input("quote", Value::Int(prices[0])),
                &params,
                &mut rng,
            ),
            Host::new(
                HostSpec::new("h2").with_input("quote", Value::Int(prices[1])),
                &params,
                &mut rng,
            ),
            Host::new(
                HostSpec::new("h3").with_input("quote", Value::Int(prices[2])),
                &params,
                &mut rng,
            ),
        ]
    }

    #[test]
    fn three_hop_journey_finds_minimum() {
        let mut hosts = make_hosts([300, 120, 250]);
        let log = EventLog::new();
        let outcome = run_plain_journey(
            &mut hosts,
            "h1",
            quote_agent(),
            &ExecConfig::default(),
            &log,
            10,
        )
        .unwrap();
        assert_eq!(outcome.path.len(), 3);
        assert_eq!(outcome.final_image.state.get_int("best"), Some(120));
        assert_eq!(outcome.records.len(), 3);
        assert_eq!(
            log.count_matching(|e| matches!(e, Event::Migrated { .. })),
            2
        );
    }

    #[test]
    fn unknown_host_reported() {
        let mut hosts = make_hosts([1, 2, 3]);
        let program = assemble("push \"nowhere\"\nmigrate").unwrap();
        let agent = AgentImage::new("lost", program, DataState::new());
        let log = EventLog::new();
        let err = run_plain_journey(&mut hosts, "h1", agent, &ExecConfig::default(), &log, 10)
            .unwrap_err();
        assert!(matches!(err, JourneyError::UnknownHost { .. }));
    }

    #[test]
    fn hop_limit_enforced() {
        let mut hosts = make_hosts([1, 2, 3]);
        // Ping-pong forever between h2 and h3.
        let program = assemble(
            r#"
            load "at2"
            jnz go3
            push true
            store "at2"
            push "h2"
            migrate
        go3:
            push false
            store "at2"
            push "h3"
            migrate
        "#,
        )
        .unwrap();
        let mut state = DataState::new();
        state.set("at2", Value::Bool(false));
        let agent = AgentImage::new("pingpong", program, state);
        let log = EventLog::new();
        let err = run_plain_journey(&mut hosts, "h1", agent, &ExecConfig::default(), &log, 7)
            .unwrap_err();
        assert!(matches!(err, JourneyError::TooManyHops { limit: 7 }));
    }

    #[test]
    fn tampering_host_corrupts_final_result() {
        // The malicious middle host inflates the collected quotes list —
        // with no protection, the owner receives a wrong "best" price.
        let mut rng = StdRng::seed_from_u64(78);
        let params = DsaParams::test_group_256();
        let mut hosts = vec![
            Host::new(
                HostSpec::new("h1")
                    .trusted()
                    .with_input("quote", Value::Int(300)),
                &params,
                &mut rng,
            ),
            Host::new(
                HostSpec::new("h2")
                    .with_input("quote", Value::Int(120))
                    .malicious(crate::attack::Attack::TamperVariable {
                        name: "quotes".into(),
                        value: Value::List(vec![Value::Int(999), Value::Int(998)]),
                    }),
                &params,
                &mut rng,
            ),
            Host::new(
                HostSpec::new("h3").with_input("quote", Value::Int(250)),
                &params,
                &mut rng,
            ),
        ];
        let log = EventLog::new();
        let outcome = run_plain_journey(
            &mut hosts,
            "h1",
            quote_agent(),
            &ExecConfig::default(),
            &log,
            10,
        )
        .unwrap();
        // 120 is gone; the attacker skewed the comparison.
        assert_eq!(outcome.final_image.state.get_int("best"), Some(250));
    }

    #[test]
    fn error_display() {
        let e = JourneyError::UnknownHost {
            host: HostId::new("x"),
        };
        assert!(e.to_string().contains('x'));
        let e = JourneyError::TooManyHops { limit: 3 };
        assert!(e.to_string().contains('3'));
        let e = JourneyError::Vm(VmError::FellOffEnd);
        assert!(e.to_string().contains("session failed"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
