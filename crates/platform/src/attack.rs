//! Host behaviours: honest execution or a concrete attack.
//!
//! The attacks map onto the areas of the paper's Fig. 2 taxonomy that a
//! reference-state mechanism is (or is deliberately *not*) able to detect.
//! Each variant documents which area it instantiates and whether the paper
//! says reference states can catch it.

use std::fmt;

use refstate_vm::Value;

use crate::host::HostId;

/// A concrete malicious-host strategy.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Attack {
    /// Fig. 2 area 5 (manipulation of data): overwrite a state variable
    /// after honest execution. **Detectable** — the resulting state differs
    /// from the reference state.
    TamperVariable {
        /// Variable to overwrite.
        name: String,
        /// The forged value.
        value: Value,
    },
    /// Fig. 2 area 5: delete a state variable (e.g. drop a competitor's
    /// offer). **Detectable**.
    DeleteVariable {
        /// Variable to remove.
        name: String,
    },
    /// Fig. 2 area 7 (incorrect execution): do not run the agent at all and
    /// pass its initial state on unchanged. **Detectable** when the session
    /// should have changed state.
    SkipExecution,
    /// Fig. 2 area 7: run the agent but corrupt one integer result by a
    /// multiplicative factor (a biased computation). **Detectable**.
    ScaleIntVariable {
        /// Variable to scale.
        name: String,
        /// The multiplier applied to the honest result.
        factor: i64,
    },
    /// Fig. 2 area 6 (manipulation of control flow): force the agent to
    /// migrate to a host of the attacker's choosing instead of the one the
    /// agent computed. **Detectable** via re-execution (the reference
    /// session ends with a different destination).
    RedirectMigration {
        /// Where the attacker sends the agent.
        to: HostId,
    },
    /// Input suppression: remove the host-supplied input for a tag before
    /// the session. The paper classifies this as **undetectable** by
    /// reference states ("attacks where the party that compiles the input
    /// modifies or suppresses input").
    DropInput {
        /// The input tag to starve.
        tag: String,
    },
    /// Input forgery: replace the genuine input value with a lie. Also
    /// **undetectable** by plain reference states; the §4.3 extension
    /// (signed inputs) catches it.
    ForgeInput {
        /// The input tag to forge.
        tag: String,
        /// The forged value.
        value: Value,
    },
    /// Read attack (Fig. 2 area 2): copy the agent's state for the host's
    /// own use, executing honestly otherwise. **Undetectable** by design —
    /// it leaves no trace in the agent state; included so the detection
    /// matrix can show the mechanism's stated limits.
    ReadState,
    /// Collaboration: execute maliciously (tamper `name` like
    /// [`Attack::TamperVariable`]) while a colluding *next* host promises
    /// to skip checking. The example protocol **cannot detect** collusion
    /// between consecutive hosts (§5.1).
    CollaborateTamper {
        /// Variable to overwrite.
        name: String,
        /// The forged value.
        value: Value,
        /// The colluding next host that will vouch for the session.
        accomplice: HostId,
    },
    /// Chain truncation (Karjoth's "stemming" attack): drop the most
    /// recent `drop` entries of the per-hop result chain the agent
    /// carries — e.g. erase a competitor's offer. Acts on the
    /// chained-integrity protocol data, not the agent state: hosts
    /// executing under a mechanism that carries no chain run honestly.
    /// **Undetectable** by reference states; **detectable** by chained
    /// integrity (the surviving entries' next-hop commitments break).
    TruncateChainTail {
        /// How many tail entries to drop (clamped to the chain length).
        drop: usize,
    },
    /// Chain reordering: swap the two most recent entries of the carried
    /// result chain (a no-op when fewer than two predecessors recorded).
    /// **Undetectable** by reference states; **detectable** by chained
    /// integrity (sequence numbers and chain bindings break).
    SwapChainEntries,
    /// Partial-result substitution: overwrite the most recent
    /// predecessor's recorded partial result in the carried chain with a
    /// forgery. **Undetectable** by reference states; **detectable** by
    /// chained integrity (the victim's MAC/signature no longer covers the
    /// entry).
    ReplacePartialResult,
    /// Colluding-predecessor forgery: the immediate predecessor shared
    /// its chain key, so the attacker rewrites the predecessor's chain
    /// entry *validly* (fresh MAC/signature under the predecessor's key)
    /// and re-chains its own entry on top. **Undetectable** by both
    /// reference states and chained integrity — the chained family's
    /// structural analogue of the §5.1 consecutive-host collusion.
    ForgeChainEntry {
        /// The colluding immediate predecessor whose key the attacker
        /// borrows.
        accomplice: HostId,
    },
    /// Cross-journey replay (Fig. 2 area 5, staged over time): the host
    /// remembered a result variable from a *previous* journey of the same
    /// owner and presents that stale value instead of executing honestly
    /// for the current one. **Detectable** — the replayed state differs
    /// from the reference state computed for the current journey's inputs,
    /// even when the verifier's replay cache is shared across journeys
    /// (the stale session keys to a different cache entry).
    ReplayStaleState {
        /// Variable to overwrite with the remembered value.
        name: String,
        /// The stale value, captured from an earlier journey.
        value: Value,
    },
}

impl Attack {
    /// Returns `true` if the paper's reference-state schemes should detect
    /// this attack (used by tests asserting the protection bandwidth).
    pub fn detectable_by_reference_state(&self) -> bool {
        match self {
            Attack::TamperVariable { .. }
            | Attack::DeleteVariable { .. }
            | Attack::SkipExecution
            | Attack::ScaleIntVariable { .. }
            | Attack::RedirectMigration { .. }
            | Attack::ReplayStaleState { .. } => true,
            Attack::DropInput { .. }
            | Attack::ForgeInput { .. }
            | Attack::ReadState
            | Attack::CollaborateTamper { .. }
            | Attack::TruncateChainTail { .. }
            | Attack::SwapChainEntries
            | Attack::ReplacePartialResult
            | Attack::ForgeChainEntry { .. } => false,
        }
    }

    /// Returns `true` if chained-integrity mechanisms (hop-chained
    /// MACs / signed partial-result encapsulation) should detect this
    /// attack. The complement of [`Attack::detectable_by_reference_state`]
    /// on the chain attacks: chained integrity detects manipulation of
    /// *recorded* partial results without re-execution, but is blind to
    /// computation lies (a host MACs/signs its own lie consistently) and
    /// to a predecessor that colludes by sharing its chain key.
    pub fn detectable_by_chained_integrity(&self) -> bool {
        matches!(
            self,
            Attack::TruncateChainTail { .. }
                | Attack::SwapChainEntries
                | Attack::ReplacePartialResult
        )
    }

    /// Returns `true` for attacks that act on the per-hop result chain
    /// some mechanisms make the agent carry (applied by the chained
    /// journey drivers; a no-op for every other mechanism).
    pub fn targets_result_chain(&self) -> bool {
        matches!(
            self,
            Attack::TruncateChainTail { .. }
                | Attack::SwapChainEntries
                | Attack::ReplacePartialResult
                | Attack::ForgeChainEntry { .. }
        )
    }

    /// A short machine-readable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Attack::TamperVariable { .. } => "tamper-variable",
            Attack::DeleteVariable { .. } => "delete-variable",
            Attack::SkipExecution => "skip-execution",
            Attack::ScaleIntVariable { .. } => "scale-int",
            Attack::RedirectMigration { .. } => "redirect-migration",
            Attack::DropInput { .. } => "drop-input",
            Attack::ForgeInput { .. } => "forge-input",
            Attack::ReadState => "read-state",
            Attack::CollaborateTamper { .. } => "collaborate-tamper",
            Attack::TruncateChainTail { .. } => "truncate-tail",
            Attack::SwapChainEntries => "swap-two-hops",
            Attack::ReplacePartialResult => "replace-partial-result",
            Attack::ForgeChainEntry { .. } => "collude-predecessor",
            Attack::ReplayStaleState { .. } => "replay-stale-state",
        }
    }
}

impl fmt::Display for Attack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Attack::TamperVariable { name, value } => write!(f, "tamper {name}={value}"),
            Attack::DeleteVariable { name } => write!(f, "delete {name}"),
            Attack::SkipExecution => f.write_str("skip execution"),
            Attack::ScaleIntVariable { name, factor } => write!(f, "scale {name} by {factor}"),
            Attack::RedirectMigration { to } => write!(f, "redirect migration to {to}"),
            Attack::DropInput { tag } => write!(f, "drop input {tag}"),
            Attack::ForgeInput { tag, value } => write!(f, "forge input {tag}={value}"),
            Attack::ReadState => f.write_str("read state"),
            Attack::CollaborateTamper {
                name,
                value,
                accomplice,
            } => {
                write!(f, "tamper {name}={value} with accomplice {accomplice}")
            }
            Attack::TruncateChainTail { drop } => {
                write!(f, "truncate result chain by {drop} tail entries")
            }
            Attack::SwapChainEntries => f.write_str("swap two result-chain entries"),
            Attack::ReplacePartialResult => f.write_str("replace a recorded partial result"),
            Attack::ForgeChainEntry { accomplice } => {
                write!(
                    f,
                    "forge chain entry with colluding predecessor {accomplice}"
                )
            }
            Attack::ReplayStaleState { name, value } => {
                write!(f, "replay stale {name}={value} from a previous journey")
            }
        }
    }
}

/// How a host treats the agents it executes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum Behaviour {
    /// Reference behaviour: execute exactly as specified.
    #[default]
    Honest,
    /// Apply the given attack during (or after) the session.
    Malicious(Attack),
}

impl Behaviour {
    /// Returns the attack, if malicious.
    pub fn attack(&self) -> Option<&Attack> {
        match self {
            Behaviour::Honest => None,
            Behaviour::Malicious(a) => Some(a),
        }
    }

    /// Returns `true` for honest behaviour.
    pub fn is_honest(&self) -> bool {
        matches!(self, Behaviour::Honest)
    }
}

impl fmt::Display for Behaviour {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Behaviour::Honest => f.write_str("honest"),
            Behaviour::Malicious(a) => write!(f, "malicious ({a})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_attacks() -> Vec<Attack> {
        vec![
            Attack::TamperVariable {
                name: "x".into(),
                value: Value::Int(0),
            },
            Attack::DeleteVariable { name: "x".into() },
            Attack::SkipExecution,
            Attack::ScaleIntVariable {
                name: "x".into(),
                factor: 2,
            },
            Attack::RedirectMigration {
                to: HostId::new("evil"),
            },
            Attack::DropInput { tag: "t".into() },
            Attack::ForgeInput {
                tag: "t".into(),
                value: Value::Int(1),
            },
            Attack::ReadState,
            Attack::CollaborateTamper {
                name: "x".into(),
                value: Value::Int(0),
                accomplice: HostId::new("h3"),
            },
            Attack::TruncateChainTail { drop: 1 },
            Attack::SwapChainEntries,
            Attack::ReplacePartialResult,
            Attack::ForgeChainEntry {
                accomplice: HostId::new("h2"),
            },
            Attack::ReplayStaleState {
                name: "x".into(),
                value: Value::Int(0),
            },
        ]
    }

    #[test]
    fn detectability_matches_paper_claims() {
        let detectable: Vec<&'static str> = all_attacks()
            .iter()
            .filter(|a| a.detectable_by_reference_state())
            .map(|a| a.label())
            .collect();
        assert_eq!(
            detectable,
            vec![
                "tamper-variable",
                "delete-variable",
                "skip-execution",
                "scale-int",
                "redirect-migration",
                "replay-stale-state"
            ]
        );
    }

    #[test]
    fn chained_integrity_bandwidth_matches_design() {
        let detectable: Vec<&'static str> = all_attacks()
            .iter()
            .filter(|a| a.detectable_by_chained_integrity())
            .map(|a| a.label())
            .collect();
        assert_eq!(
            detectable,
            vec!["truncate-tail", "swap-two-hops", "replace-partial-result"]
        );
        // Every chain attack targets the carried chain; collusion does too
        // but evades detection (the structural blind spot).
        for attack in all_attacks() {
            if attack.detectable_by_chained_integrity() {
                assert!(attack.targets_result_chain());
                assert!(!attack.detectable_by_reference_state(), "{attack:?}");
            }
        }
        let collude = Attack::ForgeChainEntry {
            accomplice: HostId::new("h2"),
        };
        assert!(collude.targets_result_chain());
        assert!(!collude.detectable_by_chained_integrity());
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::BTreeSet<_> =
            all_attacks().iter().map(|a| a.label()).collect();
        assert_eq!(labels.len(), all_attacks().len());
    }

    #[test]
    fn behaviour_accessors() {
        assert!(Behaviour::Honest.is_honest());
        assert!(Behaviour::Honest.attack().is_none());
        let b = Behaviour::Malicious(Attack::SkipExecution);
        assert!(!b.is_honest());
        assert_eq!(b.attack(), Some(&Attack::SkipExecution));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Behaviour::Honest.to_string(), "honest");
        let b = Behaviour::Malicious(Attack::DropInput { tag: "p".into() });
        assert_eq!(b.to_string(), "malicious (drop input p)");
    }
}
