//! Property tests for the platform: feed FIFO discipline, attack
//! post-conditions, and journey determinism.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use refstate_crypto::DsaParams;
use refstate_platform::{
    run_plain_journey, AgentImage, Attack, EventLog, Host, HostSpec, InputFeed,
};
use refstate_vm::{assemble, DataState, ExecConfig, Value};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The feed hands values back per tag in exactly insertion order.
    #[test]
    fn feed_is_fifo_per_tag(values in proptest::collection::vec((0u8..3, any::<i64>()), 0..40)) {
        let mut feed = InputFeed::new();
        for (tag, v) in &values {
            feed.push(format!("t{tag}"), Value::Int(*v));
        }
        for tag in 0u8..3 {
            let expected: Vec<i64> =
                values.iter().filter(|(t, _)| *t == tag).map(|(_, v)| *v).collect();
            let mut actual = Vec::new();
            while let Some(item) = feed.take(&format!("t{tag}")) {
                actual.push(item.value.as_int().unwrap());
            }
            prop_assert_eq!(actual, expected);
        }
    }

    /// drop_next removes exactly one element; forge_all preserves length.
    #[test]
    fn feed_attack_postconditions(n in 1usize..20) {
        let mut feed = InputFeed::new();
        for i in 0..n {
            feed.push("x", Value::Int(i as i64));
        }
        feed.drop_next("x");
        prop_assert_eq!(feed.remaining("x"), n - 1);
        feed.forge_all("x", &Value::Int(-1));
        prop_assert_eq!(feed.remaining("x"), n - 1);
        while let Some(item) = feed.take("x") {
            prop_assert_eq!(item.value, Value::Int(-1));
            prop_assert!(item.provenance.is_none());
        }
    }

    /// A plain journey's final state is a deterministic function of the
    /// host inputs, regardless of the key-generation seed.
    #[test]
    fn journey_deterministic_across_seeds(
        a in -100i64..100,
        b in -100i64..100,
        seed1 in 0u64..500,
        seed2 in 500u64..1000,
    ) {
        let program = assemble(
            r#"
            input "n"
            load "acc"
            add
            store "acc"
            load "done"
            jnz fin
            push true
            store "done"
            push "h2"
            migrate
        fin:
            halt
        "#,
        )
        .unwrap();
        let build = |seed: u64| -> Vec<Host> {
            let mut rng = StdRng::seed_from_u64(seed);
            let params = DsaParams::test_group_256();
            vec![
                Host::new(HostSpec::new("h1").with_input("n", Value::Int(a)), &params, &mut rng),
                Host::new(HostSpec::new("h2").with_input("n", Value::Int(b)), &params, &mut rng),
            ]
        };
        let run = |mut hosts: Vec<Host>| {
            let mut state = DataState::new();
            state.set("acc", Value::Int(0));
            state.set("done", Value::Bool(false));
            let agent = AgentImage::new("d", program.clone(), state);
            let log = EventLog::new();
            run_plain_journey(&mut hosts, "h1", agent, &ExecConfig::default(), &log, 5)
                .unwrap()
                .final_image
                .state
        };
        let s1 = run(build(seed1));
        let s2 = run(build(seed2));
        prop_assert_eq!(&s1, &s2);
        prop_assert_eq!(s1.get_int("acc"), Some(a + b));
    }

    /// A tampering host always leaves the forged value in place, and the
    /// recorded input log still carries the honest inputs.
    #[test]
    fn tamper_leaves_honest_input_log(honest in -100i64..100, forged in -100i64..100) {
        prop_assume!(honest != forged);
        let mut rng = StdRng::seed_from_u64(77);
        let params = DsaParams::test_group_256();
        let mut host = Host::new(
            HostSpec::new("m")
                .with_input("n", Value::Int(honest))
                .malicious(Attack::TamperVariable { name: "v".into(), value: Value::Int(forged) }),
            &params,
            &mut rng,
        );
        let program = assemble("input \"n\"\nstore \"v\"\nhalt").unwrap();
        let agent = AgentImage::new("t", program, DataState::new());
        let log = EventLog::new();
        let record = host.execute_session(&agent, &ExecConfig::default(), &log).unwrap();
        prop_assert_eq!(record.outcome.state.get_int("v"), Some(forged));
        prop_assert_eq!(record.outcome.input_log.records()[0].value.clone(), Value::Int(honest));
    }
}
