//! The encoding half: an append-only byte sink with primitive helpers.

/// An append-only byte buffer with little-endian primitive helpers.
///
/// All multi-byte integers are written little-endian; lengths are `u32`.
///
/// # Examples
///
/// ```
/// use refstate_wire::Writer;
///
/// let mut w = Writer::new();
/// w.put_u32(7);
/// w.put_str("hi");
/// assert_eq!(w.into_inner(), vec![7, 0, 0, 0, 2, 0, 0, 0, b'h', b'i']);
/// ```
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    /// Creates a writer with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Writer {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Consumes the writer and returns the encoded bytes.
    pub fn into_inner(self) -> Vec<u8> {
        self.buf
    }

    /// Returns the number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16` little-endian.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32` little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64` as its two's-complement `u64` image.
    pub fn put_i64(&mut self, v: i64) {
        self.put_u64(v as u64);
    }

    /// Appends a bool as one byte (`0` or `1`).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Appends raw bytes without a length prefix.
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a `u32` length prefix followed by the bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes.len()` exceeds `u32::MAX` (not reachable for the
    /// agent states this workspace produces).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_len(bytes.len());
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }

    /// Appends a collection length as `u32`.
    ///
    /// # Panics
    ///
    /// Panics if `len` exceeds `u32::MAX`.
    pub fn put_len(&mut self, len: usize) {
        let len = u32::try_from(len).expect("wire length exceeds u32::MAX");
        self.put_u32(len);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_are_little_endian() {
        let mut w = Writer::new();
        w.put_u16(0x0102);
        w.put_u32(0x03040506);
        w.put_u64(0x0708090a0b0c0d0e);
        assert_eq!(
            w.into_inner(),
            vec![
                0x02, 0x01, 0x06, 0x05, 0x04, 0x03, 0x0e, 0x0d, 0x0c, 0x0b, 0x0a, 0x09, 0x08, 0x07
            ]
        );
    }

    #[test]
    fn i64_two_complement() {
        let mut w = Writer::new();
        w.put_i64(-1);
        assert_eq!(w.into_inner(), vec![0xff; 8]);
    }

    #[test]
    fn bytes_and_strings_length_prefixed() {
        let mut w = Writer::new();
        w.put_bytes(&[9, 8]);
        w.put_str("ab");
        assert_eq!(
            w.into_inner(),
            vec![2, 0, 0, 0, 9, 8, 2, 0, 0, 0, b'a', b'b']
        );
    }

    #[test]
    fn raw_has_no_prefix() {
        let mut w = Writer::new();
        w.put_raw(&[1, 2, 3]);
        assert_eq!(w.len(), 3);
        assert!(!w.is_empty());
    }

    #[test]
    fn empty_writer() {
        let w = Writer::new();
        assert!(w.is_empty());
        assert_eq!(w.len(), 0);
        assert!(w.into_inner().is_empty());
    }
}
