//! The decoding half: a bounds-checked cursor over input bytes.

use crate::error::WireError;

/// A bounds-checked cursor over a byte slice.
///
/// Every accessor returns [`WireError::UnexpectedEof`] instead of panicking
/// when the input is truncated, so hostile or corrupt messages cannot crash
/// a host.
///
/// # Examples
///
/// ```
/// use refstate_wire::Reader;
///
/// let mut r = Reader::new(&[7, 0, 0, 0]);
/// assert_eq!(r.take_u32()?, 7);
/// r.finish()?;
/// # Ok::<(), refstate_wire::WireError>(())
/// ```
#[derive(Debug)]
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    /// Returns the number of unread bytes.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Returns `true` if all input has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Asserts that all input has been consumed.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::TrailingBytes`] if bytes remain.
    pub fn finish(&self) -> Result<(), WireError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes {
                count: self.remaining(),
            })
        }
    }

    /// Takes `n` raw bytes.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::UnexpectedEof`] if fewer than `n` remain.
    pub fn take_raw(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::UnexpectedEof {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Takes one byte.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::UnexpectedEof`] on truncated input.
    pub fn take_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take_raw(1)?[0])
    }

    /// Takes a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::UnexpectedEof`] on truncated input.
    pub fn take_u16(&mut self) -> Result<u16, WireError> {
        let b = self.take_raw(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Takes a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::UnexpectedEof`] on truncated input.
    pub fn take_u32(&mut self) -> Result<u32, WireError> {
        let b = self.take_raw(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Takes a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::UnexpectedEof`] on truncated input.
    pub fn take_u64(&mut self) -> Result<u64, WireError> {
        let b = self.take_raw(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Takes an `i64` from its two's-complement `u64` image.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::UnexpectedEof`] on truncated input.
    pub fn take_i64(&mut self) -> Result<i64, WireError> {
        Ok(self.take_u64()? as i64)
    }

    /// Takes a bool encoded as a single `0`/`1` byte.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::InvalidValue`] for any other byte.
    pub fn take_bool(&mut self) -> Result<bool, WireError> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::InvalidValue { context: "bool" }),
        }
    }

    /// Takes a `u32` length prefix, validating it against the remaining
    /// input so hostile lengths cannot trigger huge allocations.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::LengthOverflow`] if the declared length exceeds
    /// the remaining byte count.
    pub fn take_len(&mut self) -> Result<usize, WireError> {
        let len = self.take_u32()? as usize;
        if len > self.remaining() {
            return Err(WireError::LengthOverflow { declared: len });
        }
        Ok(len)
    }

    /// Takes a length-prefixed byte string.
    ///
    /// # Errors
    ///
    /// Propagates length and EOF errors.
    pub fn take_bytes(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.take_len()?;
        self.take_raw(len)
    }

    /// Takes a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::InvalidUtf8`] if the bytes are not valid UTF-8.
    pub fn take_str(&mut self) -> Result<&'a str, WireError> {
        let bytes = self.take_bytes()?;
        std::str::from_utf8(bytes).map_err(|_| WireError::InvalidUtf8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round() {
        let mut r = Reader::new(&[1, 2, 0, 3, 0, 0, 0]);
        assert_eq!(r.take_u8().unwrap(), 1);
        assert_eq!(r.take_u16().unwrap(), 2);
        assert_eq!(r.take_u32().unwrap(), 3);
        assert!(r.is_empty());
        assert!(r.finish().is_ok());
    }

    #[test]
    fn eof_detected() {
        let mut r = Reader::new(&[1]);
        assert_eq!(
            r.take_u32(),
            Err(WireError::UnexpectedEof {
                needed: 4,
                remaining: 1
            })
        );
    }

    #[test]
    fn trailing_bytes_detected() {
        let r = Reader::new(&[1, 2]);
        assert_eq!(r.finish(), Err(WireError::TrailingBytes { count: 2 }));
    }

    #[test]
    fn hostile_length_rejected() {
        // Declares 4 GiB of payload with 2 bytes present.
        let mut r = Reader::new(&[0xff, 0xff, 0xff, 0xff, 0, 0]);
        assert!(matches!(
            r.take_bytes(),
            Err(WireError::LengthOverflow { .. })
        ));
    }

    #[test]
    fn bool_strictness() {
        let mut r = Reader::new(&[0, 1, 2]);
        assert!(!r.take_bool().unwrap());
        assert!(r.take_bool().unwrap());
        assert_eq!(
            r.take_bool(),
            Err(WireError::InvalidValue { context: "bool" })
        );
    }

    #[test]
    fn utf8_validation() {
        let mut r = Reader::new(&[2, 0, 0, 0, 0xff, 0xfe]);
        assert_eq!(r.take_str(), Err(WireError::InvalidUtf8));
    }

    #[test]
    fn i64_round() {
        let mut r = Reader::new(&[0xff; 8]);
        assert_eq!(r.take_i64().unwrap(), -1);
    }
}
