//! Canonical deterministic binary encoding.
//!
//! The reference-state protocols sign and hash agent states, inputs, and
//! traces. For a signature produced on one host to verify on another, the
//! byte image of a value must be *canonical*: the same logical value must
//! always encode to the same bytes. (The original system used Java object
//! serialization for this; a canonical codec is strictly better behaved.)
//!
//! This crate provides:
//!
//! * [`Writer`] / [`Reader`] — bounds-checked little-endian primitives,
//! * [`Encode`] / [`Decode`] — traits implemented by every wire-visible type
//!   in the workspace (values, states, traces, certificates),
//! * blanket implementations for primitives, `String`, `Vec<T>`,
//!   `Option<T>`, pairs, and `BTreeMap` (encoded in key order, which is what
//!   makes map-bearing structures canonical).
//!
//! # Examples
//!
//! ```
//! use refstate_wire::{from_wire, to_wire};
//!
//! let v: Vec<String> = vec!["a".into(), "b".into()];
//! let bytes = to_wire(&v);
//! let back: Vec<String> = from_wire(&bytes)?;
//! assert_eq!(v, back);
//! # Ok::<(), refstate_wire::WireError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod frame;
mod reader;
mod traits;
mod writer;

pub use error::WireError;
pub use frame::{write_frame, write_message, FrameError, FrameReader, DEFAULT_MAX_FRAME};
pub use reader::Reader;
pub use traits::{Decode, Encode};
pub use writer::Writer;

/// Encodes a value to its canonical byte representation.
pub fn to_wire<T: Encode + ?Sized>(value: &T) -> Vec<u8> {
    let mut w = Writer::new();
    value.encode(&mut w);
    w.into_inner()
}

/// Decodes a value from bytes, requiring that all input is consumed.
///
/// # Errors
///
/// Returns [`WireError`] if the bytes are malformed, truncated, or if
/// trailing bytes remain after the value.
pub fn from_wire<T: Decode>(bytes: &[u8]) -> Result<T, WireError> {
    let mut r = Reader::new(bytes);
    let value = T::decode(&mut r)?;
    r.finish()?;
    Ok(value)
}
