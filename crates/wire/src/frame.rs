//! Length-prefixed framing over byte streams.
//!
//! The canonical codec ([`crate::to_wire`] / [`crate::from_wire`]) encodes
//! *values*; a resident service needs *message boundaries* on a stream.
//! A frame is a little-endian `u32` payload length followed by exactly
//! that many payload bytes. The framing layer is deliberately hostile-
//! input-first:
//!
//! * a declared length above the reader's cap is rejected as
//!   [`FrameError::Oversized`] **before** any allocation, so a malicious
//!   peer cannot make the service reserve gigabytes with five bytes,
//! * a stream that ends mid-header or mid-payload is
//!   [`FrameError::Truncated`] — never a panic, never silently treated as
//!   a clean end of stream,
//! * a stream that ends exactly on a frame boundary is a clean EOF
//!   ([`FrameReader::read_frame`] returns `Ok(None)`).
//!
//! # Examples
//!
//! ```
//! use refstate_wire::frame::{write_frame, FrameReader, DEFAULT_MAX_FRAME};
//!
//! let mut stream = Vec::new();
//! write_frame(&mut stream, b"hello", DEFAULT_MAX_FRAME)?;
//! write_frame(&mut stream, b"", DEFAULT_MAX_FRAME)?;
//!
//! let mut reader = FrameReader::new(&stream[..], DEFAULT_MAX_FRAME);
//! assert_eq!(reader.read_frame()?.as_deref(), Some(&b"hello"[..]));
//! assert_eq!(reader.read_frame()?.as_deref(), Some(&b""[..]));
//! assert_eq!(reader.read_frame()?, None); // clean EOF
//! # Ok::<(), refstate_wire::frame::FrameError>(())
//! ```

use std::error::Error;
use std::fmt;
use std::io::{self, Read, Write};

use crate::error::WireError;
use crate::traits::{Decode, Encode};
use crate::{from_wire, to_wire};

/// Default cap on a single frame's payload (1 MiB): far above any message
/// the verification service exchanges, far below an allocation attack.
pub const DEFAULT_MAX_FRAME: usize = 1 << 20;

/// An error produced while reading or writing length-prefixed frames.
#[derive(Debug)]
#[non_exhaustive]
pub enum FrameError {
    /// A frame declared a payload length above the configured cap (or a
    /// writer was handed one). Detected before any allocation.
    Oversized {
        /// The declared (or attempted) payload length.
        declared: usize,
        /// The configured cap.
        max: usize,
    },
    /// The stream ended in the middle of a frame — inside the length
    /// header or inside a payload whose length was already declared.
    Truncated {
        /// Bytes still needed to complete the frame.
        needed: usize,
        /// Bytes actually obtained before the stream ended.
        got: usize,
    },
    /// The underlying transport failed.
    Io(io::Error),
    /// The frame's payload failed canonical decoding (see
    /// [`read_message`](FrameReader::read_message)).
    Wire(WireError),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Oversized { declared, max } => {
                write!(f, "frame declares {declared} payload bytes (cap {max})")
            }
            FrameError::Truncated { needed, got } => {
                write!(
                    f,
                    "stream ended mid-frame: needed {needed} bytes, got {got}"
                )
            }
            FrameError::Io(e) => write!(f, "transport error: {e}"),
            FrameError::Wire(e) => write!(f, "frame payload malformed: {e}"),
        }
    }
}

impl Error for FrameError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            FrameError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl From<WireError> for FrameError {
    fn from(e: WireError) -> Self {
        FrameError::Wire(e)
    }
}

/// Writes one frame: `u32` little-endian payload length, then the payload.
///
/// # Errors
///
/// [`FrameError::Oversized`] if `payload.len() > max`, [`FrameError::Io`]
/// on transport failure.
pub fn write_frame(w: &mut impl Write, payload: &[u8], max: usize) -> Result<(), FrameError> {
    if payload.len() > max {
        return Err(FrameError::Oversized {
            declared: payload.len(),
            max,
        });
    }
    let len = u32::try_from(payload.len()).map_err(|_| FrameError::Oversized {
        declared: payload.len(),
        max,
    })?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    Ok(())
}

/// Encodes `value` canonically and writes it as one frame.
///
/// # Errors
///
/// See [`write_frame`].
pub fn write_message<T: Encode + ?Sized>(
    w: &mut impl Write,
    value: &T,
    max: usize,
) -> Result<(), FrameError> {
    write_frame(w, &to_wire(value), max)
}

/// A frame reader over any byte stream.
///
/// Distinguishes the three stream endings a server must tell apart: a
/// clean EOF on a frame boundary (`Ok(None)`), a truncated frame
/// ([`FrameError::Truncated`]), and a hostile declared length
/// ([`FrameError::Oversized`]).
#[derive(Debug)]
pub struct FrameReader<R> {
    inner: R,
    max: usize,
}

impl<R: Read> FrameReader<R> {
    /// Wraps `inner`, rejecting frames whose declared payload exceeds
    /// `max` bytes.
    pub fn new(inner: R, max: usize) -> Self {
        FrameReader { inner, max }
    }

    /// The configured payload cap.
    pub fn max_frame(&self) -> usize {
        self.max
    }

    /// Consumes the reader, returning the underlying stream.
    pub fn into_inner(self) -> R {
        self.inner
    }

    /// Reads the next frame's payload.
    ///
    /// Returns `Ok(None)` when the stream ends exactly on a frame
    /// boundary.
    ///
    /// # Errors
    ///
    /// [`FrameError::Truncated`] when the stream ends inside a frame,
    /// [`FrameError::Oversized`] when the header declares more than the
    /// cap, [`FrameError::Io`] on transport failure.
    pub fn read_frame(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        let mut header = [0u8; 4];
        match read_exact_or_eof(&mut self.inner, &mut header)? {
            0 => return Ok(None),
            4 => {}
            got => {
                return Err(FrameError::Truncated {
                    needed: 4 - got,
                    got,
                })
            }
        }
        let declared = u32::from_le_bytes(header) as usize;
        if declared > self.max {
            return Err(FrameError::Oversized {
                declared,
                max: self.max,
            });
        }
        let mut payload = vec![0u8; declared];
        let got = read_exact_or_eof(&mut self.inner, &mut payload)?;
        if got < declared {
            return Err(FrameError::Truncated {
                needed: declared - got,
                got,
            });
        }
        Ok(Some(payload))
    }

    /// Reads the next frame and decodes its payload canonically.
    ///
    /// Returns `Ok(None)` on clean EOF.
    ///
    /// # Errors
    ///
    /// Everything [`read_frame`](Self::read_frame) raises, plus
    /// [`FrameError::Wire`] when the payload is not a canonical `T`.
    pub fn read_message<T: Decode>(&mut self) -> Result<Option<T>, FrameError> {
        match self.read_frame()? {
            None => Ok(None),
            Some(payload) => Ok(Some(from_wire(&payload)?)),
        }
    }
}

/// Fills `buf` from `r`, tolerating EOF: returns how many bytes were
/// actually read (buf.len() on success, less when the stream ended).
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> Result<usize, io::Error> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_three_frames() {
        let mut stream = Vec::new();
        write_frame(&mut stream, b"alpha", 64).unwrap();
        write_frame(&mut stream, b"", 64).unwrap();
        write_frame(&mut stream, &[0xffu8; 64], 64).unwrap();
        let mut reader = FrameReader::new(&stream[..], 64);
        assert_eq!(reader.read_frame().unwrap().unwrap(), b"alpha");
        assert_eq!(reader.read_frame().unwrap().unwrap(), b"");
        assert_eq!(reader.read_frame().unwrap().unwrap(), vec![0xffu8; 64]);
        assert!(reader.read_frame().unwrap().is_none());
        // EOF is sticky.
        assert!(reader.read_frame().unwrap().is_none());
    }

    #[test]
    fn oversized_write_is_rejected() {
        let mut out = Vec::new();
        let err = write_frame(&mut out, &[0u8; 9], 8).unwrap_err();
        assert!(matches!(
            err,
            FrameError::Oversized {
                declared: 9,
                max: 8
            }
        ));
        assert!(out.is_empty(), "nothing half-written");
    }

    #[test]
    fn oversized_declaration_is_rejected_before_reading_payload() {
        // Header says 4 GiB - 1; only the header is present.
        let stream = [0xff, 0xff, 0xff, 0xff];
        let mut reader = FrameReader::new(&stream[..], DEFAULT_MAX_FRAME);
        let err = reader.read_frame().unwrap_err();
        assert!(matches!(err, FrameError::Oversized { .. }));
    }

    #[test]
    fn truncated_header_is_an_error_not_eof() {
        let stream = [7u8, 0];
        let mut reader = FrameReader::new(&stream[..], 64);
        let err = reader.read_frame().unwrap_err();
        assert!(matches!(err, FrameError::Truncated { needed: 2, got: 2 }));
    }

    #[test]
    fn truncated_payload_is_an_error_not_eof() {
        let mut stream = Vec::new();
        write_frame(&mut stream, b"hello", 64).unwrap();
        stream.truncate(stream.len() - 2); // drop two payload bytes
        let mut reader = FrameReader::new(&stream[..], 64);
        let err = reader.read_frame().unwrap_err();
        assert!(matches!(err, FrameError::Truncated { needed: 2, got: 3 }));
    }

    #[test]
    fn message_round_trip_and_malformed_payload() {
        let mut stream = Vec::new();
        write_message(&mut stream, &vec!["x".to_owned(), "y".to_owned()], 64).unwrap();
        // A frame whose payload is not a canonical Vec<String>.
        write_frame(&mut stream, &[0xde, 0xad], 64).unwrap();
        let mut reader = FrameReader::new(&stream[..], 64);
        let v: Vec<String> = reader.read_message().unwrap().unwrap();
        assert_eq!(v, vec!["x", "y"]);
        let err = reader.read_message::<Vec<String>>().unwrap_err();
        assert!(matches!(err, FrameError::Wire(_)));
    }

    #[test]
    fn display_is_informative() {
        let e = FrameError::Oversized {
            declared: 10,
            max: 5,
        };
        assert!(e.to_string().contains("10"));
        let e = FrameError::Truncated { needed: 3, got: 1 };
        assert!(e.to_string().contains("mid-frame"));
    }
}
