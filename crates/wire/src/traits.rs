//! The [`Encode`] / [`Decode`] traits and implementations for std types.

use std::collections::BTreeMap;

use crate::error::WireError;
use crate::reader::Reader;
use crate::writer::Writer;

/// A type with a canonical byte encoding.
///
/// Implementations must be *deterministic*: equal values must produce equal
/// bytes, regardless of process, platform, or insertion order of any
/// underlying collections. This is the property that makes hashes and
/// signatures over encoded values meaningful across hosts.
pub trait Encode {
    /// Appends the canonical encoding of `self` to `w`.
    fn encode(&self, w: &mut Writer);

    /// Convenience: encodes into a fresh byte vector.
    fn to_wire_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode(&mut w);
        w.into_inner()
    }
}

/// A type that can be reconstructed from its canonical byte encoding.
pub trait Decode: Sized {
    /// Reads a value from `r`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on truncated or malformed input.
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError>;
}

impl Encode for u8 {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(*self);
    }
}

impl Decode for u8 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.take_u8()
    }
}

impl Encode for u16 {
    fn encode(&self, w: &mut Writer) {
        w.put_u16(*self);
    }
}

impl Decode for u16 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.take_u16()
    }
}

impl Encode for u32 {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(*self);
    }
}

impl Decode for u32 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.take_u32()
    }
}

impl Encode for u64 {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(*self);
    }
}

impl Decode for u64 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.take_u64()
    }
}

impl Encode for i64 {
    fn encode(&self, w: &mut Writer) {
        w.put_i64(*self);
    }
}

impl Decode for i64 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.take_i64()
    }
}

impl Encode for bool {
    fn encode(&self, w: &mut Writer) {
        w.put_bool(*self);
    }
}

impl Decode for bool {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.take_bool()
    }
}

impl Encode for str {
    fn encode(&self, w: &mut Writer) {
        w.put_str(self);
    }
}

impl Encode for String {
    fn encode(&self, w: &mut Writer) {
        w.put_str(self);
    }
}

impl Decode for String {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(r.take_str()?.to_owned())
    }
}

impl<T: Encode> Encode for [T] {
    fn encode(&self, w: &mut Writer) {
        w.put_len(self.len());
        for item in self {
            item.encode(w);
        }
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, w: &mut Writer) {
        self.as_slice().encode(w);
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = r.take_u32()? as usize;
        // Guard allocation: each element takes at least one byte on the wire.
        if len > r.remaining() {
            return Err(WireError::LengthOverflow { declared: len });
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, w: &mut Writer) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.encode(w);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.take_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            tag => Err(WireError::InvalidTag {
                context: "Option",
                tag,
            }),
        }
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        self.1.encode(w);
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: Encode, B: Encode, C: Encode> Encode for (A, B, C) {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        self.1.encode(w);
        self.2.encode(w);
    }
}

impl<A: Decode, B: Decode, C: Decode> Decode for (A, B, C) {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

/// Maps encode in ascending key order — `BTreeMap` iteration order — which
/// is what makes structures containing maps canonical.
impl<K: Encode + Ord, V: Encode> Encode for BTreeMap<K, V> {
    fn encode(&self, w: &mut Writer) {
        w.put_len(self.len());
        for (k, v) in self {
            k.encode(w);
            v.encode(w);
        }
    }
}

impl<K: Decode + Ord, V: Decode> Decode for BTreeMap<K, V> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = r.take_u32()? as usize;
        if len > r.remaining() {
            return Err(WireError::LengthOverflow { declared: len });
        }
        // Decode pairs first, then enforce strictly ascending key order so
        // that decode(encode(x)) accepts only the canonical byte image.
        let mut pairs = Vec::with_capacity(len);
        for _ in 0..len {
            let k = K::decode(r)?;
            let v = V::decode(r)?;
            pairs.push((k, v));
        }
        if !pairs.windows(2).all(|w| w[0].0 < w[1].0) {
            return Err(WireError::InvalidValue {
                context: "map key order",
            });
        }
        Ok(pairs.into_iter().collect())
    }
}

impl<T: Encode + ?Sized> Encode for &T {
    fn encode(&self, w: &mut Writer) {
        (*self).encode(w);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{from_wire, to_wire};

    #[test]
    fn primitive_round_trips() {
        assert_eq!(from_wire::<u8>(&to_wire(&7u8)).unwrap(), 7);
        assert_eq!(from_wire::<u16>(&to_wire(&300u16)).unwrap(), 300);
        assert_eq!(from_wire::<u32>(&to_wire(&70_000u32)).unwrap(), 70_000);
        assert_eq!(from_wire::<u64>(&to_wire(&u64::MAX)).unwrap(), u64::MAX);
        assert_eq!(from_wire::<i64>(&to_wire(&-42i64)).unwrap(), -42);
        assert!(from_wire::<bool>(&to_wire(&true)).unwrap());
        assert_eq!(from_wire::<String>(&to_wire("héllo")).unwrap(), "héllo");
    }

    #[test]
    fn container_round_trips() {
        let v = vec![1u64, 2, 3];
        assert_eq!(from_wire::<Vec<u64>>(&to_wire(&v)).unwrap(), v);
        let o: Option<String> = Some("x".into());
        assert_eq!(from_wire::<Option<String>>(&to_wire(&o)).unwrap(), o);
        let n: Option<String> = None;
        assert_eq!(from_wire::<Option<String>>(&to_wire(&n)).unwrap(), n);
        let pair = (1u32, "a".to_string());
        assert_eq!(from_wire::<(u32, String)>(&to_wire(&pair)).unwrap(), pair);
        let triple = (1u8, 2u16, 3u32);
        assert_eq!(
            from_wire::<(u8, u16, u32)>(&to_wire(&triple)).unwrap(),
            triple
        );
    }

    #[test]
    fn map_round_trip_and_determinism() {
        let mut m = BTreeMap::new();
        m.insert("b".to_string(), 2u64);
        m.insert("a".to_string(), 1u64);
        let bytes = to_wire(&m);
        let mut m2 = BTreeMap::new();
        m2.insert("a".to_string(), 1u64);
        m2.insert("b".to_string(), 2u64);
        assert_eq!(bytes, to_wire(&m2), "insertion order must not matter");
        assert_eq!(from_wire::<BTreeMap<String, u64>>(&bytes).unwrap(), m);
    }

    #[test]
    fn map_rejects_unordered_keys() {
        // Hand-craft a map encoding with keys out of order: {b:1, a:2}.
        let mut w = Writer::new();
        w.put_len(2);
        w.put_str("b");
        w.put_u64(1);
        w.put_str("a");
        w.put_u64(2);
        let err = from_wire::<BTreeMap<String, u64>>(&w.into_inner()).unwrap_err();
        assert_eq!(
            err,
            WireError::InvalidValue {
                context: "map key order"
            }
        );
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = to_wire(&5u8);
        bytes.push(0);
        assert!(matches!(
            from_wire::<u8>(&bytes),
            Err(WireError::TrailingBytes { count: 1 })
        ));
    }

    #[test]
    fn truncation_rejected() {
        let bytes = to_wire(&vec![1u64, 2, 3]);
        assert!(from_wire::<Vec<u64>>(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn vec_length_guard() {
        // Declares 2^32-1 elements with 4 bytes of payload.
        let bytes = [0xff, 0xff, 0xff, 0xff, 1, 2, 3, 4];
        assert!(matches!(
            from_wire::<Vec<u64>>(&bytes),
            Err(WireError::LengthOverflow { .. })
        ));
    }
}
