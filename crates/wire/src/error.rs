//! Decoding errors.

use std::error::Error;
use std::fmt;

/// An error produced while decoding canonical wire bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// The input ended before the value was complete.
    UnexpectedEof {
        /// Bytes needed to continue decoding.
        needed: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// A type or enum tag byte had an unknown value.
    InvalidTag {
        /// Context describing which type was being decoded.
        context: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// A string field did not contain valid UTF-8.
    InvalidUtf8,
    /// A declared length exceeds the remaining input (corrupt or hostile).
    LengthOverflow {
        /// The declared element or byte count.
        declared: usize,
    },
    /// Input bytes remained after the top-level value was decoded.
    TrailingBytes {
        /// Number of unconsumed bytes.
        count: usize,
    },
    /// A value violated a domain constraint (e.g. a bool byte that is
    /// neither 0 nor 1).
    InvalidValue {
        /// Context describing the constraint.
        context: &'static str,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEof { needed, remaining } => write!(
                f,
                "unexpected end of input: needed {needed} bytes, {remaining} remaining"
            ),
            WireError::InvalidTag { context, tag } => {
                write!(f, "invalid tag {tag:#04x} while decoding {context}")
            }
            WireError::InvalidUtf8 => f.write_str("string field contains invalid UTF-8"),
            WireError::LengthOverflow { declared } => {
                write!(f, "declared length {declared} exceeds remaining input")
            }
            WireError::TrailingBytes { count } => {
                write!(f, "{count} trailing bytes after value")
            }
            WireError::InvalidValue { context } => {
                write!(f, "invalid value while decoding {context}")
            }
        }
    }
}

impl Error for WireError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = WireError::UnexpectedEof {
            needed: 4,
            remaining: 1,
        };
        assert!(e.to_string().contains("needed 4"));
        let e = WireError::InvalidTag {
            context: "Value",
            tag: 0xff,
        };
        assert!(e.to_string().contains("Value"));
        assert!(WireError::InvalidUtf8.to_string().contains("UTF-8"));
        assert!(WireError::LengthOverflow { declared: 9 }
            .to_string()
            .contains('9'));
        assert!(WireError::TrailingBytes { count: 3 }
            .to_string()
            .contains('3'));
        assert!(WireError::InvalidValue { context: "bool" }
            .to_string()
            .contains("bool"));
    }

    #[test]
    fn is_send_sync_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<WireError>();
    }
}
