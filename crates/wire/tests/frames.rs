//! Frame-layer property tests and a malformed-frame corpus.
//!
//! The service reads frames from untrusted peers; every way a stream can
//! lie — oversized declarations, truncation at any byte, garbage payloads
//! — must surface as a typed error, never a panic or a silent EOF.

use proptest::prelude::*;
use refstate_wire::frame::{
    write_frame, write_message, FrameError, FrameReader, DEFAULT_MAX_FRAME,
};

proptest! {
    #[test]
    fn frames_round_trip(payloads in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 0..200), 0..20)) {
        let mut stream = Vec::new();
        for p in &payloads {
            write_frame(&mut stream, p, DEFAULT_MAX_FRAME).unwrap();
        }
        let mut reader = FrameReader::new(&stream[..], DEFAULT_MAX_FRAME);
        for p in &payloads {
            let got = reader.read_frame().unwrap();
            prop_assert_eq!(got.as_deref(), Some(&p[..]));
        }
        prop_assert!(reader.read_frame().unwrap().is_none());
    }

    #[test]
    fn messages_round_trip(values in proptest::collection::vec(
        proptest::collection::vec(".{0,12}", 0..8), 0..10)) {
        let mut stream = Vec::new();
        for v in &values {
            write_message(&mut stream, v, DEFAULT_MAX_FRAME).unwrap();
        }
        let mut reader = FrameReader::new(&stream[..], DEFAULT_MAX_FRAME);
        for v in &values {
            let got: Vec<String> = reader.read_message().unwrap().unwrap();
            prop_assert_eq!(&got, v);
        }
        prop_assert!(reader.read_message::<Vec<String>>().unwrap().is_none());
    }

    #[test]
    fn every_truncation_point_is_detected(payload in proptest::collection::vec(any::<u8>(), 1..64)) {
        let mut stream = Vec::new();
        write_frame(&mut stream, &payload, DEFAULT_MAX_FRAME).unwrap();
        // Cut 1..len-1 leaves a partial frame; cut 0 is a clean EOF.
        for cut in 1..stream.len() {
            let mut reader = FrameReader::new(&stream[..cut], DEFAULT_MAX_FRAME);
            let r = reader.read_frame();
            prop_assert!(
                matches!(r, Err(FrameError::Truncated { .. })),
                "cut at {cut} was not Truncated: {r:?}"
            );
        }
        let mut reader = FrameReader::new(&stream[..0], DEFAULT_MAX_FRAME);
        prop_assert!(reader.read_frame().unwrap().is_none());
    }

    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut reader = FrameReader::new(&bytes[..], 128);
        // Drain until EOF or the first error; no input may panic.
        while let Ok(Some(_)) = reader.read_frame() {}
    }

    #[test]
    fn declarations_above_cap_are_rejected(excess in 1usize..4096, cap in 0usize..1024) {
        let declared = (cap + excess).min(u32::MAX as usize) as u32;
        let mut stream = declared.to_le_bytes().to_vec();
        // Supply plenty of payload bytes — the cap must trip regardless.
        stream.extend(std::iter::repeat_n(0u8, 64));
        let mut reader = FrameReader::new(&stream[..], cap);
        let r = reader.read_frame();
        prop_assert!(matches!(r, Err(FrameError::Oversized { .. })), "got {r:?}");
    }
}

/// Hand-built malformed streams: each entry is (name, bytes, cap) and must
/// produce the named error class on the first read.
#[test]
fn malformed_frame_corpus() {
    let corpus: Vec<(&str, Vec<u8>, usize)> = vec![
        ("one header byte", vec![5], 64),
        ("two header bytes", vec![5, 0], 64),
        ("three header bytes", vec![5, 0, 0], 64),
        ("header only, payload missing", vec![5, 0, 0, 0], 64),
        ("payload one byte short", vec![3, 0, 0, 0, b'a', b'b'], 64),
        ("max u32 declaration", vec![0xff, 0xff, 0xff, 0xff], 64),
        ("declaration just over cap", vec![65, 0, 0, 0], 64),
    ];
    for (name, bytes, cap) in corpus {
        let mut reader = FrameReader::new(&bytes[..], cap);
        let r = reader.read_frame();
        match name {
            "max u32 declaration" | "declaration just over cap" => {
                assert!(
                    matches!(r, Err(FrameError::Oversized { .. })),
                    "{name}: got {r:?}"
                );
            }
            _ => {
                assert!(
                    matches!(r, Err(FrameError::Truncated { .. })),
                    "{name}: got {r:?}"
                );
            }
        }
    }
}

#[test]
fn zero_length_frames_are_valid() {
    let mut stream = Vec::new();
    for _ in 0..3 {
        write_frame(&mut stream, b"", DEFAULT_MAX_FRAME).unwrap();
    }
    assert_eq!(stream.len(), 12, "three bare headers");
    let mut reader = FrameReader::new(&stream[..], DEFAULT_MAX_FRAME);
    for _ in 0..3 {
        assert_eq!(reader.read_frame().unwrap().unwrap(), Vec::<u8>::new());
    }
    assert!(reader.read_frame().unwrap().is_none());
}

#[test]
fn cap_is_exact() {
    let mut stream = Vec::new();
    write_frame(&mut stream, &[7u8; 16], 16).unwrap();
    let mut reader = FrameReader::new(&stream[..], 16);
    assert_eq!(reader.read_frame().unwrap().unwrap().len(), 16);
    // One byte over the cap must fail on write and on read.
    assert!(matches!(
        write_frame(&mut Vec::new(), &[7u8; 17], 16),
        Err(FrameError::Oversized {
            declared: 17,
            max: 16
        })
    ));
    let hostile = 17u32.to_le_bytes().to_vec();
    let mut reader = FrameReader::new(&hostile[..], 16);
    assert!(matches!(
        reader.read_frame(),
        Err(FrameError::Oversized {
            declared: 17,
            max: 16
        })
    ));
}

#[test]
fn frame_payload_decode_failure_is_typed() {
    let mut stream = Vec::new();
    write_frame(&mut stream, &[0xba, 0xad], DEFAULT_MAX_FRAME).unwrap();
    let mut reader = FrameReader::new(&stream[..], DEFAULT_MAX_FRAME);
    let r = reader.read_message::<Vec<String>>();
    assert!(matches!(r, Err(FrameError::Wire(_))), "got {r:?}");
}
