//! Property tests: every supported type round-trips, encodings are
//! deterministic, and corrupt input never panics.

use std::collections::BTreeMap;

use proptest::prelude::*;
use refstate_wire::{from_wire, to_wire, WireError};

proptest! {
    #[test]
    fn u64_round_trip(v in any::<u64>()) {
        prop_assert_eq!(from_wire::<u64>(&to_wire(&v)).unwrap(), v);
    }

    #[test]
    fn i64_round_trip(v in any::<i64>()) {
        prop_assert_eq!(from_wire::<i64>(&to_wire(&v)).unwrap(), v);
    }

    #[test]
    fn string_round_trip(v in ".*") {
        prop_assert_eq!(from_wire::<String>(&to_wire(&v)).unwrap(), v);
    }

    #[test]
    fn vec_round_trip(v in proptest::collection::vec(any::<u64>(), 0..50)) {
        prop_assert_eq!(from_wire::<Vec<u64>>(&to_wire(&v)).unwrap(), v);
    }

    #[test]
    fn nested_round_trip(v in proptest::collection::vec(proptest::collection::vec(any::<u32>(), 0..8), 0..8)) {
        prop_assert_eq!(from_wire::<Vec<Vec<u32>>>(&to_wire(&v)).unwrap(), v);
    }

    #[test]
    fn map_round_trip(v in proptest::collection::btree_map(".{0,8}", any::<i64>(), 0..20)) {
        prop_assert_eq!(from_wire::<BTreeMap<String, i64>>(&to_wire(&v)).unwrap(), v);
    }

    #[test]
    fn option_round_trip(v in proptest::option::of(any::<u64>())) {
        prop_assert_eq!(from_wire::<Option<u64>>(&to_wire(&v)).unwrap(), v);
    }

    #[test]
    fn tuple_round_trip(a in any::<u32>(), b in ".{0,8}", c in any::<bool>()) {
        let v = (a, b, c);
        prop_assert_eq!(from_wire::<(u32, String, bool)>(&to_wire(&v)).unwrap(), v);
    }

    #[test]
    fn encoding_is_deterministic(v in proptest::collection::btree_map(".{0,6}", any::<u64>(), 0..12)) {
        // Rebuild the map in a different insertion order.
        let mut rebuilt = BTreeMap::new();
        for (k, val) in v.iter().rev() {
            rebuilt.insert(k.clone(), *val);
        }
        prop_assert_eq!(to_wire(&v), to_wire(&rebuilt));
    }

    #[test]
    fn corrupt_input_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Decoding arbitrary garbage must return Ok or Err, never panic.
        let _ = from_wire::<Vec<String>>(&bytes);
        let _ = from_wire::<BTreeMap<String, u64>>(&bytes);
        let _ = from_wire::<(u64, String, bool)>(&bytes);
        let _ = from_wire::<Option<Vec<u64>>>(&bytes);
    }

    #[test]
    fn truncation_always_detected(v in proptest::collection::vec(".{1,6}", 1..10)) {
        let bytes = to_wire(&v);
        for cut in 0..bytes.len() {
            let r = from_wire::<Vec<String>>(&bytes[..cut]);
            prop_assert!(r.is_err(), "prefix of length {cut} decoded successfully");
        }
    }

    #[test]
    fn extension_always_detected(v in proptest::collection::vec(any::<u64>(), 0..10), extra in 1usize..8) {
        let mut bytes = to_wire(&v);
        bytes.extend(std::iter::repeat_n(0u8, extra));
        let r = from_wire::<Vec<u64>>(&bytes);
        let is_trailing = matches!(r, Err(WireError::TrailingBytes { .. }));
        prop_assert!(is_trailing);
    }
}
