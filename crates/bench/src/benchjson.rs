//! A minimal JSON reader and the schemas of the committed `BENCH_*.json`
//! perf-trajectory files.
//!
//! The workspace has no serde (offline build, vendored shims only), but
//! CI must be able to prove that the benchmark artifacts at the repo root
//! still parse and still carry the fields the README's trajectory tables
//! and future PRs diff against — a hand-edited or half-written file
//! should fail the build, not rot silently. This module implements the
//! few hundred lines that buys: a strict recursive-descent JSON parser
//! ([`parse`]) and one schema predicate per artifact
//! ([`check_bigint_schema`], [`check_fleet_schema`]), driven by the
//! `check_bench_json` binary in CI.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`, which covers the bench fields).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is not preserved (keys are sorted).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on objects; `None` for other variants or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(map) => Some(map),
            _ => None,
        }
    }
}

/// A parse or schema failure, with enough context to locate it.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError(String);

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for JsonError {}

/// Parses one complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing characters after JSON document"));
    }
    Ok(value)
}

fn err(pos: usize, what: &str) -> JsonError {
    JsonError(format!("at byte {pos}: {what}"))
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(&b) = bytes.get(*pos) {
        if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn expect(bytes: &[u8], pos: &mut usize, ch: u8) -> Result<(), JsonError> {
    if bytes.get(*pos) == Some(&ch) {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, &format!("expected '{}'", ch as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(err(*pos, &format!("expected '{word}'")))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while bytes
        .get(*pos)
        .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii digits");
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| err(start, &format!("invalid number {text:?}")))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let start = *pos;
    // Accumulate raw bytes and decode as UTF-8 once at the closing quote,
    // so multi-byte characters survive intact; escapes append their
    // characters' UTF-8 encodings.
    let mut out: Vec<u8> = Vec::new();
    let push_char = |out: &mut Vec<u8>, c: char| {
        let mut buf = [0u8; 4];
        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
    };
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return String::from_utf8(out).map_err(|_| err(start, "string is not valid UTF-8"));
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push(b'"'),
                    Some(b'\\') => out.push(b'\\'),
                    Some(b'/') => out.push(b'/'),
                    Some(b'n') => out.push(b'\n'),
                    Some(b't') => out.push(b'\t'),
                    Some(b'r') => out.push(b'\r'),
                    Some(b'b') => out.push(0x08),
                    Some(b'f') => out.push(0x0c),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| err(*pos, "non-ascii \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "invalid \\u escape"))?;
                        // Surrogates are not paired; the bench files never
                        // contain them.
                        push_char(&mut out, char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(&b) => {
                out.push(b);
                *pos += 1;
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(err(*pos, "expected ',' or ']' in array")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(err(*pos, "expected ',' or '}' in object")),
        }
    }
}

fn require_num(value: &Json, path: &str, key: &str) -> Result<f64, JsonError> {
    value
        .get(key)
        .and_then(Json::as_num)
        .ok_or_else(|| JsonError(format!("{path}.{key}: missing or not a number")))
}

fn require_positive(value: &Json, path: &str, key: &str) -> Result<f64, JsonError> {
    let n = require_num(value, path, key)?;
    if n > 0.0 {
        Ok(n)
    } else {
        Err(JsonError(format!(
            "{path}.{key}: must be positive, got {n}"
        )))
    }
}

/// Validates the `BENCH_bigint.json` schema: `bench == "bigint"`, a
/// non-empty `cases` array whose entries carry the three per-path timings
/// (positive ns/op) plus `group` and `op` labels.
pub fn check_bigint_schema(doc: &Json) -> Result<(), JsonError> {
    if doc.get("bench").and_then(Json::as_str) != Some("bigint") {
        return Err(JsonError("bench: expected \"bigint\"".into()));
    }
    let cases = doc
        .get("cases")
        .and_then(Json::as_arr)
        .ok_or_else(|| JsonError("cases: missing or not an array".into()))?;
    if cases.is_empty() {
        return Err(JsonError("cases: must not be empty".into()));
    }
    for (i, case) in cases.iter().enumerate() {
        let path = format!("cases[{i}]");
        for key in ["group", "op"] {
            if case.get(key).and_then(Json::as_str).is_none() {
                return Err(JsonError(format!("{path}.{key}: missing or not a string")));
            }
        }
        for key in ["schoolbook_ns", "montgomery_ns", "fixed_base_ns"] {
            require_positive(case, &path, key)?;
        }
    }
    Ok(())
}

fn require_non_negative(value: &Json, path: &str, key: &str) -> Result<f64, JsonError> {
    let n = require_num(value, path, key)?;
    if n >= 0.0 {
        Ok(n)
    } else {
        Err(JsonError(format!(
            "{path}.{key}: must be non-negative, got {n}"
        )))
    }
}

/// The per-mechanism verification stages a `stage_breakdown` row carries.
const STAGE_KEYS: [&str; 3] = ["cache_hit", "replay", "sig_verify"];

/// The mechanisms whose stage breakdown the trajectory file exists to
/// track: the re-execution family (cache hit vs replay split) plus the
/// signature-heavy encapsulation chain.
const STAGE_MECHANISMS: [&str; 3] = ["protocol", "traces", "encapsulated"];

fn check_stage_breakdown(block: &Json, block_name: &str, telemetry: &str) -> Result<(), JsonError> {
    let stages = block
        .get("stage_breakdown")
        .and_then(Json::as_obj)
        .ok_or_else(|| {
            JsonError(format!(
                "{block_name}.stage_breakdown: missing or not an object"
            ))
        })?;
    for (mechanism, row) in stages {
        let row_path = format!("{block_name}.stage_breakdown.{mechanism}");
        for stage in STAGE_KEYS {
            let stats = row
                .get(stage)
                .ok_or_else(|| JsonError(format!("{row_path}.{stage}: missing stage")))?;
            let path = format!("{row_path}.{stage}");
            require_non_negative(stats, &path, "count")?;
            for key in ["total_us", "p50_us", "p99_us"] {
                require_non_negative(stats, &path, key)?;
            }
        }
    }
    if telemetry != "off" {
        for mechanism in STAGE_MECHANISMS {
            if !stages.contains_key(mechanism) {
                return Err(JsonError(format!(
                    "{block_name}.stage_breakdown: missing the {mechanism} row \
                     (required when the block ran with telemetry on)"
                )));
            }
        }
    }
    Ok(())
}

/// Validates the `BENCH_fleet.json` schema: `bench == "fleet"`, positive
/// `scenarios`/`seed`, and for each of the `mixed`, `replicated`,
/// `chained`, `encapsulated`, `cooperating`, and `adaptive` blocks a
/// positive `journeys_per_sec`,
/// the verification-pipeline fields (`check_workers`, a `replay` block
/// with hit/miss/replay/eviction/occupancy counts and a `hit_rate` in
/// `[0, 1]`), a `telemetry` level, a `stage_breakdown` block (whose
/// `protocol`/`traces`/`encapsulated` rows are mandatory when the block
/// ran with telemetry on), plus a non-empty `latency_percentiles` map
/// whose entries carry `p50_us`/`p90_us`/`p99_us`/`max_us`. The
/// chained-family blocks must additionally carry latency rows for the
/// `chained` and `encapsulated` mechanisms — the rows this artifact
/// exists to track. The `adaptive` block must additionally carry an
/// `adaptation` object (campaign grades: `journeys_per_campaign`,
/// `campaigns`, and a non-empty per-mechanism list whose cells hold the
/// campaign counters and a `detection_under_adaptation` rate in `[0, 1]`
/// or `null`). Finally the `telemetry_overhead` block must show
/// `--telemetry full` costing at most 5% journeys/s versus `off`.
pub fn check_fleet_schema(doc: &Json) -> Result<(), JsonError> {
    if doc.get("bench").and_then(Json::as_str) != Some("fleet") {
        return Err(JsonError("bench: expected \"fleet\"".into()));
    }
    require_positive(doc, "$", "scenarios")?;
    require_num(doc, "$", "seed")?;
    let overhead = doc
        .get("telemetry_overhead")
        .ok_or_else(|| JsonError("telemetry_overhead: missing block".into()))?;
    require_positive(overhead, "telemetry_overhead", "off_journeys_per_sec")?;
    require_positive(overhead, "telemetry_overhead", "full_journeys_per_sec")?;
    let overhead_pct = require_num(overhead, "telemetry_overhead", "overhead_pct")?;
    if overhead_pct > 5.0 {
        return Err(JsonError(format!(
            "telemetry_overhead.overhead_pct: full telemetry must cost at most \
             5% journeys/s, got {overhead_pct}"
        )));
    }
    for block_name in [
        "mixed",
        "replicated",
        "chained",
        "encapsulated",
        "cooperating",
        "adaptive",
    ] {
        let block = doc
            .get(block_name)
            .ok_or_else(|| JsonError(format!("{block_name}: missing block")))?;
        require_positive(block, block_name, "workers")?;
        require_positive(block, block_name, "wall_seconds")?;
        require_positive(block, block_name, "scenarios_per_sec")?;
        require_positive(block, block_name, "journeys_per_sec")?;
        // `0` is a legal check-worker setting (one per core).
        let check_workers = require_num(block, block_name, "check_workers")?;
        if check_workers < 0.0 {
            return Err(JsonError(format!(
                "{block_name}.check_workers: must be non-negative, got {check_workers}"
            )));
        }
        let telemetry = block
            .get("telemetry")
            .and_then(Json::as_str)
            .ok_or_else(|| JsonError(format!("{block_name}.telemetry: missing or not a string")))?;
        if !matches!(telemetry, "off" | "counters" | "full") {
            return Err(JsonError(format!(
                "{block_name}.telemetry: expected off|counters|full, got {telemetry:?}"
            )));
        }
        check_stage_breakdown(block, block_name, telemetry)?;
        let replay = block
            .get("replay")
            .ok_or_else(|| JsonError(format!("{block_name}.replay: missing block")))?;
        let replay_path = format!("{block_name}.replay");
        for key in [
            "hits",
            "misses",
            "replays",
            "evictions",
            "occupancy",
            "capacity",
        ] {
            require_non_negative(replay, &replay_path, key)?;
        }
        let hit_rate = require_num(replay, &replay_path, "hit_rate")?;
        if !(0.0..=1.0).contains(&hit_rate) {
            return Err(JsonError(format!(
                "{replay_path}.hit_rate: must be within [0, 1], got {hit_rate}"
            )));
        }
        let latencies = block
            .get("latency_percentiles")
            .and_then(Json::as_obj)
            .ok_or_else(|| {
                JsonError(format!(
                    "{block_name}.latency_percentiles: missing or not an object"
                ))
            })?;
        if latencies.is_empty() {
            return Err(JsonError(format!(
                "{block_name}.latency_percentiles: must not be empty"
            )));
        }
        for (mechanism, stats) in latencies {
            let path = format!("{block_name}.latency_percentiles.{mechanism}");
            for key in ["p50_us", "p90_us", "p99_us", "max_us"] {
                require_positive(stats, &path, key)?;
            }
        }
        if matches!(block_name, "chained" | "encapsulated") {
            for mechanism in ["chained", "encapsulated"] {
                if !latencies.contains_key(mechanism) {
                    return Err(JsonError(format!(
                        "{block_name}.latency_percentiles: missing the {mechanism} row"
                    )));
                }
            }
        }
        if block_name == "adaptive" {
            check_adaptation(block)?;
        }
    }
    Ok(())
}

/// Validates the `adaptive` block's campaign grades — the
/// detection-under-adaptation trajectory this PR's battery exists to
/// track.
fn check_adaptation(block: &Json) -> Result<(), JsonError> {
    let adaptation = block
        .get("adaptation")
        .ok_or_else(|| JsonError("adaptive.adaptation: missing block".into()))?;
    require_positive(adaptation, "adaptive.adaptation", "journeys_per_campaign")?;
    require_positive(adaptation, "adaptive.adaptation", "campaigns")?;
    let mechanisms = adaptation
        .get("mechanisms")
        .and_then(Json::as_arr)
        .ok_or_else(|| {
            JsonError("adaptive.adaptation.mechanisms: missing or not an array".into())
        })?;
    if mechanisms.is_empty() {
        return Err(JsonError(
            "adaptive.adaptation.mechanisms: must not be empty".into(),
        ));
    }
    for entry in mechanisms {
        let name = entry
            .get("mechanism")
            .and_then(Json::as_str)
            .ok_or_else(|| {
                JsonError("adaptive.adaptation.mechanisms[]: missing mechanism name".into())
            })?;
        let total = entry
            .get("total")
            .ok_or_else(|| JsonError(format!("adaptive.adaptation.{name}: missing total cell")))?;
        let path = format!("adaptive.adaptation.{name}.total");
        for key in [
            "campaigns",
            "journeys",
            "attacked",
            "detected",
            "early_detections",
            "false_accusations",
            "latency_sum",
        ] {
            require_non_negative(total, &path, key)?;
        }
        // The rates are `null` for undefined measurements (nothing
        // attacked / nothing detected), otherwise bounded.
        if let Some(rate) = total
            .get("detection_under_adaptation")
            .and_then(Json::as_num)
        {
            if !(0.0..=1.0).contains(&rate) {
                return Err(JsonError(format!(
                    "{path}.detection_under_adaptation: must be within [0, 1], got {rate}"
                )));
            }
        }
        if let Some(rate) = total.get("false_accusation_rate").and_then(Json::as_num) {
            if !(0.0..=1.0).contains(&rate) {
                return Err(JsonError(format!(
                    "{path}.false_accusation_rate: must be within [0, 1], got {rate}"
                )));
            }
        }
    }
    Ok(())
}

/// Validates a Chrome `trace_event` JSON document as emitted by the
/// fleet CLI's `--trace-out` (the array form `chrome://tracing` and
/// Perfetto load): every element must be an event object with a `name`,
/// numeric `pid`/`tid`/`ts`, and either a complete span (`"ph":"X"` with
/// a non-negative `dur`) or a thread-scoped instant (`"ph":"i"` with
/// `"s":"t"`); `args` must be an object carrying the telemetry `scope`.
pub fn check_chrome_trace(doc: &Json) -> Result<(), JsonError> {
    let events = doc
        .as_arr()
        .ok_or_else(|| JsonError("chrome trace: document must be an array".into()))?;
    for (i, event) in events.iter().enumerate() {
        let path = format!("trace[{i}]");
        if event.get("name").and_then(Json::as_str).is_none() {
            return Err(JsonError(format!("{path}.name: missing or not a string")));
        }
        if event.get("cat").and_then(Json::as_str).is_none() {
            return Err(JsonError(format!("{path}.cat: missing or not a string")));
        }
        for key in ["pid", "tid", "ts"] {
            require_non_negative(event, &path, key)?;
        }
        match event.get("ph").and_then(Json::as_str) {
            Some("X") => {
                require_non_negative(event, &path, "dur")?;
            }
            Some("i") => {
                if event.get("s").and_then(Json::as_str) != Some("t") {
                    return Err(JsonError(format!(
                        "{path}.s: instant events must be thread-scoped (\"t\")"
                    )));
                }
            }
            other => {
                return Err(JsonError(format!(
                    "{path}.ph: expected \"X\" or \"i\", got {other:?}"
                )));
            }
        }
        let args = event
            .get("args")
            .and_then(Json::as_obj)
            .ok_or_else(|| JsonError(format!("{path}.args: missing or not an object")))?;
        if !args.contains_key("scope") {
            return Err(JsonError(format!("{path}.args.scope: missing")));
        }
    }
    Ok(())
}

/// Validates a metrics JSONL stream as emitted by the fleet CLI's
/// `--metrics-out`: every line is one self-contained JSON object, either
/// a counter (`value`) or a histogram (`count`/`sum`/`min`/`max`,
/// `p50`/`p90`/`p99`, and a sparse `buckets` array of
/// `[bucket_lower_bound, count]` pairs whose counts sum to `count`).
pub fn check_metrics_jsonl(text: &str) -> Result<(), JsonError> {
    for (i, line) in text.lines().enumerate() {
        let path = format!("metrics line {}", i + 1);
        let doc = parse(line).map_err(|e| JsonError(format!("{path}: parse error {e}")))?;
        if doc.get("scope").and_then(Json::as_str).is_none() {
            return Err(JsonError(format!("{path}: scope missing or not a string")));
        }
        if doc.get("name").and_then(Json::as_str).is_none() {
            return Err(JsonError(format!("{path}: name missing or not a string")));
        }
        require_non_negative(&doc, &path, "index")?;
        match doc.get("type").and_then(Json::as_str) {
            Some("counter") => {
                require_non_negative(&doc, &path, "value")?;
            }
            Some("histogram") => {
                let count = require_non_negative(&doc, &path, "count")?;
                for key in ["sum", "min", "max", "p50", "p90", "p99"] {
                    require_non_negative(&doc, &path, key)?;
                }
                let buckets = doc
                    .get("buckets")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| JsonError(format!("{path}: buckets missing or not an array")))?;
                let mut total = 0.0;
                for (j, bucket) in buckets.iter().enumerate() {
                    let pair = bucket.as_arr().filter(|p| p.len() == 2).ok_or_else(|| {
                        JsonError(format!(
                            "{path}: buckets[{j}] must be a [lower, count] pair"
                        ))
                    })?;
                    for (k, n) in pair.iter().enumerate() {
                        if n.as_num().is_none_or(|n| n < 0.0) {
                            return Err(JsonError(format!(
                                "{path}: buckets[{j}][{k}] must be a non-negative number"
                            )));
                        }
                    }
                    total += pair[1].as_num().expect("checked above");
                }
                if total != count {
                    return Err(JsonError(format!(
                        "{path}: bucket counts sum to {total}, histogram count is {count}"
                    )));
                }
            }
            other => {
                return Err(JsonError(format!(
                    "{path}: type expected \"counter\" or \"histogram\", got {other:?}"
                )));
            }
        }
    }
    Ok(())
}

/// Validates the `refstate-soak-slo-v1` artifact as emitted by the serve
/// CLI's `--slo-out` (and printed after every soak run): the soak shape
/// (`seed`, positive `owners`/`journeys`/`tick_every`, `preset` and
/// `mechanism` labels, service knobs), the connection fan-out
/// (`connections` ≥ 1, an `aggregate` block with positive `elapsed_us`
/// and `parallelism` and a non-negative `journeys_per_sec`, one
/// `per_connection` row per connection whose `verified` counts sum to
/// the aggregate), a `counts` block whose admission arithmetic closes
/// (`submitted == accepted + rejected`,
/// `accepted == verified + dropped`), a monotone `latency_us` ladder
/// (p50 ≤ p95 ≤ p99 ≤ max) aggregate and per connection, a `cache`
/// block with `hit_rate` in `[0, 1]`, one `owners_detail` row per
/// owner, and a 16-hex-digit `stream_digest` pinning the verdict
/// stream. Optional blocks are validated when present: `tick_driver`
/// (positive `interval_us`/`batch_min`/`max_age_us`), `warm_start`
/// (a resumed run's restart handshake: `generation` ≥ 2,
/// non-negative `resume_offset`, one durable-stream checkpoint row per
/// owner with a 16-hex-digit digest), and
/// `single_connection_baseline` (positive baseline `journeys_per_sec`,
/// plus a positive `throughput_ratio_vs_single` consistent with the
/// aggregate throughput). A non-zero `dropped` is a schema violation,
/// not a warning: the drain invariant (no accepted journey goes
/// unverified) is the artifact's reason to exist.
pub fn check_slo_schema(doc: &Json) -> Result<(), JsonError> {
    if doc.get("schema").and_then(Json::as_str) != Some("refstate-soak-slo-v1") {
        return Err(JsonError(
            "schema: expected \"refstate-soak-slo-v1\"".into(),
        ));
    }
    require_num(doc, "$", "seed")?;
    let owner_count = require_positive(doc, "$", "owners")?;
    require_positive(doc, "$", "journeys")?;
    for key in ["preset", "mechanism"] {
        if doc.get(key).and_then(Json::as_str).is_none() {
            return Err(JsonError(format!("{key}: missing or not a string")));
        }
    }
    require_positive(doc, "$", "tick_every")?;
    // `0` is a legal check-worker setting (one per core).
    require_non_negative(doc, "$", "check_workers")?;
    require_positive(doc, "$", "queue_capacity")?;
    let connection_count = require_positive(doc, "$", "connections")?;

    let aggregate = doc
        .get("aggregate")
        .ok_or_else(|| JsonError("aggregate: missing block".into()))?;
    require_positive(aggregate, "aggregate", "elapsed_us")?;
    require_non_negative(aggregate, "aggregate", "journeys_per_sec")?;
    require_positive(aggregate, "aggregate", "parallelism")?;

    if let Some(driver) = doc.get("tick_driver") {
        require_positive(driver, "tick_driver", "interval_us")?;
        require_positive(driver, "tick_driver", "batch_min")?;
        require_positive(driver, "tick_driver", "max_age_us")?;
    }

    let counts = doc
        .get("counts")
        .ok_or_else(|| JsonError("counts: missing block".into()))?;
    let submitted = require_non_negative(counts, "counts", "submitted")?;
    let accepted = require_non_negative(counts, "counts", "accepted")?;
    let rejected = require_non_negative(counts, "counts", "rejected")?;
    let verified = require_non_negative(counts, "counts", "verified")?;
    require_non_negative(counts, "counts", "detected")?;
    let dropped = require_non_negative(counts, "counts", "dropped")?;
    if submitted != accepted + rejected {
        return Err(JsonError(format!(
            "counts: submitted ({submitted}) must equal accepted ({accepted}) \
             + rejected ({rejected})"
        )));
    }
    if accepted != verified + dropped {
        return Err(JsonError(format!(
            "counts: accepted ({accepted}) must equal verified ({verified}) \
             + dropped ({dropped})"
        )));
    }
    if dropped != 0.0 {
        return Err(JsonError(format!(
            "counts.dropped: {dropped} accepted journeys never produced a \
             verdict — the drain invariant requires zero"
        )));
    }

    let latency = doc
        .get("latency_us")
        .ok_or_else(|| JsonError("latency_us: missing block".into()))?;
    let mut previous = 0.0;
    for key in ["p50", "p95", "p99", "max"] {
        let value = require_non_negative(latency, "latency_us", key)?;
        if value < previous {
            return Err(JsonError(format!(
                "latency_us.{key}: {value} breaks the percentile ladder \
                 (previous rung was {previous})"
            )));
        }
        previous = value;
    }

    let per_connection = doc
        .get("per_connection")
        .and_then(Json::as_arr)
        .ok_or_else(|| JsonError("per_connection: missing or not an array".into()))?;
    if per_connection.len() as f64 != connection_count {
        return Err(JsonError(format!(
            "per_connection: expected one row per connection ({connection_count}), got {}",
            per_connection.len()
        )));
    }
    let mut connection_verified = 0.0;
    for (i, conn) in per_connection.iter().enumerate() {
        let path = format!("per_connection[{i}]");
        require_non_negative(conn, &path, "connection")?;
        for key in ["owners", "submitted", "accepted", "rejected"] {
            require_non_negative(conn, &path, key)?;
        }
        connection_verified += require_non_negative(conn, &path, "verified")?;
        let ladder = conn
            .get("latency_us")
            .ok_or_else(|| JsonError(format!("{path}.latency_us: missing block")))?;
        let mut previous = 0.0;
        for key in ["p50", "p95", "p99", "max"] {
            let value = require_non_negative(ladder, &format!("{path}.latency_us"), key)?;
            if value < previous {
                return Err(JsonError(format!(
                    "{path}.latency_us.{key}: {value} breaks the percentile \
                     ladder (previous rung was {previous})"
                )));
            }
            previous = value;
        }
    }
    if connection_verified != verified {
        return Err(JsonError(format!(
            "per_connection: verified counts sum to {connection_verified}, \
             counts.verified is {verified}"
        )));
    }

    let cache = doc
        .get("cache")
        .ok_or_else(|| JsonError("cache: missing block".into()))?;
    require_non_negative(cache, "cache", "hits")?;
    require_non_negative(cache, "cache", "misses")?;
    let hit_rate = require_num(cache, "cache", "hit_rate")?;
    if !(0.0..=1.0).contains(&hit_rate) {
        return Err(JsonError(format!(
            "cache.hit_rate: must be within [0, 1], got {hit_rate}"
        )));
    }

    let owners = doc
        .get("owners_detail")
        .and_then(Json::as_arr)
        .ok_or_else(|| JsonError("owners_detail: missing or not an array".into()))?;
    if owners.len() as f64 != owner_count {
        return Err(JsonError(format!(
            "owners_detail: expected one row per owner ({owner_count}), got {}",
            owners.len()
        )));
    }
    for (i, owner) in owners.iter().enumerate() {
        let path = format!("owners_detail[{i}]");
        if owner.get("owner").and_then(Json::as_str).is_none() {
            return Err(JsonError(format!("{path}.owner: missing or not a string")));
        }
        for key in [
            "accepted",
            "rejected",
            "verified",
            "detected",
            "final_checks",
            "flush_verifications",
            "flush_failures",
        ] {
            require_non_negative(owner, &path, key)?;
        }
    }

    if let Some(warm) = doc.get("warm_start") {
        let generation = require_positive(warm, "warm_start", "generation")?;
        if generation < 2.0 {
            return Err(JsonError(format!(
                "warm_start.generation: a resumed run reopens its state dir, \
                 so the generation must be at least 2, got {generation}"
            )));
        }
        require_non_negative(warm, "warm_start", "resume_offset")?;
        let checkpoints = warm
            .get("checkpoints")
            .and_then(Json::as_arr)
            .ok_or_else(|| JsonError("warm_start.checkpoints: missing or not an array".into()))?;
        if checkpoints.len() as f64 != owner_count {
            return Err(JsonError(format!(
                "warm_start.checkpoints: expected one row per owner ({owner_count}), got {}",
                checkpoints.len()
            )));
        }
        for (i, checkpoint) in checkpoints.iter().enumerate() {
            let path = format!("warm_start.checkpoints[{i}]");
            if checkpoint.get("owner").and_then(Json::as_str).is_none() {
                return Err(JsonError(format!("{path}.owner: missing or not a string")));
            }
            require_non_negative(checkpoint, &path, "offset")?;
            let digest = checkpoint
                .get("digest")
                .and_then(Json::as_str)
                .ok_or_else(|| JsonError(format!("{path}.digest: missing or not a string")))?;
            if digest.len() != 16 || !digest.bytes().all(|b| b.is_ascii_hexdigit()) {
                return Err(JsonError(format!(
                    "{path}.digest: expected 16 hex digits, got {digest:?}"
                )));
            }
        }
    }

    if let Some(baseline) = doc.get("single_connection_baseline") {
        let baseline_jps =
            require_positive(baseline, "single_connection_baseline", "journeys_per_sec")?;
        let ratio = require_positive(doc, "$", "throughput_ratio_vs_single")?;
        let aggregate_jps = require_num(aggregate, "aggregate", "journeys_per_sec")?;
        // The ratio is the artifact's headline claim; hold it to the
        // two numbers it divides (loosely — both are rounded to 3dp).
        let expected = aggregate_jps / baseline_jps;
        if (ratio - expected).abs() > 0.01 {
            return Err(JsonError(format!(
                "throughput_ratio_vs_single: {ratio} inconsistent with \
                 aggregate/baseline ({expected:.3})"
            )));
        }
    } else if doc.get("throughput_ratio_vs_single").is_some() {
        return Err(JsonError(
            "throughput_ratio_vs_single: present without its \
             single_connection_baseline block"
                .into(),
        ));
    }

    let digest = doc
        .get("stream_digest")
        .and_then(Json::as_str)
        .ok_or_else(|| JsonError("stream_digest: missing or not a string".into()))?;
    if digest.len() != 16 || !digest.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(JsonError(format!(
            "stream_digest: expected 16 hex digits, got {digest:?}"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(parse("-3.5e2").unwrap(), Json::Num(-350.0));
        assert_eq!(parse("\"hi\\n\"").unwrap(), Json::Str("hi\n".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let doc = parse(r#"{"a": [1, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(doc.get("c").and_then(Json::as_str), Some("x"));
        let arr = doc.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[0].as_num(), Some(1.0));
        assert_eq!(arr[1].get("b"), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "{\"a\":}"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn unicode_escape_round_trips() {
        assert_eq!(parse(r#""\u0041""#).unwrap(), Json::Str("A".into()));
        assert_eq!(parse(r#""\u00b5s""#).unwrap(), Json::Str("µs".into()));
    }

    #[test]
    fn multi_byte_utf8_survives() {
        assert_eq!(
            parse("\"µs → fast\"").unwrap(),
            Json::Str("µs → fast".into())
        );
    }

    #[test]
    fn bigint_schema_accepts_valid_and_rejects_broken() {
        let good = r#"{"bench":"bigint","cases":[
            {"group":"512","op":"pow_mod","schoolbook_ns":100.0,
             "montgomery_ns":30.0,"fixed_base_ns":10.0}]}"#;
        assert!(check_bigint_schema(&parse(good).unwrap()).is_ok());

        let wrong_name = r#"{"bench":"fleet","cases":[]}"#;
        assert!(check_bigint_schema(&parse(wrong_name).unwrap()).is_err());
        let empty = r#"{"bench":"bigint","cases":[]}"#;
        assert!(check_bigint_schema(&parse(empty).unwrap()).is_err());
        let negative = r#"{"bench":"bigint","cases":[
            {"group":"512","op":"pow_mod","schoolbook_ns":-1,
             "montgomery_ns":30.0,"fixed_base_ns":10.0}]}"#;
        assert!(check_bigint_schema(&parse(negative).unwrap()).is_err());
    }

    /// One stage_breakdown row with all three stages present.
    fn stage_row(mechanism: &str) -> String {
        let stage = r#"{"count":4,"total_us":10.0,"p50_us":2.0,"p99_us":5.0}"#;
        format!(r#""{mechanism}":{{"cache_hit":{stage},"replay":{stage},"sig_verify":{stage}}}"#)
    }

    fn full_stage_breakdown() -> String {
        format!(
            "{},{},{}",
            stage_row("protocol"),
            stage_row("traces"),
            stage_row("encapsulated")
        )
    }

    /// A valid fleet block with the replay/check-worker/telemetry fields;
    /// the `hit_rate`, latency map, telemetry level, and stage breakdown
    /// are injectable so tests can break each one independently.
    fn fleet_block_full(hit_rate: &str, latencies: &str, telemetry: &str, stages: &str) -> String {
        format!(
            r#"{{"workers":4,"wall_seconds":1.0,"scenarios_per_sec":10.0,
                "journeys_per_sec":50.0,"check_workers":1,
                "telemetry":"{telemetry}",
                "replay":{{"cache_enabled":true,"hits":10,"misses":5,
                    "replays":5,"hit_rate":{hit_rate},"evictions":0,
                    "occupancy":5,"capacity":65536}},
                "stage_breakdown":{{{stages}}},
                "latency_percentiles":{{{latencies}}}}}"#
        )
    }

    fn fleet_block_with(hit_rate: &str, latencies: &str) -> String {
        fleet_block_full(hit_rate, latencies, "full", &full_stage_breakdown())
    }

    const PROTOCOL_ROW: &str =
        r#""protocol":{"p50_us":1.0,"p90_us":2.0,"p99_us":3.0,"max_us":4.0}"#;
    const CHAINED_ROWS: &str = r#""chained":{"p50_us":1.0,"p90_us":2.0,"p99_us":3.0,"max_us":4.0},
        "encapsulated":{"p50_us":1.0,"p90_us":2.0,"p99_us":3.0,"max_us":4.0}"#;

    fn fleet_block(hit_rate: &str) -> String {
        fleet_block_with(hit_rate, PROTOCOL_ROW)
    }

    /// A valid `adaptation` object, as the adaptive block carries it.
    const ADAPTATION: &str = r#"{"journeys_per_campaign":8,"campaigns":15,
        "mechanisms":[{"mechanism":"framework","total":{"campaigns":15,
            "journeys":120,"attacked":15,"detected":15,"early_detections":0,
            "false_accusations":0,"latency_sum":2,
            "detection_under_adaptation":1.000000,
            "mean_detection_latency_journeys":0.133333,
            "false_accusation_rate":0.000000},"per_policy":{}}]}"#;

    /// Splices campaign grades into a fleet block, the way the bench
    /// harness builds the adaptive block.
    fn adaptive_block(base: &str, adaptation: &str) -> String {
        let trimmed = base.trim_end().strip_suffix('}').expect("block object");
        format!("{trimmed},\"adaptation\":{adaptation}}}")
    }

    fn fleet_doc(classic: &str, chained_family: &str) -> String {
        fleet_doc_with_adaptive(
            classic,
            chained_family,
            &adaptive_block(classic, ADAPTATION),
        )
    }

    fn fleet_doc_with_adaptive(classic: &str, chained_family: &str, adaptive: &str) -> String {
        format!(
            r#"{{"bench":"fleet","scenarios":256,"seed":42,
                "telemetry_overhead":{{"off_journeys_per_sec":100.0,
                    "full_journeys_per_sec":98.0,"overhead_pct":2.0}},
                "mixed":{classic},
                "replicated":{classic},"chained":{chained_family},
                "encapsulated":{chained_family},
                "cooperating":{classic},
                "adaptive":{adaptive}}}"#
        )
    }

    #[test]
    fn fleet_schema_accepts_the_committed_shape() {
        let good = fleet_doc(
            &fleet_block("0.667"),
            &fleet_block_with("0.5", CHAINED_ROWS),
        );
        assert!(check_fleet_schema(&parse(&good).unwrap()).is_ok());

        // Every preset block is required — including the chained pair.
        let block = fleet_block("0.667");
        for missing in [
            format!(r#"{{"bench":"fleet","scenarios":256,"seed":42,"mixed":{block}}}"#),
            format!(
                r#"{{"bench":"fleet","scenarios":256,"seed":42,"mixed":{block},"replicated":{block}}}"#
            ),
        ] {
            assert!(check_fleet_schema(&parse(&missing).unwrap()).is_err());
        }
    }

    #[test]
    fn fleet_schema_requires_chained_family_rows() {
        // A chained-preset block that lost its chained/encapsulated
        // latency rows is a schema violation: the rows are the point.
        let doc = fleet_doc(&fleet_block("0.667"), &fleet_block("0.5"));
        let err = check_fleet_schema(&parse(&doc).unwrap()).unwrap_err();
        assert!(err.to_string().contains("missing the chained row"), "{err}");
    }

    #[test]
    fn fleet_schema_requires_the_adaptation_grades() {
        let classic = fleet_block("0.667");
        let chained = fleet_block_with("0.5", CHAINED_ROWS);

        // An adaptive block without campaign grades is a violation: the
        // detection-under-adaptation trajectory is the block's point.
        let doc = fleet_doc_with_adaptive(&classic, &chained, &classic);
        let err = check_fleet_schema(&parse(&doc).unwrap()).unwrap_err();
        assert!(
            err.to_string().contains("adaptation: missing block"),
            "{err}"
        );

        // So is an out-of-range detection-under-adaptation rate...
        let bogus = ADAPTATION.replace(
            r#""detection_under_adaptation":1.000000"#,
            r#""detection_under_adaptation":1.5"#,
        );
        let doc = fleet_doc_with_adaptive(&classic, &chained, &adaptive_block(&classic, &bogus));
        assert!(check_fleet_schema(&parse(&doc).unwrap()).is_err());

        // ...and an empty mechanism list (nothing graded).
        let empty = r#"{"journeys_per_campaign":8,"campaigns":15,"mechanisms":[]}"#;
        let doc = fleet_doc_with_adaptive(&classic, &chained, &adaptive_block(&classic, empty));
        assert!(check_fleet_schema(&parse(&doc).unwrap()).is_err());
    }

    #[test]
    fn fleet_schema_requires_the_pipeline_fields() {
        // A pre-pipeline block (no check_workers/replay) must be rejected:
        // the trajectory file has to carry the cache facts going forward.
        let stale = r#"{"workers":4,"wall_seconds":1.0,"scenarios_per_sec":10.0,
            "journeys_per_sec":50.0,"latency_percentiles":{
                "protocol":{"p50_us":1.0,"p90_us":2.0,"p99_us":3.0,"max_us":4.0}}}"#;
        let doc = fleet_doc(stale, &fleet_block_with("0.5", CHAINED_ROWS));
        assert!(check_fleet_schema(&parse(&doc).unwrap()).is_err());

        // An out-of-range hit rate is a schema violation, not a number.
        let doc = fleet_doc(&fleet_block("1.5"), &fleet_block_with("0.5", CHAINED_ROWS));
        assert!(check_fleet_schema(&parse(&doc).unwrap()).is_err());
    }

    #[test]
    fn fleet_schema_requires_stage_breakdown_rows_when_telemetry_on() {
        // A block that ran with telemetry on but lost its protocol stage
        // row is a violation: the breakdown is the point of the block.
        let partial = format!("{},{}", stage_row("traces"), stage_row("encapsulated"));
        let broken = fleet_block_full("0.5", PROTOCOL_ROW, "full", &partial);
        let doc = fleet_doc(&broken, &fleet_block_with("0.5", CHAINED_ROWS));
        let err = check_fleet_schema(&parse(&doc).unwrap()).unwrap_err();
        assert!(
            err.to_string().contains("missing the protocol row"),
            "{err}"
        );

        // With telemetry off an empty breakdown is fine...
        let off = fleet_block_full("0.5", PROTOCOL_ROW, "off", "");
        let doc = fleet_doc(&off, &fleet_block_with("0.5", CHAINED_ROWS));
        assert!(check_fleet_schema(&parse(&doc).unwrap()).is_ok());

        // ...but an unknown level, or a row missing a stage, is not.
        let bogus = fleet_block_full("0.5", PROTOCOL_ROW, "loud", "");
        let doc = fleet_doc(&bogus, &fleet_block_with("0.5", CHAINED_ROWS));
        assert!(check_fleet_schema(&parse(&doc).unwrap()).is_err());
        let one_stage =
            r#""protocol":{"cache_hit":{"count":1,"total_us":1.0,"p50_us":1.0,"p99_us":1.0}}"#;
        let broken = fleet_block_full("0.5", PROTOCOL_ROW, "off", one_stage);
        let doc = fleet_doc(&broken, &fleet_block_with("0.5", CHAINED_ROWS));
        assert!(check_fleet_schema(&parse(&doc).unwrap()).is_err());
    }

    #[test]
    fn fleet_schema_bounds_telemetry_overhead() {
        let block = fleet_block("0.5");
        let chained = fleet_block_with("0.5", CHAINED_ROWS);
        // Overhead above the 5% budget fails the artifact.
        let doc = format!(
            r#"{{"bench":"fleet","scenarios":256,"seed":42,
                "telemetry_overhead":{{"off_journeys_per_sec":100.0,
                    "full_journeys_per_sec":80.0,"overhead_pct":20.0}},
                "mixed":{block},"replicated":{block},
                "chained":{chained},"encapsulated":{chained}}}"#
        );
        let err = check_fleet_schema(&parse(&doc).unwrap()).unwrap_err();
        assert!(err.to_string().contains("at most"), "{err}");
        // A missing overhead block fails too.
        let doc = format!(
            r#"{{"bench":"fleet","scenarios":256,"seed":42,
                "mixed":{block},"replicated":{block},
                "chained":{chained},"encapsulated":{chained}}}"#
        );
        assert!(check_fleet_schema(&parse(&doc).unwrap()).is_err());
    }

    #[test]
    fn chrome_trace_accepts_spans_and_instants() {
        let good = r#"[
            {"name":"verify.replay","cat":"pipeline","pid":1,"tid":2,
             "ts":1.5,"ph":"X","dur":42.0,"args":{"scope":"protocol"}},
            {"name":"platform.migrated","cat":"platform","pid":1,"tid":1,
             "ts":2.0,"ph":"i","s":"t","args":{"scope":"","from":"h0"}}]"#;
        assert!(check_chrome_trace(&parse(good).unwrap()).is_ok());
        assert!(check_chrome_trace(&parse("[]").unwrap()).is_ok());
    }

    #[test]
    fn chrome_trace_rejects_malformed_events() {
        // Not an array.
        assert!(check_chrome_trace(&parse("{}").unwrap()).is_err());
        for bad in [
            // Span without a duration.
            r#"[{"name":"x","cat":"c","pid":1,"tid":1,"ts":0,"ph":"X","args":{"scope":""}}]"#,
            // Instant without thread scoping.
            r#"[{"name":"x","cat":"c","pid":1,"tid":1,"ts":0,"ph":"i","args":{"scope":""}}]"#,
            // Unknown phase.
            r#"[{"name":"x","cat":"c","pid":1,"tid":1,"ts":0,"ph":"B","args":{"scope":""}}]"#,
            // Args without the telemetry scope.
            r#"[{"name":"x","cat":"c","pid":1,"tid":1,"ts":0,"ph":"X","dur":1.0,"args":{}}]"#,
            // Missing name.
            r#"[{"cat":"c","pid":1,"tid":1,"ts":0,"ph":"X","dur":1.0,"args":{"scope":""}}]"#,
        ] {
            assert!(check_chrome_trace(&parse(bad).unwrap()).is_err(), "{bad}");
        }
    }

    #[test]
    fn metrics_jsonl_accepts_counters_and_histograms() {
        let good = concat!(
            r#"{"type":"counter","scope":"","name":"pipeline.cache_hit","index":0,"value":12}"#,
            "\n",
            r#"{"type":"histogram","scope":"protocol","name":"verify.replay","index":0,"#,
            r#""count":3,"sum":600,"min":100,"max":300,"p50":200,"p90":300,"p99":300,"#,
            r#""buckets":[[96,2],[288,1]]}"#,
            "\n",
        );
        assert!(check_metrics_jsonl(good).is_ok());
        assert!(check_metrics_jsonl("").is_ok());
    }

    #[test]
    fn metrics_jsonl_rejects_malformed_lines() {
        for bad in [
            // Unterminated JSON.
            r#"{"type":"counter","scope":"","name":"x","index":0,"value":1"#,
            // Unknown type.
            r#"{"type":"gauge","scope":"","name":"x","index":0,"value":1}"#,
            // Counter without a value.
            r#"{"type":"counter","scope":"","name":"x","index":0}"#,
            // Histogram whose bucket counts disagree with its count.
            concat!(
                r#"{"type":"histogram","scope":"","name":"x","index":0,"count":5,"#,
                r#""sum":1,"min":1,"max":1,"p50":1,"p90":1,"p99":1,"buckets":[[0,1]]}"#
            ),
            // Malformed bucket pair.
            concat!(
                r#"{"type":"histogram","scope":"","name":"x","index":0,"count":1,"#,
                r#""sum":1,"min":1,"max":1,"p50":1,"p90":1,"p99":1,"buckets":[[0]]}"#
            ),
        ] {
            assert!(check_metrics_jsonl(bad).is_err(), "{bad}");
        }
    }

    /// A valid SLO document matching what `serve --soak` emits; the
    /// counts, dropped total, latency ladder, and digest are injectable
    /// so tests can break each invariant independently.
    fn slo_doc(verified: &str, dropped: &str, p99: &str, digest: &str) -> String {
        format!(
            r#"{{"schema":"refstate-soak-slo-v1","seed":42,"owners":2,
                "journeys":48,"preset":"mixed","mechanism":"protocol",
                "tick_every":12,"check_workers":1,"queue_capacity":64,
                "connections":2,
                "aggregate":{{"elapsed_us":16000,"journeys_per_sec":3000.0,
                    "parallelism":8}},
                "counts":{{"submitted":50,"accepted":48,"rejected":2,
                    "verified":{verified},"detected":20,"dropped":{dropped}}},
                "latency_us":{{"p50":120,"p95":300,"p99":{p99},"max":900}},
                "per_connection":[
                    {{"connection":0,"owners":1,"submitted":25,"accepted":24,
                      "rejected":1,"verified":24,
                      "latency_us":{{"p50":110,"p95":280,"p99":400,"max":850}}}},
                    {{"connection":1,"owners":1,"submitted":25,"accepted":24,
                      "rejected":1,"verified":24,
                      "latency_us":{{"p50":130,"p95":310,"p99":460,"max":900}}}}],
                "cache":{{"hits":40,"misses":8,"hit_rate":0.833333}},
                "owners_detail":[
                    {{"owner":"owner-0","accepted":24,"rejected":1,
                      "verified":24,"detected":10,"final_checks":24,
                      "flush_verifications":24,"flush_failures":0}},
                    {{"owner":"owner-1","accepted":24,"rejected":1,
                      "verified":24,"detected":10,"final_checks":24,
                      "flush_verifications":24,"flush_failures":0}}],
                "stream_digest":"{digest}"}}"#
        )
    }

    #[test]
    fn slo_schema_accepts_the_emitted_shape() {
        let good = slo_doc("48", "0", "450", "a1b2c3d4e5f60718");
        assert!(check_slo_schema(&parse(&good).unwrap()).is_ok());
    }

    #[test]
    fn slo_schema_rejects_each_broken_invariant() {
        // A dropped journey is a drain-invariant violation.
        let dropped = slo_doc("47", "1", "450", "a1b2c3d4e5f60718");
        assert!(check_slo_schema(&parse(&dropped).unwrap()).is_err());
        // Counts that don't close (accepted != verified + dropped).
        let leaky = slo_doc("40", "0", "450", "a1b2c3d4e5f60718");
        assert!(check_slo_schema(&parse(&leaky).unwrap()).is_err());
        // A p99 below p95 breaks the percentile ladder.
        let unsorted = slo_doc("48", "0", "200", "a1b2c3d4e5f60718");
        assert!(check_slo_schema(&parse(&unsorted).unwrap()).is_err());
        // A digest that isn't 16 hex digits.
        let bad_digest = slo_doc("48", "0", "450", "not-a-digest!!!!");
        assert!(check_slo_schema(&parse(&bad_digest).unwrap()).is_err());
        // The wrong schema tag is refused outright.
        let wrong = slo_doc("48", "0", "450", "a1b2c3d4e5f60718")
            .replace("refstate-soak-slo-v1", "refstate-soak-slo-v0");
        assert!(check_slo_schema(&parse(&wrong).unwrap()).is_err());
    }

    #[test]
    fn slo_schema_requires_one_detail_row_per_owner() {
        let good = slo_doc("48", "0", "450", "a1b2c3d4e5f60718");
        // Claim three owners while carrying two detail rows.
        let short = good.replace("\"owners\":2", "\"owners\":3");
        assert!(check_slo_schema(&parse(&short).unwrap()).is_err());
    }

    #[test]
    fn slo_schema_requires_the_connection_fanout_blocks() {
        let good = slo_doc("48", "0", "450", "a1b2c3d4e5f60718");
        // `connections` must be present and positive.
        let missing = good.replace(r#""connections":2,"#, "");
        assert!(check_slo_schema(&parse(&missing).unwrap()).is_err());
        let zero = good.replace("\"connections\":2", "\"connections\":0");
        assert!(check_slo_schema(&parse(&zero).unwrap()).is_err());
        // The aggregate block needs a positive elapsed and parallelism.
        let stopped = good.replace("\"elapsed_us\":16000", "\"elapsed_us\":0");
        assert!(check_slo_schema(&parse(&stopped).unwrap()).is_err());
        let no_cores = good.replace("\"parallelism\":8", "\"parallelism\":0");
        assert!(check_slo_schema(&parse(&no_cores).unwrap()).is_err());
    }

    #[test]
    fn slo_schema_requires_one_row_per_connection() {
        let good = slo_doc("48", "0", "450", "a1b2c3d4e5f60718");
        // Claim three connections while carrying two rows.
        let short = good.replace("\"connections\":2", "\"connections\":3");
        assert!(check_slo_schema(&parse(&short).unwrap()).is_err());
    }

    #[test]
    fn slo_schema_closes_verified_over_connections() {
        let good = slo_doc("48", "0", "450", "a1b2c3d4e5f60718");
        // Rows that no longer sum to counts.verified.
        let leaky = good.replace(
            r#""rejected":1,"verified":24,
                      "latency_us":{"p50":130"#,
            r#""rejected":1,"verified":23,
                      "latency_us":{"p50":130"#,
        );
        assert!(check_slo_schema(&parse(&leaky).unwrap()).is_err());
    }

    #[test]
    fn slo_schema_checks_each_connections_latency_ladder() {
        let good = slo_doc("48", "0", "450", "a1b2c3d4e5f60718");
        // Connection 1's p99 sinks below its p95.
        let unsorted = good.replace("\"p99\":460", "\"p99\":200");
        assert!(check_slo_schema(&parse(&unsorted).unwrap()).is_err());
    }

    #[test]
    fn slo_schema_validates_the_tick_driver_block_when_present() {
        let good = slo_doc("48", "0", "450", "a1b2c3d4e5f60718");
        let with_driver = good.replace(
            r#""connections":2,"#,
            r#""connections":2,
               "tick_driver":{"interval_us":1000,"batch_min":16,"max_age_us":5000},"#,
        );
        assert!(check_slo_schema(&parse(&with_driver).unwrap()).is_ok());
        let stalled = with_driver.replace("\"interval_us\":1000", "\"interval_us\":0");
        assert!(check_slo_schema(&parse(&stalled).unwrap()).is_err());
    }

    #[test]
    fn slo_schema_validates_the_warm_start_block_when_present() {
        let good = slo_doc("48", "0", "450", "a1b2c3d4e5f60718");
        let with_warm = good.replace(
            r#""connections":2,"#,
            r#""connections":2,
               "warm_start":{"generation":2,"resume_offset":24,"checkpoints":[
                   {"owner":"owner-0","offset":12,"digest":"cbf29ce484222325"},
                   {"owner":"owner-1","offset":12,"digest":"cbf29ce484222325"}]},"#,
        );
        assert!(check_slo_schema(&parse(&with_warm).unwrap()).is_ok());
        // Generation 1 means the state dir was never reopened — not a resume.
        let cold = with_warm.replace("\"generation\":2", "\"generation\":1");
        assert!(check_slo_schema(&parse(&cold).unwrap()).is_err());
        // One checkpoint row per owner, like owners_detail.
        let short = with_warm.replace(
            r#"},
                   {"owner":"owner-1","offset":12,"digest":"cbf29ce484222325"}]}"#,
            "}]}",
        );
        assert!(check_slo_schema(&parse(&short).unwrap()).is_err());
        // A checkpoint digest that isn't 16 hex digits.
        let bad_digest = with_warm.replace("cbf29ce484222325\"},", "nope\"},");
        assert!(check_slo_schema(&parse(&bad_digest).unwrap()).is_err());
    }

    #[test]
    fn slo_schema_validates_the_baseline_ratio_when_present() {
        let good = slo_doc("48", "0", "450", "a1b2c3d4e5f60718");
        // aggregate journeys/s is 3000; a 1000/s baseline is a 3.0 ratio.
        let with_baseline = good.replace(
            r#""stream_digest""#,
            r#""single_connection_baseline":{"journeys_per_sec":1000.0},
               "throughput_ratio_vs_single":3.0,
               "stream_digest""#,
        );
        assert!(check_slo_schema(&parse(&with_baseline).unwrap()).is_ok());
        // A ratio that doesn't divide out of its own numbers is refused.
        let cooked = with_baseline.replace(
            "\"throughput_ratio_vs_single\":3.0",
            "\"throughput_ratio_vs_single\":4.0",
        );
        assert!(check_slo_schema(&parse(&cooked).unwrap()).is_err());
        // A ratio with no baseline to divide by is refused too.
        let orphan = good.replace(
            r#""stream_digest""#,
            r#""throughput_ratio_vs_single":3.0,"stream_digest""#,
        );
        assert!(check_slo_schema(&parse(&orphan).unwrap()).is_err());
    }
}
