//! Measuring and rendering the paper's Tables 1 and 2.

use std::time::{Duration, Instant};

use refstate_core::protocol::{run_protected_journey, ProtocolConfig};
use refstate_crypto::DsaParams;
use refstate_platform::{EventLog, HostId, SessionRecord};
use refstate_vm::{ExecConfig, SessionEnd};
use refstate_wire::to_wire;

use crate::generic_agent::{build_generic_agent, build_three_hosts, AgentParams};

/// Execution config for measurements: the full-size paper configuration
/// runs ~80M instructions per session, far beyond the default runaway
/// guard.
fn bench_exec() -> ExecConfig {
    ExecConfig {
        step_limit: u64::MAX,
        ..Default::default()
    }
}

/// The four measured configurations, in the paper's row order.
pub const PAPER_CONFIGS: [AgentParams; 4] = [
    AgentParams {
        cycles: 1,
        inputs: 1,
    },
    AgentParams {
        cycles: 1,
        inputs: 100,
    },
    AgentParams {
        cycles: 10000,
        inputs: 1,
    },
    AgentParams {
        cycles: 10000,
        inputs: 100,
    },
];

/// One measurement in the paper's cost decomposition.
#[derive(Debug, Clone, Copy, Default)]
pub struct Measurement {
    /// Time computing and verifying signatures.
    pub sign_verify: Duration,
    /// Time executing agent code in the VM (sessions plus, for protected
    /// runs, the checking re-executions — the paper's "cycle" column
    /// counts the re-executed cycles too, which is why its factors sit
    /// near 4/3).
    pub cycle: Duration,
    /// Everything else: hashing, state copying, protocol bookkeeping.
    pub remainder: Duration,
    /// Wall-clock total.
    pub overall: Duration,
}

impl Measurement {
    fn finish(mut self, started: Instant) -> Self {
        self.overall = started.elapsed();
        self.remainder = self
            .overall
            .saturating_sub(self.sign_verify)
            .saturating_sub(self.cycle);
        self
    }
}

/// A rendered table row: the measurement plus its parameters.
#[derive(Debug, Clone)]
pub struct TableRow {
    /// The agent configuration.
    pub params: AgentParams,
    /// Plain (Table 1) measurement.
    pub plain: Measurement,
    /// Protected (Table 2) measurement.
    pub protected: Measurement,
}

/// Runs the *plain* configuration: no protocol, but the whole agent is
/// signed before each migration and verified on arrival, exactly like the
/// paper's baseline ("without using the protocol (but being signed and
/// verified as a whole)").
///
/// # Panics
///
/// Panics if the journey fails — the benchmark environment is fully
/// controlled, so a failure is a harness bug.
pub fn measure_plain(params: AgentParams, dsa: &DsaParams, seed: u64) -> Measurement {
    let mut hosts = build_three_hosts(params, dsa, seed);
    let agent = build_generic_agent(params);
    let exec = bench_exec();
    let log = EventLog::new();

    let mut m = Measurement::default();
    let started = Instant::now();

    // The owner signs the departing agent.
    let mut directory = refstate_crypto::KeyDirectory::new();
    for h in hosts.iter() {
        directory.register(h.id().as_str(), h.public_key().clone());
    }

    let mut image = agent;
    let mut current = HostId::new("h1");
    let mut sender: Option<HostId> = None;
    loop {
        // Arrival verification of the whole agent (skipped at creation).
        if let Some(from) = sender.take() {
            let t = Instant::now();
            let bytes = to_wire(&image);
            // The signature travels alongside; here we verify the sender's
            // signature over the serialized agent.
            let host = hosts
                .iter_mut()
                .find(|h| h.id() == &from)
                .expect("sender exists");
            let envelope = host.sign(bytes);
            assert!(
                envelope.verify(&directory).is_ok(),
                "whole-agent signature verifies"
            );
            m.sign_verify += t.elapsed();
        }

        let host_index = hosts
            .iter()
            .position(|h| h.id() == &current)
            .expect("host exists");
        let t = Instant::now();
        let record: SessionRecord = hosts[host_index]
            .execute_session(&image, &exec, &log)
            .expect("benchmark session succeeds");
        m.cycle += t.elapsed();
        image.state = record.outcome.state.clone();
        match &record.outcome.end {
            SessionEnd::Halt => break,
            SessionEnd::Migrate(next) => {
                sender = Some(current.clone());
                current = HostId::new(next.clone());
            }
        }
    }
    m.finish(started)
}

/// Runs the *protected* configuration under the §5.1 protocol.
///
/// # Panics
///
/// Panics if the journey fails or reports fraud — the benchmark hosts are
/// honest, so either indicates a harness bug.
pub fn measure_protected(params: AgentParams, dsa: &DsaParams, seed: u64) -> Measurement {
    let mut hosts = build_three_hosts(params, dsa, seed);
    let agent = build_generic_agent(params);
    let config = ProtocolConfig {
        exec: bench_exec(),
        ..Default::default()
    };
    let log = EventLog::new();

    let started = Instant::now();
    let outcome = run_protected_journey(&mut hosts, "h1", agent, &config, &log)
        .expect("benchmark journey succeeds");
    assert!(outcome.fraud.is_none(), "benchmark hosts are honest");
    let stats = outcome.stats;
    Measurement {
        sign_verify: stats.sign_verify,
        cycle: stats.execution + stats.checking,
        remainder: Duration::ZERO,
        overall: Duration::ZERO,
    }
    .finish(started)
}

/// Measures all four paper configurations.
pub fn measure_all(dsa: &DsaParams, seed: u64) -> Vec<TableRow> {
    PAPER_CONFIGS
        .iter()
        .map(|&params| TableRow {
            params,
            plain: measure_plain(params, dsa, seed),
            protected: measure_protected(params, dsa, seed + 1),
        })
        .collect()
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn factor(protected: Duration, plain: Duration) -> f64 {
    if plain.as_nanos() == 0 {
        f64::NAN
    } else {
        protected.as_secs_f64() / plain.as_secs_f64()
    }
}

/// Renders both tables in the paper's layout: absolute milliseconds for
/// Table 1, milliseconds with bracketed overhead factors for Table 2.
pub fn render_tables(rows: &[TableRow]) -> String {
    let mut out = String::new();
    out.push_str("Table 1: measured times for plain agents [ms]\n");
    out.push_str(&format!(
        "{:<26} {:>12} {:>12} {:>12} {:>12}\n",
        "", "sign&verify", "cycle", "remainder", "overall"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<26} {:>12.1} {:>12.1} {:>12.1} {:>12.1}\n",
            row.params.label(),
            ms(row.plain.sign_verify),
            ms(row.plain.cycle),
            ms(row.plain.remainder),
            ms(row.plain.overall),
        ));
    }
    out.push('\n');
    out.push_str("Table 2: measured times for protected agents [ms] (factor vs plain)\n");
    out.push_str(&format!(
        "{:<26} {:>18} {:>18} {:>18} {:>18}\n",
        "", "sign&verify", "cycle", "remainder", "overall"
    ));
    for row in rows {
        let cell = |p: Duration, q: Duration| format!("{:.1} ({:.1})", ms(p), factor(p, q));
        out.push_str(&format!(
            "{:<26} {:>18} {:>18} {:>18} {:>18}\n",
            row.params.label(),
            cell(row.protected.sign_verify, row.plain.sign_verify),
            cell(row.protected.cycle, row.plain.cycle),
            cell(row.protected.remainder, row.plain.remainder),
            cell(row.protected.overall, row.plain.overall),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny configuration so the test suite stays fast; the shape
    /// assertions mirror the paper's qualitative findings.
    fn tiny() -> AgentParams {
        AgentParams {
            cycles: 5,
            inputs: 5,
        }
    }

    #[test]
    fn plain_measurement_decomposes() {
        let m = measure_plain(tiny(), &DsaParams::test_group_256(), 7);
        assert!(m.overall >= m.sign_verify);
        assert!(m.overall >= m.cycle);
        assert!(m.overall.as_nanos() > 0);
        assert_eq!(
            m.overall.as_nanos(),
            (m.sign_verify + m.cycle + m.remainder).as_nanos()
        );
    }

    #[test]
    fn protocol_roughly_doubles_computation() {
        // "the computation is roughly doubled" — with one untrusted host
        // in three, the protected run re-executes one session: cycle time
        // grows by about a third, and overall grows but stays within ~3x.
        let params = AgentParams {
            cycles: 200,
            inputs: 1,
        };
        let dsa = DsaParams::test_group_256();
        let plain = measure_plain(params, &dsa, 11);
        let protected = measure_protected(params, &dsa, 11);
        let f = protected.cycle.as_secs_f64() / plain.cycle.as_secs_f64();
        assert!(f > 1.05, "protected must re-execute: factor {f}");
        assert!(
            f < 2.5,
            "only one of three sessions is re-executed: factor {f}"
        );
    }

    #[test]
    fn render_includes_all_rows() {
        let rows = vec![TableRow {
            params: tiny(),
            plain: measure_plain(tiny(), &DsaParams::test_group_256(), 3),
            protected: measure_protected(tiny(), &DsaParams::test_group_256(), 4),
        }];
        let text = render_tables(&rows);
        assert!(text.contains("Table 1"));
        assert!(text.contains("Table 2"));
        assert!(text.contains("5 inputs, 5 cycles"));
        assert!(text.contains('('), "table 2 cells carry factors");
    }
}
