//! Protection-bandwidth ablation: cost of each point on the paper's
//! mechanism scale, on the same honest workload.
//!
//! ```text
//! cargo run -p refstate-bench --release --bin bandwidth -- --cycles 500 --inputs 20
//! ```
//!
//! §4.1 sketches the scale: rules after the task are nearly free but weak;
//! re-execution after every session is strong but "roughly doubles" the
//! computation. This binary quantifies every rung, including the proof
//! mechanism's prove-vs-verify asymmetry.

use std::sync::Arc;
use std::time::{Duration, Instant};

use refstate_bench::{build_generic_agent, build_three_hosts, AgentParams};
use refstate_core::framework::{run_framework_journey, ProtectedAgent, ProtectionConfig};
use refstate_core::protocol::{run_protected_journey, ProtocolConfig};
use refstate_core::rules::{CmpOp, Expr, Pred, RuleSet};
use refstate_core::{CheckMoment, ReExecutionChecker, RuleChecker};
use refstate_crypto::{DsaParams, KeyDirectory};
use refstate_platform::{run_plain_journey, AgentId, EventLog};
use refstate_vm::{DataState, ExecConfig, ScriptedIo, Value};

fn timed(f: impl FnOnce()) -> Duration {
    let t = Instant::now();
    f();
    t.elapsed()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut cycles = 500i64;
    let mut inputs = 20i64;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--cycles" => {
                i += 1;
                cycles = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(cycles);
            }
            "--inputs" => {
                i += 1;
                inputs = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(inputs);
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let params = AgentParams { cycles, inputs };
    let dsa = DsaParams::test_group_256();
    let exec = ExecConfig::default();
    println!(
        "refstate protection-bandwidth ablation — {} (DSA-256 for comparability)\n",
        params.label()
    );

    let mut report: Vec<(String, Duration)> = Vec::new();

    // 0. Unprotected.
    report.push((
        "unprotected".into(),
        timed(|| {
            let mut hosts = build_three_hosts(params, &dsa, 1);
            let log = EventLog::new();
            run_plain_journey(
                &mut hosts,
                "h1",
                build_generic_agent(params),
                &exec,
                &log,
                10,
            )
            .expect("journey");
        }),
    ));

    // 1. Rules, after the task (the lower end of the scale).
    report.push((
        "rules, after task".into(),
        timed(|| {
            let mut hosts = build_three_hosts(params, &dsa, 2);
            let log = EventLog::new();
            let rules = RuleSet::new()
                .rule(
                    "sum-non-negative",
                    Pred::cmp(CmpOp::Ge, Expr::var("sum"), Expr::int(0)),
                )
                .rule(
                    "hop-count",
                    Pred::cmp(CmpOp::Le, Expr::var("hop"), Expr::int(3)),
                );
            let config = ProtectionConfig::new(Arc::new(RuleChecker::new(rules)))
                .moment(CheckMoment::AfterTask);
            run_framework_journey(
                &mut hosts,
                "h1",
                ProtectedAgent::new(build_generic_agent(params), config),
                &log,
            )
            .expect("journey");
        }),
    ));

    // 2. Rules, after every session.
    report.push((
        "rules, after session".into(),
        timed(|| {
            let mut hosts = build_three_hosts(params, &dsa, 3);
            let log = EventLog::new();
            let rules = RuleSet::new().rule(
                "sum-non-negative",
                Pred::cmp(CmpOp::Ge, Expr::var("sum"), Expr::int(0)),
            );
            let config = ProtectionConfig::new(Arc::new(RuleChecker::new(rules)));
            run_framework_journey(
                &mut hosts,
                "h1",
                ProtectedAgent::new(build_generic_agent(params), config),
                &log,
            )
            .expect("journey");
        }),
    ));

    // 3. Re-execution via the generic framework (no signatures).
    report.push((
        "re-execution, after session (unsigned)".into(),
        timed(|| {
            let mut hosts = build_three_hosts(params, &dsa, 4);
            let log = EventLog::new();
            let config = ProtectionConfig::new(Arc::new(ReExecutionChecker::new()));
            run_framework_journey(
                &mut hosts,
                "h1",
                ProtectedAgent::new(build_generic_agent(params), config),
                &log,
            )
            .expect("journey");
        }),
    ));

    // 4. The full §5.1 protocol (signatures + re-execution).
    report.push((
        "session-checking protocol (signed)".into(),
        timed(|| {
            let mut hosts = build_three_hosts(params, &dsa, 5);
            let log = EventLog::new();
            run_protected_journey(
                &mut hosts,
                "h1",
                build_generic_agent(params),
                &ProtocolConfig::default(),
                &log,
            )
            .expect("journey");
        }),
    ));

    // 5. Vigna traces (journey + owner audit).
    report.push((
        "traces + owner audit".into(),
        timed(|| {
            let mut hosts = build_three_hosts(params, &dsa, 6);
            let mut dir = KeyDirectory::new();
            for h in &hosts {
                dir.register(h.id().as_str(), h.public_key().clone());
            }
            let log = EventLog::new();
            let agent = build_generic_agent(params);
            let program = agent.program.clone();
            let journey =
                refstate_mechanisms::run_traced_journey(&mut hosts, "h1", agent, &exec, &log, 10)
                    .expect("journey");
            let report = refstate_mechanisms::audit_journey(&journey, &program, &dir, &exec, &log);
            assert!(report.clean());
        }),
    ));

    // 6. Replication with 3 replicas of every stage.
    report.push((
        "replication x3 (all stages)".into(),
        timed(|| {
            use rand::SeedableRng;
            use refstate_mechanisms::{run_replicated_pipeline, StageSpec};
            use refstate_platform::{Host, HostSpec};
            let mut rng = rand::rngs::StdRng::seed_from_u64(9);
            let mut hosts = Vec::new();
            let mut stages = Vec::new();
            for s in 0..3 {
                let mut ids = Vec::new();
                for r in 0..3 {
                    let id = format!("s{s}r{r}");
                    let mut spec = HostSpec::new(id.as_str());
                    for k in 0..params.inputs {
                        spec = spec.with_input(
                            "elem",
                            refstate_bench::generic_agent::input_element("hx", k),
                        );
                    }
                    hosts.push(Host::new(spec, &dsa, &mut rng));
                    ids.push(id);
                }
                stages.push(StageSpec::new(ids));
            }
            // The generic agent migrates by name; replication drives stages
            // directly, so strip the itinerary by letting the vote carry it.
            let agent = build_generic_agent(params);
            let log = EventLog::new();
            let outcome =
                run_replicated_pipeline(&mut hosts, &stages, agent, &exec, &log).expect("pipeline");
            assert!(outcome.suspects.is_empty());
        }),
    ));

    // 7. Proof verification: prove once, verify with k spot checks.
    {
        let agent_params = AgentParams {
            cycles: cycles.min(50),
            inputs,
        };
        let agent = build_generic_agent(agent_params);
        let mut io = ScriptedIo::new();
        for k in 0..agent_params.inputs {
            io.push_input(
                "elem",
                refstate_bench::generic_agent::input_element("px", k),
            );
        }
        let mut initial = DataState::new();
        initial.set("cycles", Value::Int(agent_params.cycles));
        initial.set("inputs", Value::Int(agent_params.inputs));
        initial.set("hop", Value::Int(2)); // last leg: ends with halt
        let t = Instant::now();
        let prover = refstate_mechanisms::Prover::execute(
            AgentId::new("proved"),
            &agent.program,
            initial,
            &mut io,
            &exec,
        )
        .expect("prove");
        let prove_time = t.elapsed();
        let proof = prover.proof().clone();
        let t = Instant::now();
        refstate_mechanisms::Verifier::new(16)
            .verify(&agent.program, &proof, &prover, &exec)
            .expect("verify");
        let verify_time = t.elapsed();
        report.push((
            format!("proof: prove (n={} steps)", proof.steps),
            prove_time,
        ));
        report.push(("proof: verify (k=16 spot checks)".into(), verify_time));
    }

    let base = report[0].1.as_secs_f64();
    println!("{:<42} {:>12} {:>10}", "mechanism", "time [ms]", "factor");
    for (name, d) in &report {
        println!(
            "{:<42} {:>12.2} {:>10.2}",
            name,
            d.as_secs_f64() * 1e3,
            d.as_secs_f64() / base
        );
    }
}
