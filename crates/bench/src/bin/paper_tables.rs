//! Regenerates the paper's Tables 1 and 2.
//!
//! ```text
//! cargo run -p refstate-bench --release --bin paper_tables
//! cargo run -p refstate-bench --release --bin paper_tables -- --dsa 256 --scale 10
//! ```
//!
//! Flags:
//!
//! * `--dsa {256|512|1024}` — DSA group size (default 512, the paper's).
//! * `--scale N` — divide the heavy cycle count by `N` (default 1; use for
//!   quick runs on slow machines).
//! * `--jit-note` — also print the debug-vs-release analogue of the
//!   paper's JIT remark.

use refstate_bench::{measure_plain, measure_protected, render_tables, AgentParams, TableRow};
use refstate_crypto::DsaParams;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut dsa_bits = 512usize;
    let mut scale = 1i64;
    let mut jit_note = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--dsa" => {
                i += 1;
                dsa_bits = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(512);
            }
            "--scale" => {
                i += 1;
                scale = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(1).max(1);
            }
            "--jit-note" => jit_note = true,
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let dsa = match dsa_bits {
        256 => DsaParams::test_group_256(),
        512 => DsaParams::group_512(),
        1024 => DsaParams::group_1024(),
        other => {
            eprintln!("unsupported DSA size {other}; use 256, 512, or 1024");
            std::process::exit(2);
        }
    };

    println!("refstate paper tables — DSA-{dsa_bits}, cycle scale 1/{scale}");
    println!("(three hosts in one address space, second host untrusted, as in §5.2)\n");

    let configs: Vec<AgentParams> = refstate_bench::PAPER_CONFIGS
        .iter()
        .map(|p| AgentParams {
            cycles: (p.cycles / scale).max(1),
            inputs: p.inputs,
        })
        .collect();

    let rows: Vec<TableRow> = configs
        .iter()
        .map(|&params| {
            eprintln!("measuring {} ...", params.label());
            TableRow {
                params,
                plain: measure_plain(params, &dsa, 0xbe7c),
                protected: measure_protected(params, &dsa, 0xbe7d),
            }
        })
        .collect();

    println!("{}", render_tables(&rows));

    println!(
        "expected shape (paper): overall factors ≈1.3–1.4 for the cycle-heavy rows,\n\
         ≈1.9–2.2 for the input-heavy rows; remainder factor ≈4; sign&verify factor ≈1.1–1.4"
    );

    if jit_note {
        println!(
            "\nJIT remark analogue (§5.3): the paper reports a JIT cuts times by 0.6x (small\n\
             agents) to ~50x (cycle-heavy agents). The corresponding knob here is debug vs\n\
             release builds of the interpreter; run this binary without --release to see\n\
             the interpreted-VM end of that gap."
        );
    }
}
