//! Prints the detection matrix: mechanism × attack → detected?
//!
//! ```text
//! cargo run -p refstate-bench --release --bin detection_matrix
//! ```
//!
//! This is the empirical form of the paper's §4 protection-bandwidth
//! analysis; the expected pattern is documented in EXPERIMENTS.md.

use refstate_mechanisms::matrix::{detection_matrix, render_matrix, standard_scenarios};

fn main() {
    println!("refstate detection matrix (3-host scenario, attack at the untrusted host)\n");
    let cells = detection_matrix();
    println!("{}", render_matrix(&cells));
    println!("legend: DETECTED = the mechanism flagged the manipulated run");
    println!();
    println!("paper-predicted detectability per scenario:");
    for s in standard_scenarios() {
        println!(
            "  {:<20} {}",
            s.label,
            if s.expected_detectable {
                "detectable by reference states"
            } else {
                "outside the reference-state bandwidth (§4.2)"
            }
        );
    }
}
