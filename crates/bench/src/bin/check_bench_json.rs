//! CI gate for the committed perf-trajectory artifacts.
//!
//! Reads `BENCH_fleet.json` and `BENCH_bigint.json` from the workspace
//! root (or the paths given as arguments, in that order), parses them
//! with the in-repo JSON reader, and validates their schemas — so a perf
//! artifact that stops being regenerable, or gets hand-edited into an
//! unparseable state, fails the build instead of rotting silently.
//!
//! ```text
//! cargo run -p refstate-bench --bin check_bench_json
//! cargo run -p refstate-bench --bin check_bench_json -- fleet.json bigint.json
//! ```

use std::process::ExitCode;

use refstate_bench::benchjson::{check_bigint_schema, check_fleet_schema, parse, Json, JsonError};

fn workspace_file(name: &str) -> String {
    format!("{}/../../{name}", env!("CARGO_MANIFEST_DIR"))
}

fn check_one(path: &str, schema: impl Fn(&Json) -> Result<(), JsonError>) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = parse(&text).map_err(|e| format!("{path}: parse error {e}"))?;
    schema(&doc).map_err(|e| format!("{path}: schema violation: {e}"))?;
    println!("ok: {path}");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fleet = args
        .first()
        .cloned()
        .unwrap_or_else(|| workspace_file("BENCH_fleet.json"));
    let bigint = args
        .get(1)
        .cloned()
        .unwrap_or_else(|| workspace_file("BENCH_bigint.json"));

    let mut failed = false;
    for result in [
        check_one(&fleet, check_fleet_schema),
        check_one(&bigint, check_bigint_schema),
    ] {
        if let Err(message) = result {
            eprintln!("FAIL: {message}");
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
