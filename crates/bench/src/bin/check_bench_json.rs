//! CI gate for the committed perf-trajectory artifacts and the fleet
//! CLI's exported telemetry artifacts.
//!
//! With no arguments it reads `BENCH_fleet.json` and `BENCH_bigint.json`
//! from the workspace root (or the paths given positionally, in that
//! order), parses them with the in-repo JSON reader, and validates their
//! schemas — so a perf artifact that stops being regenerable, or gets
//! hand-edited into an unparseable state, fails the build instead of
//! rotting silently.
//!
//! `--trace PATH`, `--metrics PATH`, and `--slo PATH` instead validate a
//! Chrome `trace_event` JSON file (as written by `fleet --trace-out`), a
//! metrics JSONL stream (`fleet --metrics-out`), and a
//! `refstate-soak-slo-v1` soak artifact (`serve --soak --slo-out`); when
//! any of these flags is given, only the named artifacts are checked.
//!
//! ```text
//! cargo run -p refstate-bench --bin check_bench_json
//! cargo run -p refstate-bench --bin check_bench_json -- fleet.json bigint.json
//! cargo run -p refstate-bench --bin check_bench_json -- \
//!     --trace trace.json --metrics metrics.jsonl
//! cargo run -p refstate-bench --bin check_bench_json -- --slo slo.json
//! ```

use std::process::ExitCode;

use refstate_bench::benchjson::{
    check_bigint_schema, check_chrome_trace, check_fleet_schema, check_metrics_jsonl,
    check_slo_schema, parse, Json, JsonError,
};

fn workspace_file(name: &str) -> String {
    format!("{}/../../{name}", env!("CARGO_MANIFEST_DIR"))
}

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))
}

fn check_one(path: &str, schema: impl Fn(&Json) -> Result<(), JsonError>) -> Result<(), String> {
    let text = read(path)?;
    let doc = parse(&text).map_err(|e| format!("{path}: parse error {e}"))?;
    schema(&doc).map_err(|e| format!("{path}: schema violation: {e}"))?;
    println!("ok: {path}");
    Ok(())
}

fn usage() -> ! {
    eprintln!(
        "usage: check_bench_json [FLEET_JSON [BIGINT_JSON]] \
         [--trace TRACE_JSON] [--metrics METRICS_JSONL] [--slo SLO_JSON]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional: Vec<String> = Vec::new();
    let mut trace: Option<String> = None;
    let mut metrics: Option<String> = None;
    let mut slo: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--trace" => {
                i += 1;
                trace = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--metrics" => {
                i += 1;
                metrics = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--slo" => {
                i += 1;
                slo = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--help" | "-h" => usage(),
            flag if flag.starts_with("--") => usage(),
            path => positional.push(path.to_owned()),
        }
        i += 1;
    }

    let mut checks: Vec<Result<(), String>> = Vec::new();
    if let Some(path) = &trace {
        checks.push(check_one(path, check_chrome_trace));
    }
    if let Some(path) = &metrics {
        checks.push(read(path).and_then(|text| {
            check_metrics_jsonl(&text).map_err(|e| format!("{path}: schema violation: {e}"))?;
            println!("ok: {path}");
            Ok(())
        }));
    }
    if let Some(path) = &slo {
        checks.push(check_one(path, check_slo_schema));
    }
    if trace.is_none() && metrics.is_none() && slo.is_none() {
        let fleet = positional
            .first()
            .cloned()
            .unwrap_or_else(|| workspace_file("BENCH_fleet.json"));
        let bigint = positional
            .get(1)
            .cloned()
            .unwrap_or_else(|| workspace_file("BENCH_bigint.json"));
        checks.push(check_one(&fleet, check_fleet_schema));
        checks.push(check_one(&bigint, check_bigint_schema));
    }

    let mut failed = false;
    for result in checks {
        if let Err(message) = result {
            eprintln!("FAIL: {message}");
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
