//! Benchmark harness for the paper's evaluation (§5.2–§5.3).
//!
//! The measured workload is the paper's *generic agent*: it migrates along
//! three hosts (trusted → untrusted → trusted); on every host it performs
//! `cycles` summation cycles (one cycle = an integer summation of 1000
//! values) and consumes `inputs` input elements of 10-byte strings. The
//! four measured instances combine `cycles ∈ {1, 10000}` with
//! `inputs ∈ {1, 100}`.
//!
//! Each instance runs twice:
//!
//! * **plain** — no protocol, but the whole agent is signed before every
//!   migration and verified on arrival (Table 1),
//! * **protected** — under the §5.1 session-checking protocol (Table 2),
//!   where the next host re-executes the untrusted session, so the main
//!   routine runs four times instead of three.
//!
//! [`measure_plain`] / [`measure_protected`] return the same cost
//! decomposition the paper reports: *sign & verify*, *cycle* (VM work),
//! *remainder*, and *overall*, and [`render_tables`] prints the two tables
//! with the overhead factors in brackets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod benchjson;
pub mod generic_agent;
pub mod tables;

pub use benchjson::{check_bigint_schema, check_fleet_schema, Json, JsonError};
pub use generic_agent::{build_generic_agent, build_three_hosts, AgentParams};
pub use tables::{
    measure_plain, measure_protected, render_tables, Measurement, TableRow, PAPER_CONFIGS,
};
