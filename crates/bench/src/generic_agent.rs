//! The §5.2 generic measurement agent and its three-host path.

use rand::rngs::StdRng;
use rand::SeedableRng;
use refstate_crypto::DsaParams;
use refstate_platform::{AgentImage, Host, HostSpec};
use refstate_vm::{DataState, ProgramBuilder, Value};

/// Parameters of the generic agent (paper §5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AgentParams {
    /// Number of summation cycles per host; one cycle sums 1000 integers.
    pub cycles: i64,
    /// Number of 10-byte string inputs consumed per host.
    pub inputs: i64,
}

impl AgentParams {
    /// The paper's row label, e.g. `"100 inputs, 10000 cycles"`.
    pub fn label(&self) -> String {
        format!(
            "{} input{}, {} cycle{}",
            self.inputs,
            if self.inputs == 1 { "" } else { "s" },
            self.cycles,
            if self.cycles == 1 { "" } else { "s" },
        )
    }
}

/// Values summed per cycle ("every cycle means an integer summation of
/// 1000 values").
pub const VALUES_PER_CYCLE: i64 = 1000;

/// Builds the generic agent.
///
/// Per session the agent:
///
/// 1. runs `cycles × 1000` integer additions into `sum`,
/// 2. consumes `inputs` 10-byte string inputs tagged `"elem"`, collecting
///    them into `collected` (a list), so input handling has a real state
///    effect,
/// 3. migrates `h1 → h2 → h3`, halting on `h3`.
pub fn build_generic_agent(params: AgentParams) -> AgentImage {
    let mut b = ProgramBuilder::new();

    // --- cycle phase: for c in 0..cycles { for k in 0..1000 { sum += k } }
    b.push(0i64).store("sum");
    b.push(0i64).store("c");
    b.label("cycle_loop");
    b.load("c").load("cycles").ge().jump_if_true("cycles_done");
    b.push(0i64).store("k");
    b.label("inner_loop");
    b.load("k")
        .push(VALUES_PER_CYCLE)
        .ge()
        .jump_if_true("inner_done");
    b.load("sum").load("k").add().store("sum");
    b.load("k").push(1i64).add().store("k");
    b.jump("inner_loop");
    b.label("inner_done");
    b.load("c").push(1i64).add().store("c");
    b.jump("cycle_loop");
    b.label("cycles_done");

    // --- input phase: collect `inputs` 10-byte strings.
    b.list_new().store("collected");
    b.push(0i64).store("i");
    b.label("input_loop");
    b.load("i").load("inputs").ge().jump_if_true("inputs_done");
    b.load("collected")
        .input("elem")
        .list_push()
        .store("collected");
    b.load("i").push(1i64).add().store("i");
    b.jump("input_loop");
    b.label("inputs_done");

    // --- itinerary: hop counter drives h1 -> h2 -> h3 -> halt.
    b.load("hop").push(1i64).add().store("hop");
    b.load("hop").push(1i64).eq().jump_if_true("to_h2");
    b.load("hop").push(2i64).eq().jump_if_true("to_h3");
    b.halt();
    b.label("to_h2");
    b.push("h2").migrate();
    b.label("to_h3");
    b.push("h3").migrate();

    let program = b.build().expect("generic agent assembles");
    let mut state = DataState::new();
    state.set("cycles", Value::Int(params.cycles));
    state.set("inputs", Value::Int(params.inputs));
    state.set("hop", Value::Int(0));
    AgentImage::new("generic", program, state)
}

/// A deterministic 10-byte input element, distinct per position.
pub fn input_element(host: &str, index: i64) -> Value {
    // Exactly 10 bytes, as in the paper.
    let s = format!("{host:.2}-{index:07}");
    debug_assert_eq!(s.len(), 10, "input elements are 10-byte strings");
    Value::Str(s)
}

/// Builds the measurement path: `h1` (trusted) → `h2` (untrusted) →
/// `h3` (trusted), each provisioned with `inputs` elements.
pub fn build_three_hosts(params: AgentParams, dsa: &DsaParams, seed: u64) -> Vec<Host> {
    let mut rng = StdRng::seed_from_u64(seed);
    ["h1", "h2", "h3"]
        .into_iter()
        .enumerate()
        .map(|(i, id)| {
            let mut spec = HostSpec::new(id);
            if id != "h2" {
                spec = spec.trusted();
            }
            for k in 0..params.inputs {
                spec = spec.with_input("elem", input_element(id, k));
            }
            let _ = i;
            Host::new(spec, dsa, &mut rng)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use refstate_platform::{run_plain_journey, EventLog};
    use refstate_vm::ExecConfig;

    #[test]
    fn labels_match_paper_rows() {
        assert_eq!(
            AgentParams {
                cycles: 1,
                inputs: 1
            }
            .label(),
            "1 input, 1 cycle"
        );
        assert_eq!(
            AgentParams {
                cycles: 10000,
                inputs: 100
            }
            .label(),
            "100 inputs, 10000 cycles"
        );
    }

    #[test]
    fn input_elements_are_ten_bytes() {
        for host in ["h1", "h2", "h3"] {
            for k in [0, 7, 99] {
                let v = input_element(host, k);
                assert_eq!(v.as_str().unwrap().len(), 10);
            }
        }
    }

    #[test]
    fn generic_agent_visits_three_hosts_and_computes() {
        let params = AgentParams {
            cycles: 2,
            inputs: 3,
        };
        let agent = build_generic_agent(params);
        let mut hosts = build_three_hosts(params, &DsaParams::test_group_256(), 42);
        let log = EventLog::new();
        let outcome =
            run_plain_journey(&mut hosts, "h1", agent, &ExecConfig::default(), &log, 10).unwrap();
        assert_eq!(outcome.path.len(), 3);
        // sum = cycles' worth of 0+1+...+999 (recomputed each session; the
        // last session's value survives).
        assert_eq!(outcome.final_image.state.get_int("sum"), Some(2 * 499_500));
        // collected holds h3's three inputs (recollected per session).
        let collected = outcome.final_image.state.get("collected").unwrap();
        assert_eq!(collected.as_list().unwrap().len(), 3);
        assert_eq!(outcome.final_image.state.get_int("hop"), Some(3));
    }

    #[test]
    fn cycle_work_scales_with_cycles() {
        let small = build_generic_agent(AgentParams {
            cycles: 1,
            inputs: 1,
        });
        let big = build_generic_agent(AgentParams {
            cycles: 3,
            inputs: 1,
        });
        let mut hosts_small = build_three_hosts(
            AgentParams {
                cycles: 1,
                inputs: 1,
            },
            &DsaParams::test_group_256(),
            1,
        );
        let mut hosts_big = build_three_hosts(
            AgentParams {
                cycles: 3,
                inputs: 1,
            },
            &DsaParams::test_group_256(),
            1,
        );
        let log = EventLog::new();
        let a = run_plain_journey(
            &mut hosts_small,
            "h1",
            small,
            &ExecConfig::default(),
            &log,
            10,
        )
        .unwrap();
        let b =
            run_plain_journey(&mut hosts_big, "h1", big, &ExecConfig::default(), &log, 10).unwrap();
        let steps_a: u64 = a.records.iter().map(|r| r.outcome.steps).sum();
        let steps_b: u64 = b.records.iter().map(|r| r.outcome.steps).sum();
        assert!(
            steps_b > 2 * steps_a,
            "3 cycles must run ~3x the instructions of 1"
        );
    }
}
