//! End-to-end artifact round trip: run a real fleet at `--telemetry
//! full`, export the Chrome trace and metrics JSONL exactly as the fleet
//! CLI does, and validate both through the same parser + schema checks
//! the CI gate (`check_bench_json --trace … --metrics …`) applies.
//!
//! This pins the producer and the validator to each other: an exporter
//! change that breaks Perfetto-loadability, or a schema tightening that
//! rejects real artifacts, fails here instead of in CI archaeology.

use refstate_bench::benchjson::{check_chrome_trace, check_metrics_jsonl, parse, Json};
use refstate_fleet::{run_fleet, FleetConfig, Preset};
use refstate_telemetry as telemetry;

/// One small full-telemetry fleet run, returning the two exported
/// artifact strings `(chrome_trace, metrics_jsonl)`.
fn export_artifacts() -> (String, String) {
    telemetry::set_level(telemetry::TelemetryLevel::Full);
    let config = FleetConfig {
        scenarios: 12,
        workers: 2,
        seed: 42,
        preset: Preset::Mixed,
        key_pool: 4,
        ..FleetConfig::default()
    };
    let run = run_fleet(&config);
    let trace = telemetry::export::chrome_trace_json(&telemetry::drain_trace());
    let metrics = telemetry::export::metrics_jsonl(&run.metrics.clone().unwrap_or_default());
    telemetry::set_level(telemetry::TelemetryLevel::Off);
    (trace, metrics)
}

#[test]
fn exported_artifacts_pass_the_ci_schema_checks() {
    let (trace, metrics) = export_artifacts();

    let doc = parse(&trace).expect("chrome trace parses as JSON");
    check_chrome_trace(&doc).expect("chrome trace passes the CI schema check");
    check_metrics_jsonl(&metrics).expect("metrics JSONL passes the CI schema check");

    // The trace is non-trivial: it contains complete spans from the
    // instrumented layers (pipeline, crypto, vm) attributed to mechanism
    // scopes, not just an empty well-formed array.
    let Json::Arr(events) = &doc else {
        panic!("chrome trace must be a JSON array");
    };
    assert!(
        events.len() > 100,
        "expected a real timeline, got {} events",
        events.len()
    );
    let has = |name: &str| {
        events.iter().any(|e| {
            matches!(e, Json::Obj(fields)
                if matches!(fields.get("name"), Some(Json::Str(s)) if s == name))
        })
    };
    for name in ["journey", "vm.session", "crypto.sign", "verify.session"] {
        assert!(has(name), "trace is missing expected span {name:?}");
    }

    // The metrics stream carries the histograms the per-stage breakdown
    // is derived from.
    for needle in ["verify.cache_hit", "verify.replay", "crypto.verify"] {
        assert!(
            metrics.lines().any(|l| l.contains(needle)),
            "metrics JSONL is missing {needle:?}"
        );
    }
}

#[test]
fn empty_telemetry_exports_are_schema_valid_too() {
    // `--telemetry off` still writes a (degenerate) metrics file when
    // `--metrics-out` is rejected upstream, but the exporters themselves
    // must handle empty inputs: an empty trace is a valid (loadable)
    // Chrome trace and an empty snapshot is a valid JSONL stream.
    let trace = telemetry::export::chrome_trace_json(&[]);
    let doc = parse(&trace).expect("empty chrome trace parses");
    check_chrome_trace(&doc).expect("empty chrome trace is schema-valid");
    let metrics = telemetry::export::metrics_jsonl(&telemetry::MetricsSnapshot::default());
    check_metrics_jsonl(&metrics).expect("empty metrics stream is schema-valid");
}
