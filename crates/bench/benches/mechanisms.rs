//! Criterion benches across the mechanism design space: the per-mechanism
//! journey cost and the proof mechanism's prove/verify asymmetry
//! (verification must stay sublinear in the execution length).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use refstate_bench::{build_generic_agent, build_three_hosts, AgentParams};
use refstate_core::framework::{run_framework_journey, ProtectedAgent, ProtectionConfig};
use refstate_core::protocol::{run_protected_journey, ProtocolConfig};
use refstate_core::ReExecutionChecker;
use refstate_crypto::DsaParams;
use refstate_platform::{run_plain_journey, AgentId, EventLog};
use refstate_vm::{assemble, DataState, ExecConfig, NullIo, Program};

const PARAMS: AgentParams = AgentParams {
    cycles: 20,
    inputs: 10,
};

fn bench_journeys(c: &mut Criterion) {
    let dsa = DsaParams::test_group_256();
    let exec = ExecConfig::default();
    let mut group = c.benchmark_group("journey");
    group.sample_size(20);

    group.bench_function("plain", |b| {
        b.iter(|| {
            let mut hosts = build_three_hosts(PARAMS, &dsa, 1);
            let log = EventLog::new();
            run_plain_journey(
                &mut hosts,
                "h1",
                build_generic_agent(PARAMS),
                &exec,
                &log,
                10,
            )
            .unwrap()
        })
    });
    group.bench_function("framework_reexec", |b| {
        b.iter(|| {
            let mut hosts = build_three_hosts(PARAMS, &dsa, 2);
            let log = EventLog::new();
            let config = ProtectionConfig::new(Arc::new(ReExecutionChecker::new()));
            run_framework_journey(
                &mut hosts,
                "h1",
                ProtectedAgent::new(build_generic_agent(PARAMS), config),
                &log,
            )
            .unwrap()
        })
    });
    group.bench_function("session_protocol", |b| {
        b.iter(|| {
            let mut hosts = build_three_hosts(PARAMS, &dsa, 3);
            let log = EventLog::new();
            run_protected_journey(
                &mut hosts,
                "h1",
                build_generic_agent(PARAMS),
                &ProtocolConfig::default(),
                &log,
            )
            .unwrap()
        })
    });
    group.finish();
}

/// A pure compute program with a tunable step count, for proof scaling.
fn steps_program(iterations: i64) -> Program {
    assemble(&format!(
        r#"
        push 0
        store "x"
    loop:
        load "x"
        push {iterations}
        ge
        jnz done
        load "x"
        push 1
        add
        store "x"
        jump loop
    done:
        halt
    "#
    ))
    .unwrap()
}

fn bench_proof_scaling(c: &mut Criterion) {
    let exec = ExecConfig::default();
    let mut prove_group = c.benchmark_group("proof_prove");
    prove_group.sample_size(10);
    for iters in [50i64, 200, 800] {
        let program = steps_program(iters);
        prove_group.bench_with_input(BenchmarkId::from_parameter(iters), &program, |b, p| {
            b.iter(|| {
                refstate_mechanisms::Prover::execute(
                    AgentId::new("bench"),
                    p,
                    DataState::new(),
                    &mut NullIo,
                    &exec,
                )
                .unwrap()
            })
        });
    }
    prove_group.finish();

    // Verification with fixed k must grow only logarithmically with the
    // transcript length — the sublinear-verification claim.
    let mut verify_group = c.benchmark_group("proof_verify_k16");
    verify_group.sample_size(10);
    for iters in [50i64, 200, 800] {
        let program = steps_program(iters);
        let prover = refstate_mechanisms::Prover::execute(
            AgentId::new("bench"),
            &program,
            DataState::new(),
            &mut NullIo,
            &exec,
        )
        .unwrap();
        let proof = prover.proof().clone();
        verify_group.bench_with_input(
            BenchmarkId::from_parameter(iters),
            &(program, proof, prover),
            |b, (program, proof, prover)| {
                let verifier = refstate_mechanisms::Verifier::new(16);
                b.iter(|| verifier.verify(program, proof, prover, &exec).unwrap())
            },
        );
    }
    verify_group.finish();
}

fn bench_replication_width(c: &mut Criterion) {
    use refstate_mechanisms::{run_replicated_pipeline, StageSpec};
    use refstate_platform::{Host, HostSpec};
    let dsa = DsaParams::test_group_256();
    let exec = ExecConfig::default();
    let mut group = c.benchmark_group("replication_width");
    group.sample_size(10);
    for replicas in [1usize, 3, 5, 7] {
        group.bench_with_input(BenchmarkId::from_parameter(replicas), &replicas, |b, &n| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(n as u64);
                let mut hosts = Vec::new();
                let mut stages = Vec::new();
                for s in 0..3 {
                    let mut ids = Vec::new();
                    for r in 0..n {
                        let id = format!("s{s}r{r}");
                        let mut spec = HostSpec::new(id.as_str());
                        for k in 0..PARAMS.inputs {
                            spec = spec.with_input(
                                "elem",
                                refstate_bench::generic_agent::input_element("hx", k),
                            );
                        }
                        hosts.push(Host::new(spec, &dsa, &mut rng));
                        ids.push(id);
                    }
                    stages.push(StageSpec::new(ids));
                }
                run_replicated_pipeline(
                    &mut hosts,
                    &stages,
                    build_generic_agent(PARAMS),
                    &exec,
                    &EventLog::new(),
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_journeys,
    bench_proof_scaling,
    bench_replication_width
);
criterion_main!(benches);
