//! Criterion benches for the agent VM: raw instruction throughput, the
//! summation-cycle workload, tracing overhead, and replay cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use refstate_vm::{
    assemble, run_session, DataState, ExecConfig, NullIo, ReplayIo, ScriptedIo, TraceMode, Value,
};

fn cycle_program(cycles: i64) -> refstate_vm::Program {
    let src = format!(
        r#"
        push 0
        store "sum"
        push 0
        store "c"
    cycle_loop:
        load "c"
        push {cycles}
        ge
        jnz done
        push 0
        store "k"
    inner:
        load "k"
        push 1000
        ge
        jnz next_cycle
        load "sum"
        load "k"
        add
        store "sum"
        load "k"
        push 1
        add
        store "k"
        jump inner
    next_cycle:
        load "c"
        push 1
        add
        store "c"
        jump cycle_loop
    done:
        halt
    "#
    );
    assemble(&src).expect("cycle program assembles")
}

fn bench_cycles(c: &mut Criterion) {
    let mut group = c.benchmark_group("vm_cycles");
    for cycles in [1i64, 10, 100] {
        let program = cycle_program(cycles);
        // ~8 instructions per summed value.
        group.throughput(Throughput::Elements((cycles * 1000) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(cycles), &program, |b, p| {
            b.iter(|| {
                run_session(p, DataState::new(), &mut NullIo, &ExecConfig::default()).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_trace_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("vm_trace_overhead");
    let program = cycle_program(10);
    for (label, mode) in [
        ("off", TraceMode::Off),
        ("inputs-only", TraceMode::InputsOnly),
        ("full", TraceMode::Full),
    ] {
        let config = ExecConfig {
            trace_mode: mode,
            ..Default::default()
        };
        group.bench_function(label, |b| {
            b.iter(|| run_session(&program, DataState::new(), &mut NullIo, &config).unwrap())
        });
    }
    group.finish();
}

fn bench_replay(c: &mut Criterion) {
    // Replay should cost about the same as a live run — this is the whole
    // premise of the "computation is roughly doubled" analysis.
    let program = assemble(
        r#"
        push 0
        store "i"
        push 0
        store "acc"
    loop:
        load "i"
        push 200
        ge
        jnz done
        input "n"
        load "acc"
        add
        store "acc"
        load "i"
        push 1
        add
        store "i"
        jump loop
    done:
        halt
    "#,
    )
    .unwrap();
    let mut io = ScriptedIo::new();
    for i in 0..200 {
        io.push_input("n", Value::Int(i));
    }
    let original =
        run_session(&program, DataState::new(), &mut io, &ExecConfig::default()).unwrap();

    let mut group = c.benchmark_group("vm_replay");
    group.bench_function("live", |b| {
        b.iter(|| {
            let mut io = ScriptedIo::new();
            for i in 0..200 {
                io.push_input("n", Value::Int(i));
            }
            run_session(&program, DataState::new(), &mut io, &ExecConfig::default()).unwrap()
        })
    });
    group.bench_function("replay", |b| {
        b.iter(|| {
            let mut io = ReplayIo::new(&original.input_log);
            run_session(&program, DataState::new(), &mut io, &ExecConfig::default()).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_cycles, bench_trace_overhead, bench_replay);
criterion_main!(benches);
