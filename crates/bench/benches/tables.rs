//! Criterion form of the paper's Tables 1 and 2: plain vs protected
//! journeys over the four generic-agent configurations.
//!
//! The cycle counts are scaled down (10000 → 200) so criterion's repeated
//! sampling completes in reasonable time; the `paper_tables` binary runs
//! the full-size configuration once. The *shape* — protected/plain factors
//! larger for input-heavy agents, smaller for cycle-heavy agents — is
//! preserved at this scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use refstate_bench::{measure_plain, measure_protected, AgentParams};
use refstate_crypto::DsaParams;

const SCALED_CONFIGS: [AgentParams; 4] = [
    AgentParams {
        cycles: 1,
        inputs: 1,
    },
    AgentParams {
        cycles: 1,
        inputs: 100,
    },
    AgentParams {
        cycles: 200,
        inputs: 1,
    },
    AgentParams {
        cycles: 200,
        inputs: 100,
    },
];

fn bench_table1_plain(c: &mut Criterion) {
    let dsa = DsaParams::group_512();
    let mut group = c.benchmark_group("table1_plain");
    group.sample_size(10);
    for params in SCALED_CONFIGS {
        group.bench_with_input(
            BenchmarkId::from_parameter(params.label().replace(' ', "_")),
            &params,
            |b, &p| b.iter(|| measure_plain(p, &dsa, 0xACE)),
        );
    }
    group.finish();
}

fn bench_table2_protected(c: &mut Criterion) {
    let dsa = DsaParams::group_512();
    let mut group = c.benchmark_group("table2_protected");
    group.sample_size(10);
    for params in SCALED_CONFIGS {
        group.bench_with_input(
            BenchmarkId::from_parameter(params.label().replace(' ', "_")),
            &params,
            |b, &p| b.iter(|| measure_protected(p, &dsa, 0xACF)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_table1_plain, bench_table2_protected);
criterion_main!(benches);
