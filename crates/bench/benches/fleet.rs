//! Fleet throughput: scenarios/second through the scenario engine, per
//! mechanism and for the full matrix.
//!
//! This is the bench trajectory counterpart of the `fleet` CLI's
//! `journeys_per_sec` metric: small fixed fleets, measured hot.
//!
//! Besides the criterion groups, the bench emits a machine-readable
//! `BENCH_fleet.json` (journeys/sec plus p50/p99 latency per mechanism,
//! for the mixed, replicated, chained, and encapsulated presets) so
//! future PRs have a perf trajectory to diff against. Set
//! `BENCH_FLEET_OUT` to change the output path.

use std::sync::Arc;

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use refstate_fleet::{
    run_fleet, FleetConfig, FleetRun, MechanismRegistry, Preset, ProtectionMechanism,
};

const SCENARIOS: u64 = 64;

fn bench_config(
    mechanisms: Vec<Arc<dyn ProtectionMechanism>>,
    preset: Preset,
    workers: usize,
) -> FleetConfig {
    FleetConfig {
        scenarios: SCENARIOS,
        workers,
        seed: 42,
        preset,
        mechanisms,
        key_pool: 16,
        ..FleetConfig::default()
    }
}

fn bench_per_mechanism(c: &mut Criterion) {
    let registry = MechanismRegistry::builtin();
    let mut group = c.benchmark_group("fleet_mechanism");
    group.sample_size(10);
    group.throughput(Throughput::Elements(SCENARIOS));
    for mechanism in registry.iter() {
        // Every mechanism benches on a preset its topology can run.
        let preset = if mechanism.profile().compatible_with_stages(false) {
            Preset::Mixed
        } else {
            Preset::Replicated
        };
        let config = bench_config(vec![mechanism.clone()], preset, 4);
        group.bench_with_input(
            BenchmarkId::from_parameter(mechanism.name()),
            &config,
            |b, config| b.iter(|| run_fleet(config)),
        );
    }
    group.finish();
}

fn bench_worker_scaling(c: &mut Criterion) {
    let registry = MechanismRegistry::builtin();
    let protocol = registry.get("protocol").expect("built in");
    let mut group = c.benchmark_group("fleet_workers");
    group.sample_size(10);
    group.throughput(Throughput::Elements(SCENARIOS));
    for workers in [1usize, 2, 4, 8] {
        let config = bench_config(vec![protocol.clone()], Preset::Mixed, workers);
        group.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &config,
            |b, config| b.iter(|| run_fleet(config)),
        );
    }
    group.finish();
}

/// One calibrated fleet run per preset, serialized as the perf
/// trajectory: journeys/sec and per-mechanism latency percentiles.
fn emit_bench_json() {
    fn run_block(preset: Preset) -> (String, FleetRun) {
        let config = FleetConfig {
            scenarios: 256,
            workers: 4,
            seed: 42,
            preset,
            key_pool: 32,
            ..FleetConfig::default()
        };
        let run = run_fleet(&config);
        (
            format!("\"{}\":{}", preset.name(), run.timing.to_json()),
            run,
        )
    }

    let (mixed, _) = run_block(Preset::Mixed);
    let (replicated, _) = run_block(Preset::Replicated);
    let (chained, _) = run_block(Preset::Chained);
    let (encapsulated, _) = run_block(Preset::Encapsulated);
    let json = format!(
        "{{\"bench\":\"fleet\",\"scenarios\":256,\"seed\":42,{mixed},{replicated},{chained},{encapsulated}}}"
    );

    // Default next to the workspace root (cargo bench runs with the
    // package directory as CWD), so the trajectory file has one home.
    let path = std::env::var("BENCH_FLEET_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fleet.json").to_owned()
    });
    match std::fs::write(&path, format!("{json}\n")) {
        Ok(()) => println!("wrote perf trajectory to {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_per_mechanism, bench_worker_scaling);

fn main() {
    benches();
    emit_bench_json();
}
