//! Fleet throughput: scenarios/second through the scenario engine, per
//! mechanism and for the full matrix.
//!
//! This is the bench trajectory counterpart of the `fleet` CLI's
//! `journeys_per_sec` metric: small fixed fleets, measured hot.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use refstate_fleet::{run_fleet, FleetConfig, FleetMechanism, Preset};

const SCENARIOS: u64 = 64;

fn bench_config(mechanisms: Vec<FleetMechanism>, workers: usize) -> FleetConfig {
    FleetConfig {
        scenarios: SCENARIOS,
        workers,
        seed: 42,
        preset: Preset::Mixed,
        mechanisms,
        key_pool: 16,
        ..FleetConfig::default()
    }
}

fn bench_per_mechanism(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_mechanism");
    group.sample_size(10);
    group.throughput(Throughput::Elements(SCENARIOS));
    for mechanism in FleetMechanism::ALL {
        let config = bench_config(vec![mechanism], 4);
        group.bench_with_input(
            BenchmarkId::from_parameter(mechanism.name()),
            &config,
            |b, config| b.iter(|| run_fleet(config)),
        );
    }
    group.finish();
}

fn bench_worker_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_workers");
    group.sample_size(10);
    group.throughput(Throughput::Elements(SCENARIOS));
    for workers in [1usize, 2, 4, 8] {
        let config = bench_config(vec![FleetMechanism::SessionCheckingProtocol], workers);
        group.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &config,
            |b, config| b.iter(|| run_fleet(config)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_per_mechanism, bench_worker_scaling);
criterion_main!(benches);
