//! Fleet throughput: scenarios/second through the scenario engine, per
//! mechanism and for the full matrix.
//!
//! This is the bench trajectory counterpart of the `fleet` CLI's
//! `journeys_per_sec` metric: small fixed fleets, measured hot.
//!
//! Besides the criterion groups, the bench emits a machine-readable
//! `BENCH_fleet.json` (journeys/sec plus p50/p99 latency and the
//! telemetry per-stage breakdown per mechanism, for the mixed,
//! replicated, chained, encapsulated, cooperating, and adaptive presets
//! — the adaptive block also carries the campaign `adaptation` grades —
//! plus the measured off-vs-full telemetry overhead) so future PRs have
//! a perf trajectory to diff against. Set `BENCH_FLEET_OUT` to change
//! the output path.

use std::sync::Arc;

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use refstate_fleet::{
    run_fleet, FleetConfig, FleetRun, MechanismRegistry, Preset, ProtectionMechanism,
};
use refstate_telemetry as telemetry;

const SCENARIOS: u64 = 64;

fn bench_config(
    mechanisms: Vec<Arc<dyn ProtectionMechanism>>,
    preset: Preset,
    workers: usize,
) -> FleetConfig {
    FleetConfig {
        scenarios: SCENARIOS,
        workers,
        seed: 42,
        preset,
        mechanisms,
        key_pool: 16,
        ..FleetConfig::default()
    }
}

fn bench_per_mechanism(c: &mut Criterion) {
    let registry = MechanismRegistry::builtin();
    let mut group = c.benchmark_group("fleet_mechanism");
    group.sample_size(10);
    group.throughput(Throughput::Elements(SCENARIOS));
    for mechanism in registry.iter() {
        // Every mechanism benches on the preset its topology is made for.
        let preset = match mechanism.profile().topology {
            refstate_fleet::RouteTopology::Linear => Preset::Mixed,
            refstate_fleet::RouteTopology::ReplicatedStages => Preset::Replicated,
            refstate_fleet::RouteTopology::DisjointSets => Preset::Cooperating,
        };
        let config = bench_config(vec![mechanism.clone()], preset, 4);
        group.bench_with_input(
            BenchmarkId::from_parameter(mechanism.name()),
            &config,
            |b, config| b.iter(|| run_fleet(config)),
        );
    }
    group.finish();
}

fn bench_worker_scaling(c: &mut Criterion) {
    let registry = MechanismRegistry::builtin();
    let protocol = registry.get("protocol").expect("built in");
    let mut group = c.benchmark_group("fleet_workers");
    group.sample_size(10);
    group.throughput(Throughput::Elements(SCENARIOS));
    for workers in [1usize, 2, 4, 8] {
        let config = bench_config(vec![protocol.clone()], Preset::Mixed, workers);
        group.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &config,
            |b, config| b.iter(|| run_fleet(config)),
        );
    }
    group.finish();
}

/// One calibrated fleet run per preset, serialized as the perf
/// trajectory: journeys/sec, per-mechanism latency percentiles, and the
/// telemetry per-stage breakdown — plus the measured cost of running
/// with `--telemetry full` versus `off`.
fn emit_bench_json() {
    fn trajectory_config(preset: Preset) -> FleetConfig {
        FleetConfig {
            scenarios: 256,
            workers: 4,
            seed: 42,
            preset,
            key_pool: 32,
            ..FleetConfig::default()
        }
    }

    fn run_block(preset: Preset) -> (String, FleetRun) {
        let run = run_fleet(&trajectory_config(preset));
        // Clear this run's trace timeline so successive blocks never push
        // the collector toward its drop cap.
        let _ = telemetry::drain_trace();
        (
            format!("\"{}\":{}", preset.name(), run.timing.to_json()),
            run,
        )
    }

    /// Best journeys/s for one run at `level` — the comparison takes the
    /// max over interleaved rounds, not the mean, so the off-vs-full
    /// comparison measures the telemetry cost rather than scheduler noise.
    fn one_run_journeys_per_sec(level: telemetry::TelemetryLevel) -> f64 {
        telemetry::set_level(level);
        let run = run_fleet(&trajectory_config(Preset::Mixed));
        let _ = telemetry::drain_trace();
        telemetry::set_level(telemetry::TelemetryLevel::Off);
        run.timing.journeys_per_sec
    }

    // Warm-up + overhead measurement: the same mixed fleet with telemetry
    // off and at full, interleaved round by round.
    let mut off: f64 = 0.0;
    let mut full: f64 = 0.0;
    for _ in 0..5 {
        off = off.max(one_run_journeys_per_sec(telemetry::TelemetryLevel::Off));
        full = full.max(one_run_journeys_per_sec(telemetry::TelemetryLevel::Full));
    }
    let overhead_pct = (1.0 - full / off) * 100.0;
    let overhead = format!(
        "\"telemetry_overhead\":{{\"off_journeys_per_sec\":{off:.6},\
         \"full_journeys_per_sec\":{full:.6},\"overhead_pct\":{overhead_pct:.6}}}"
    );

    // The trajectory blocks themselves run at full telemetry so the
    // per-stage breakdown (cache hit vs replay vs signature verify) is
    // populated; the deterministic report is level-independent.
    telemetry::set_level(telemetry::TelemetryLevel::Full);
    let (mixed, _) = run_block(Preset::Mixed);
    let (replicated, _) = run_block(Preset::Replicated);
    let (chained, _) = run_block(Preset::Chained);
    let (encapsulated, _) = run_block(Preset::Encapsulated);
    let (cooperating, _) = run_block(Preset::Cooperating);
    let (adaptive_timing, adaptive_run) = run_block(Preset::Adaptive);
    telemetry::set_level(telemetry::TelemetryLevel::Off);
    // The adaptive block carries the campaign grades next to its timing:
    // detection latency and detection-under-adaptation become part of
    // the perf trajectory.
    let adaptation = adaptive_run
        .report
        .adaptation
        .as_ref()
        .expect("adaptive fleets always grade campaigns")
        .to_json();
    let adaptive = format!(
        "{},\"adaptation\":{adaptation}}}",
        &adaptive_timing[..adaptive_timing.len() - 1]
    );
    let json = format!(
        "{{\"bench\":\"fleet\",\"scenarios\":256,\"seed\":42,{overhead},{mixed},{replicated},{chained},{encapsulated},{cooperating},{adaptive}}}"
    );

    // Default next to the workspace root (cargo bench runs with the
    // package directory as CWD), so the trajectory file has one home.
    let path = std::env::var("BENCH_FLEET_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fleet.json").to_owned()
    });
    match std::fs::write(&path, format!("{json}\n")) {
        Ok(()) => println!("wrote perf trajectory to {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_per_mechanism, bench_worker_scaling);

fn main() {
    benches();
    emit_bench_json();
}
