//! `bigint` exponentiation micro-bench: schoolbook vs Montgomery vs
//! fixed-base, at the DSA shapes the protocols actually run (the group's
//! prime `p`, exponents below the subgroup order `q`).
//!
//! Besides the criterion groups, the bench emits a machine-readable
//! `BENCH_bigint.json` (ns/op for each path and group size, plus the
//! derived speedups) so the perf trajectory of the arithmetic layer is
//! diffable PR over PR, exactly like `BENCH_fleet.json` is for the fleet
//! engine. Set `BENCH_BIGINT_OUT` to change the output path; set
//! `BENCH_SMOKE=1` (CI) to shrink the measurement to a schema-shaped
//! smoke run.

use std::sync::Arc;
use std::time::Instant;

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use refstate_bigint::{random_in_unit_range, FixedBase, Montgomery, Uint};
use refstate_crypto::DsaParams;

/// One benchmark shape: a named DSA group and a batch of exponents drawn
/// below its `q` (the distribution every signing/verification exponent
/// follows).
struct Shape {
    name: &'static str,
    params: DsaParams,
    exponents: Vec<Uint>,
}

fn shapes() -> Vec<Shape> {
    let mut rng = StdRng::seed_from_u64(0xB16_B00B5);
    [
        ("512", DsaParams::group_512()),
        ("1024", DsaParams::group_1024()),
    ]
    .into_iter()
    .map(|(name, params)| {
        let exponents = (0..8)
            .map(|_| random_in_unit_range(&mut rng, params.q()))
            .collect();
        Shape {
            name,
            params,
            exponents,
        }
    })
    .collect()
}

fn bench_pow_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("bigint_pow");
    for shape in shapes() {
        let p = shape.params.p().clone();
        let g = shape.params.g().clone();
        let e = shape.exponents[0].clone();
        let mont = Montgomery::new(&p).expect("group primes are odd");
        let table = FixedBase::new(Arc::new(mont.clone()), &g, shape.params.q().bit_len());

        group.bench_with_input(
            BenchmarkId::new("schoolbook", shape.name),
            &(&g, &e, &p),
            |b, (g, e, p)| b.iter(|| black_box(g.pow_mod(e, p))),
        );
        group.bench_with_input(
            BenchmarkId::new("montgomery", shape.name),
            &(&g, &e),
            |b, (g, e)| b.iter(|| black_box(mont.pow_mod(g, e))),
        );
        group.bench_with_input(BenchmarkId::new("fixed_base", shape.name), &e, |b, e| {
            b.iter(|| black_box(table.pow_mod(e)))
        });
    }
    group.finish();
}

/// Times `op` over the exponent batch, repeating until `budget_ms` of
/// wall clock is spent, and returns ns per operation.
fn time_ns(exponents: &[Uint], budget_ms: u64, mut op: impl FnMut(&Uint) -> Uint) -> f64 {
    // Warm-up (builds lazy tables outside the measurement).
    black_box(op(&exponents[0]));
    let budget = std::time::Duration::from_millis(budget_ms);
    let started = Instant::now();
    let mut ops = 0u64;
    while started.elapsed() < budget {
        for e in exponents {
            black_box(op(e));
            ops += 1;
        }
    }
    started.elapsed().as_nanos() as f64 / ops as f64
}

/// `BENCH_SMOKE` opts into the bounded CI smoke run; `0`/empty mean off.
fn smoke_mode() -> bool {
    std::env::var("BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// One calibrated measurement per shape and path, serialized as the
/// arithmetic perf trajectory.
fn emit_bench_json() {
    let smoke = smoke_mode();
    let budget_ms = if smoke { 20 } else { 300 };
    let mut cases = Vec::new();
    for shape in shapes() {
        let p = shape.params.p().clone();
        let g = shape.params.g().clone();
        let mont = Montgomery::new(&p).expect("group primes are odd");
        let table = FixedBase::new(Arc::new(mont.clone()), &g, shape.params.q().bit_len());

        let schoolbook = time_ns(&shape.exponents, budget_ms, |e| g.pow_mod(e, &p));
        let montgomery = time_ns(&shape.exponents, budget_ms, |e| mont.pow_mod(&g, e));
        let fixed_base = time_ns(&shape.exponents, budget_ms, |e| table.pow_mod(e));
        println!(
            "bigint_pow/{}: schoolbook {:.0} ns, montgomery {:.0} ns ({:.2}x), fixed_base {:.0} ns ({:.2}x)",
            shape.name,
            schoolbook,
            montgomery,
            schoolbook / montgomery,
            fixed_base,
            schoolbook / fixed_base,
        );
        cases.push(format!(
            "{{\"group\":\"{}\",\"op\":\"pow_mod\",\"schoolbook_ns\":{:.1},\
             \"montgomery_ns\":{:.1},\"fixed_base_ns\":{:.1},\
             \"montgomery_speedup\":{:.2},\"fixed_base_speedup\":{:.2}}}",
            shape.name,
            schoolbook,
            montgomery,
            fixed_base,
            schoolbook / montgomery,
            schoolbook / fixed_base,
        ));
    }
    let json = format!(
        "{{\"bench\":\"bigint\",\"smoke\":{smoke},\"cases\":[{}]}}",
        cases.join(",")
    );

    let path = std::env::var("BENCH_BIGINT_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_bigint.json").to_owned()
    });
    // A smoke run proves the pipeline but must not overwrite the
    // committed trajectory with low-confidence numbers.
    let path = if smoke { format!("{path}.smoke") } else { path };
    match std::fs::write(&path, format!("{json}\n")) {
        Ok(()) => println!("wrote arithmetic perf trajectory to {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_pow_paths);

fn main() {
    // Criterion groups are skipped in smoke mode: the JSON emitter below
    // runs the same three paths with a bounded budget.
    if !smoke_mode() {
        benches();
    }
    emit_bench_json();
}
