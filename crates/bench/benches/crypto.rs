//! Criterion benches for the crypto substrate: hash throughput and DSA
//! sign/verify across the three embedded group sizes (the key-length
//! ablation for the paper's "sign & verify" column).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use refstate_crypto::{sha1, sha256, DsaKeyPair, DsaParams, HmacSha256};

fn bench_hashes(c: &mut Criterion) {
    let mut group = c.benchmark_group("hash");
    for size in [64usize, 1024, 16 * 1024] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("sha256", size), &data, |b, d| {
            b.iter(|| sha256(d))
        });
        group.bench_with_input(BenchmarkId::new("sha1", size), &data, |b, d| {
            b.iter(|| sha1(d))
        });
        group.bench_with_input(BenchmarkId::new("hmac-sha256", size), &data, |b, d| {
            b.iter(|| HmacSha256::mac(b"benchmark-key", d))
        });
    }
    group.finish();
}

fn bench_dsa(c: &mut Criterion) {
    let mut group = c.benchmark_group("dsa");
    group.sample_size(20);
    let message = vec![0x5au8; 512];
    for (bits, params) in [
        (256usize, DsaParams::test_group_256()),
        (512, DsaParams::group_512()),
        (1024, DsaParams::group_1024()),
    ] {
        let mut rng = StdRng::seed_from_u64(bits as u64);
        let keys = DsaKeyPair::generate(&params, &mut rng);
        let sig = keys.sign(&message, &mut rng);
        group.bench_function(BenchmarkId::new("sign", bits), |b| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| keys.sign(&message, &mut rng))
        });
        group.bench_function(BenchmarkId::new("verify", bits), |b| {
            b.iter(|| assert!(keys.public().verify(&message, &sig)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hashes, bench_dsa);
criterion_main!(benches);
