use refstate_telemetry as telemetry;
use std::time::Instant;

fn main() {
    telemetry::set_level(telemetry::TelemetryLevel::Full);
    let n = 1_000_000u64;
    // span cost
    let t = Instant::now();
    for _ in 0..n {
        let _s = telemetry::span("bench.span", "bench");
    }
    telemetry::flush_thread();
    println!(
        "span: {:.0} ns/event",
        t.elapsed().as_nanos() as f64 / n as f64
    );
    let _ = telemetry::drain_trace();
    // instant with 3 string args
    let t = Instant::now();
    for i in 0..n {
        telemetry::instant(
            "bench.instant",
            "bench",
            vec![
                ("a", format!("host-{i}")),
                ("b", "agent".to_string()),
                ("c", i.to_string()),
            ],
        );
    }
    telemetry::flush_thread();
    println!(
        "instant+args: {:.0} ns/event",
        t.elapsed().as_nanos() as f64 / n as f64
    );
    let _ = telemetry::drain_trace();
    // counters-only comparison
    telemetry::set_level(telemetry::TelemetryLevel::Counters);
    let t = Instant::now();
    for _ in 0..n {
        let _s = telemetry::span("bench.span2", "bench");
    }
    println!(
        "span@counters: {:.0} ns/event",
        t.elapsed().as_nanos() as f64 / n as f64
    );
    // off
    telemetry::set_level(telemetry::TelemetryLevel::Off);
    let t = Instant::now();
    for _ in 0..n {
        let _s = telemetry::span("bench.span3", "bench");
    }
    println!(
        "span@off: {:.2} ns/event",
        t.elapsed().as_nanos() as f64 / n as f64
    );
}
