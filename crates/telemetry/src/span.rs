//! Span-based tracing: scoped timers, thread-local ring buffers, and the
//! trace events they produce.
//!
//! The hot path is a single relaxed atomic load when telemetry is off. When
//! tracing is on, completed spans are buffered in a per-thread
//! [`RingBuffer`] (no locks, no contention) and
//! flushed wholesale into the process-wide collector when the buffer fills
//! and when the thread exits.

use std::borrow::Cow;
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use crate::metrics::{FnvBuild, Histogram, MetricKey};
use crate::ring::RingBuffer;

/// Capacity of each thread's trace buffer; a full buffer is flushed into the
/// collector, so wraparound only happens if flushing is impossible.
const THREAD_BUFFER_CAP: usize = 1024;

/// Thread-local metric map key that hashes and compares the `&'static str`
/// *pointers* rather than their contents: the same instrumentation site
/// always passes the same statics, so identity comparison is both correct
/// and far cheaper than hashing string bytes. Distinct literals with equal
/// content (possible across codegen units) at worst produce separate local
/// entries, which the collector's content-keyed merge folds together on
/// flush.
#[derive(Debug, Clone, Copy)]
struct LocalKey(MetricKey);

impl PartialEq for LocalKey {
    fn eq(&self, other: &Self) -> bool {
        self.0.scope.as_ptr() == other.0.scope.as_ptr()
            && self.0.scope.len() == other.0.scope.len()
            && self.0.name.as_ptr() == other.0.name.as_ptr()
            && self.0.name.len() == other.0.name.len()
            && self.0.index == other.0.index
    }
}

impl Eq for LocalKey {}

impl Hash for LocalKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        (self.0.scope.as_ptr() as usize).hash(state);
        (self.0.name.as_ptr() as usize).hash(state);
        self.0.index.hash(state);
    }
}

/// One entry on the shared trace timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Event name (span site or platform event label).
    pub name: Cow<'static, str>,
    /// Category, e.g. `"pipeline"`, `"crypto"`, `"platform"`.
    pub cat: &'static str,
    /// The telemetry scope active when the event was recorded.
    pub scope: &'static str,
    /// Stable per-thread id (1-based, assigned on first use).
    pub tid: u64,
    /// Nanoseconds since the collector epoch.
    pub ts_ns: u64,
    /// `Some(duration)` for a complete span, `None` for an instant event.
    pub dur_ns: Option<u64>,
    /// Extra key/value annotations.
    pub args: Vec<(&'static str, String)>,
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

/// Per-thread telemetry sink: the trace ring plus the thread's metric
/// accumulators. Everything here is thread-private — the hot record path
/// touches no lock; the collector's mutexes are only taken on flush
/// (buffer full, explicit [`flush_thread`], or thread exit).
struct ThreadBuffer {
    ring: RingBuffer<TraceEvent>,
    counters: HashMap<LocalKey, u64, FnvBuild>,
    histograms: HashMap<LocalKey, Histogram, FnvBuild>,
}

impl ThreadBuffer {
    fn new() -> Self {
        Self {
            ring: RingBuffer::with_capacity(THREAD_BUFFER_CAP),
            counters: HashMap::default(),
            histograms: HashMap::default(),
        }
    }

    fn flush(&mut self) {
        let events = self.ring.drain();
        let no_metrics = self.counters.is_empty() && self.histograms.is_empty();
        if events.is_empty() && no_metrics {
            return;
        }
        let collector = crate::collector();
        collector.sink_trace_events(events);
        collector.sink_metrics(
            std::mem::take(&mut self.counters)
                .into_iter()
                .map(|(k, v)| (k.0, v)),
            std::mem::take(&mut self.histograms)
                .into_iter()
                .map(|(k, h)| (k.0, h)),
        );
    }
}

impl Drop for ThreadBuffer {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static SCOPE: Cell<&'static str> = const { Cell::new("") };
    static TID: Cell<u64> = const { Cell::new(0) };
    static BUFFER: RefCell<ThreadBuffer> = RefCell::new(ThreadBuffer::new());
}

/// The telemetry scope currently active on this thread (`""` outside any
/// [`scoped`] guard).
pub fn current_scope() -> &'static str {
    SCOPE.with(|s| s.get())
}

/// This thread's stable trace id (assigned on first use, starting at 1).
pub fn thread_id() -> u64 {
    TID.with(|t| {
        let mut id = t.get();
        if id == 0 {
            id = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            t.set(id);
        }
        id
    })
}

/// Pushes a finished event into this thread's buffer, flushing to the
/// collector when full.
pub(crate) fn push_event(event: TraceEvent) {
    let _ = BUFFER.try_with(|buf| {
        if let Ok(mut buf) = buf.try_borrow_mut() {
            if buf.ring.is_full() {
                let drained = buf.ring.drain();
                crate::collector().sink_trace_events(drained);
            }
            buf.ring.push(event);
        }
    });
}

/// Adds `delta` to this thread's local counter for `key`; falls back to
/// the collector directly if the thread's sink is gone (TLS teardown).
pub(crate) fn local_count(key: MetricKey, delta: u64) {
    let ok = BUFFER.try_with(|buf| {
        if let Ok(mut buf) = buf.try_borrow_mut() {
            *buf.counters.entry(LocalKey(key)).or_insert(0) += delta;
            true
        } else {
            false
        }
    });
    if ok != Ok(true) {
        crate::collector().add_counter(key, delta);
    }
}

/// Records `value` into this thread's local histogram for `key`; falls
/// back to the collector directly if the thread's sink is gone.
pub(crate) fn local_observe(key: MetricKey, value: u64) {
    let ok = BUFFER.try_with(|buf| {
        if let Ok(mut buf) = buf.try_borrow_mut() {
            buf.histograms
                .entry(LocalKey(key))
                .or_default()
                .record(value);
            true
        } else {
            false
        }
    });
    if ok != Ok(true) {
        crate::collector().observe_raw(key, value);
    }
}

/// The span hot path: records the duration histogram observation and (at
/// `Full`) the trace event in a single thread-local pass.
fn finish_span(key: MetricKey, dur_ns: u64, event: Option<TraceEvent>) {
    let mut event = event;
    let ok = BUFFER.try_with(|buf| {
        if let Ok(mut buf) = buf.try_borrow_mut() {
            buf.histograms
                .entry(LocalKey(key))
                .or_default()
                .record(dur_ns);
            if let Some(event) = event.take() {
                if buf.ring.is_full() {
                    let drained = buf.ring.drain();
                    crate::collector().sink_trace_events(drained);
                }
                buf.ring.push(event);
            }
            true
        } else {
            false
        }
    });
    if ok != Ok(true) {
        let collector = crate::collector();
        collector.observe_raw(key, dur_ns);
        if let Some(event) = event {
            collector.sink_trace_events(vec![event]);
        }
    }
}

/// Flushes this thread's buffered trace events and metric accumulators
/// into the collector.
///
/// Worker threads flush automatically on exit; long-lived threads (e.g. the
/// main thread) should call this before exporting a trace. Taking a
/// [`snapshot`](crate::snapshot) flushes the calling thread implicitly.
pub fn flush_thread() {
    let _ = BUFFER.try_with(|buf| {
        if let Ok(mut buf) = buf.try_borrow_mut() {
            buf.flush();
        }
    });
}

/// Sets the thread's telemetry scope for the guard's lifetime.
///
/// The scope labels every histogram, counter, and trace event recorded on
/// this thread — the fleet engine scopes each journey by mechanism name so
/// nested crypto/VM/pipeline measurements attribute to the mechanism that
/// triggered them. Guards nest; dropping restores the previous scope.
pub fn scoped(scope: &'static str) -> ScopeGuard {
    let prev = SCOPE.with(|s| s.replace(scope));
    ScopeGuard { prev }
}

/// RAII guard restoring the previous telemetry scope on drop.
#[derive(Debug)]
pub struct ScopeGuard {
    prev: &'static str,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        SCOPE.with(|s| s.set(self.prev));
    }
}

/// A started-but-unnamed measurement: decide the metric name at the end.
///
/// This is the primitive under [`Span`]; use it directly where the outcome
/// determines the name (e.g. a cache probe that is only known to be a hit or
/// a miss afterwards). Disabled telemetry makes `start` return an inert
/// timer whose `finish` does nothing and costs one atomic load.
#[derive(Debug)]
#[must_use = "a timer measures nothing unless finished"]
pub struct Timer {
    started: Option<Instant>,
}

impl Timer {
    /// Starts a measurement if telemetry is enabled.
    #[inline]
    pub fn start() -> Self {
        Self {
            started: crate::enabled().then(Instant::now),
        }
    }

    /// An inert timer that records nothing when finished.
    pub fn disabled() -> Self {
        Self { started: None }
    }

    /// Returns `true` if the timer is actually measuring.
    pub fn is_active(&self) -> bool {
        self.started.is_some()
    }

    /// Stops the measurement, recording a duration histogram observation
    /// (nanoseconds) under the current scope and, at the `Full` level, a
    /// complete trace event. Returns the measured duration (zero if the
    /// timer was inert).
    pub fn finish(self, name: &'static str, cat: &'static str) -> Duration {
        let Some(started) = self.started else {
            return Duration::ZERO;
        };
        let dur = started.elapsed();
        let dur_ns = dur.as_nanos() as u64;
        let scope = current_scope();
        let key = MetricKey {
            scope,
            name,
            index: 0,
        };
        let event = crate::tracing_enabled().then(|| {
            let ts_ns = started
                .saturating_duration_since(crate::collector().epoch())
                .as_nanos() as u64;
            TraceEvent {
                name: Cow::Borrowed(name),
                cat,
                scope,
                tid: thread_id(),
                ts_ns,
                dur_ns: Some(dur_ns),
                args: Vec::new(),
            }
        });
        finish_span(key, dur_ns, event);
        dur
    }

    /// Like [`Timer::finish`] but discards the measurement entirely.
    pub fn cancel(mut self) {
        self.started = None;
    }
}

/// An RAII span: measures from construction to drop.
///
/// On drop it records a duration histogram observation named after the span
/// (nanoseconds, under the current scope) and — at the `Full` level — a
/// complete Chrome-trace event.
#[derive(Debug)]
pub struct Span {
    timer: Option<(Instant, &'static str, &'static str)>,
}

impl Span {
    /// Opens a span named `name` in category `cat`.
    ///
    /// When telemetry is off this is one relaxed atomic load and the guard
    /// is inert.
    #[inline]
    pub fn enter(name: &'static str, cat: &'static str) -> Self {
        Self {
            timer: crate::enabled().then(|| (Instant::now(), name, cat)),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((started, name, cat)) = self.timer.take() {
            Timer {
                started: Some(started),
            }
            .finish(name, cat);
        }
    }
}

/// Records an instant event (Chrome-trace `ph:"i"`) on the shared timeline.
///
/// No-op below the `Full` level. `args` become the event's annotation map.
pub fn instant(
    name: impl Into<Cow<'static, str>>,
    cat: &'static str,
    args: Vec<(&'static str, String)>,
) {
    if !crate::tracing_enabled() {
        return;
    }
    let collector = crate::collector();
    let ts_ns = Instant::now()
        .saturating_duration_since(collector.epoch())
        .as_nanos() as u64;
    push_event(TraceEvent {
        name: name.into(),
        cat,
        scope: current_scope(),
        tid: thread_id(),
        ts_ns,
        dur_ns: None,
        args,
    });
}
