//! # refstate-telemetry — hand-rolled tracing and metrics
//!
//! A zero-external-dependency observability layer for the refstate
//! workspace: span-based tracing into per-thread ring buffers, named
//! counters and log-linear histograms with a snapshot API, and exporters
//! for Chrome `trace_event` JSON (Perfetto / `chrome://tracing` loadable)
//! and a metrics JSONL stream.
//!
//! ## Determinism contract
//!
//! Telemetry is strictly *observational*: nothing read from the collector
//! may feed back into report content. The fleet engine's deterministic
//! `FleetReport` stays byte-for-byte identical at every telemetry level;
//! only the non-deterministic timing sidecar (`FleetTiming`) and the
//! exported artifacts carry telemetry data.
//!
//! ## Levels
//!
//! * [`TelemetryLevel::Off`] — every instrumentation site reduces to one
//!   relaxed atomic load.
//! * [`TelemetryLevel::Counters`] — counters and duration histograms are
//!   recorded; no trace events.
//! * [`TelemetryLevel::Full`] — counters plus the trace timeline (spans and
//!   instants) buffered per-thread and flushed into the collector.
//!
//! ## Example
//!
//! ```
//! use refstate_telemetry as telemetry;
//!
//! telemetry::set_level(telemetry::TelemetryLevel::Full);
//! {
//!     let _scope = telemetry::scoped("protocol");
//!     let _span = telemetry::span("verify.replay", "pipeline");
//!     telemetry::count("pipeline.cache_miss", 1);
//! } // span records on drop
//! telemetry::flush_thread();
//!
//! let snap = telemetry::snapshot();
//! assert_eq!(snap.counter("protocol", "pipeline.cache_miss"), 1);
//! let trace = telemetry::drain_trace();
//! assert!(trace.iter().any(|e| e.name == "verify.replay"));
//! telemetry::set_level(telemetry::TelemetryLevel::Off);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod metrics;
pub mod ring;
pub mod span;

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

pub use metrics::{Histogram, HistogramSnapshot, MetricKey, MetricsSnapshot};
pub use span::{
    current_scope, flush_thread, instant, scoped, thread_id, ScopeGuard, Span, Timer, TraceEvent,
};

/// How much the telemetry layer records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[repr(u8)]
pub enum TelemetryLevel {
    /// Nothing is recorded; instrumentation sites cost one atomic load.
    #[default]
    Off = 0,
    /// Counters and histograms only.
    Counters = 1,
    /// Counters, histograms, and the trace event timeline.
    Full = 2,
}

impl TelemetryLevel {
    /// Parses `"off"`, `"counters"`, or `"full"` (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "off" => Some(Self::Off),
            "counters" => Some(Self::Counters),
            "full" => Some(Self::Full),
            _ => None,
        }
    }

    /// The canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Self::Off => "off",
            Self::Counters => "counters",
            Self::Full => "full",
        }
    }
}

static LEVEL: AtomicU8 = AtomicU8::new(0);

/// Sets the process-wide telemetry level.
///
/// Also initialises the collector (and its timestamp epoch) so that spans
/// started immediately afterwards get meaningful timeline positions.
pub fn set_level(level: TelemetryLevel) {
    if level != TelemetryLevel::Off {
        let _ = collector();
    }
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current process-wide telemetry level.
pub fn level() -> TelemetryLevel {
    match LEVEL.load(Ordering::Relaxed) {
        1 => TelemetryLevel::Counters,
        2 => TelemetryLevel::Full,
        _ => TelemetryLevel::Off,
    }
}

/// `true` when counters/histograms are being recorded (`Counters` or
/// `Full`). This is the once-per-site static flag check: one relaxed load.
#[inline]
pub fn enabled() -> bool {
    LEVEL.load(Ordering::Relaxed) != 0
}

/// `true` when the trace timeline is being recorded (`Full` only).
#[inline]
pub fn tracing_enabled() -> bool {
    LEVEL.load(Ordering::Relaxed) == TelemetryLevel::Full as u8
}

/// Default cap on buffered trace events before the collector starts
/// dropping (and counting) new ones.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 20;

struct MetricsInner {
    counters: BTreeMap<MetricKey, u64>,
    histograms: BTreeMap<MetricKey, Histogram>,
}

/// Flushed thread buffers land here as whole segments — one `Vec` move per
/// flush, no per-event copying under the lock — and are only flattened
/// (and timestamp-sorted) on drain.
#[derive(Default)]
struct TraceSink {
    segments: Vec<Vec<TraceEvent>>,
    len: usize,
}

/// The process-wide sink for metrics and trace events.
///
/// One collector exists per process (see [`collector`]); its creation
/// instant is the epoch all trace timestamps are measured from.
pub struct Collector {
    epoch: Instant,
    metrics: Mutex<MetricsInner>,
    trace: Mutex<TraceSink>,
    trace_capacity: AtomicUsize,
    trace_dropped: AtomicU64,
}

impl Collector {
    fn new() -> Self {
        Self {
            epoch: Instant::now(),
            metrics: Mutex::new(MetricsInner {
                counters: BTreeMap::new(),
                histograms: BTreeMap::new(),
            }),
            trace: Mutex::new(TraceSink::default()),
            trace_capacity: AtomicUsize::new(DEFAULT_TRACE_CAPACITY),
            trace_dropped: AtomicU64::new(0),
        }
    }

    /// The instant trace timestamps are measured from.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    pub(crate) fn add_counter(&self, key: MetricKey, delta: u64) {
        let mut inner = self.metrics.lock();
        *inner.counters.entry(key).or_insert(0) += delta;
    }

    pub(crate) fn observe_raw(&self, key: MetricKey, value: u64) {
        let mut inner = self.metrics.lock();
        inner.histograms.entry(key).or_default().record(value);
    }

    /// Merges a thread's accumulated metrics in one lock acquisition.
    pub(crate) fn sink_metrics(
        &self,
        counters: impl IntoIterator<Item = (MetricKey, u64)>,
        histograms: impl IntoIterator<Item = (MetricKey, Histogram)>,
    ) {
        let mut inner = self.metrics.lock();
        for (key, delta) in counters {
            *inner.counters.entry(key).or_insert(0) += delta;
        }
        for (key, hist) in histograms {
            inner.histograms.entry(key).or_default().merge(&hist);
        }
    }

    pub(crate) fn sink_trace_events(&self, mut events: Vec<TraceEvent>) {
        if events.is_empty() {
            return;
        }
        let capacity = self.trace_capacity.load(Ordering::Relaxed);
        let mut sink = self.trace.lock();
        let room = capacity.saturating_sub(sink.len);
        if events.len() > room {
            self.trace_dropped
                .fetch_add((events.len() - room) as u64, Ordering::Relaxed);
            events.truncate(room);
        }
        if !events.is_empty() {
            sink.len += events.len();
            sink.segments.push(events);
        }
    }

    /// A point-in-time copy of every counter and histogram.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.metrics.lock();
        MetricsSnapshot {
            counters: inner.counters.clone(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, h)| (*k, h.snapshot()))
                .collect(),
        }
    }

    /// Removes and returns all collected trace events, ordered by
    /// timestamp. Call [`flush_thread`] on long-lived threads first.
    pub fn drain_trace(&self) -> Vec<TraceEvent> {
        let segments = {
            let mut sink = self.trace.lock();
            sink.len = 0;
            std::mem::take(&mut sink.segments)
        };
        let mut events: Vec<TraceEvent> = segments.into_iter().flatten().collect();
        events.sort_by_key(|e| (e.ts_ns, e.tid));
        events
    }

    /// How many trace events were dropped at the collector cap.
    pub fn trace_dropped(&self) -> u64 {
        self.trace_dropped.load(Ordering::Relaxed)
    }

    /// Changes the cap on buffered trace events.
    pub fn set_trace_capacity(&self, capacity: usize) {
        self.trace_capacity.store(capacity, Ordering::Relaxed);
    }
}

static COLLECTOR: OnceLock<Collector> = OnceLock::new();

/// The process-wide collector (created on first use).
pub fn collector() -> &'static Collector {
    COLLECTOR.get_or_init(Collector::new)
}

/// Opens an RAII span named `name` in category `cat`; see [`Span::enter`].
#[inline]
pub fn span(name: &'static str, cat: &'static str) -> Span {
    Span::enter(name, cat)
}

/// Adds `delta` to the counter `name` under the current scope.
///
/// Recording is thread-local (no lock); the value reaches the collector
/// when the thread's buffer flushes — see [`flush_thread`].
#[inline]
pub fn count(name: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    span::local_count(
        MetricKey {
            scope: current_scope(),
            name,
            index: 0,
        },
        delta,
    );
}

/// Adds `delta` to the counter `name` under an explicit `scope` instead of
/// the thread's current one — for batched counters flushed after the scope
/// that produced them has already been exited.
#[inline]
pub fn count_in_scope(scope: &'static str, name: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    span::local_count(
        MetricKey {
            scope,
            name,
            index: 0,
        },
        delta,
    );
}

/// Adds `delta` to an indexed counter series (e.g. per-worker counters).
#[inline]
pub fn count_indexed(name: &'static str, index: u32, delta: u64) {
    if !enabled() {
        return;
    }
    span::local_count(
        MetricKey {
            scope: current_scope(),
            name,
            index,
        },
        delta,
    );
}

/// Records `value` into the histogram `name` under the current scope.
///
/// Recording is thread-local (no lock); the value reaches the collector
/// when the thread's buffer flushes — see [`flush_thread`].
#[inline]
pub fn observe(name: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    span::local_observe(
        MetricKey {
            scope: current_scope(),
            name,
            index: 0,
        },
        value,
    );
}

/// Records a duration (as nanoseconds) into the histogram `name` under the
/// current scope. Duration-valued histograms store nanoseconds by
/// convention; exporters and the fleet report convert to microseconds.
#[inline]
pub fn observe_duration(name: &'static str, duration: Duration) {
    observe(name, duration.as_nanos() as u64);
}

/// A point-in-time copy of every counter and histogram in the collector.
///
/// Flushes the calling thread's buffered metrics first; other threads'
/// buffers flush when they fill or when those threads exit (the fleet
/// engine joins its workers before snapshotting).
pub fn snapshot() -> MetricsSnapshot {
    flush_thread();
    collector().snapshot()
}

/// Flushes this thread's span buffer, then removes and returns the full
/// trace timeline collected so far (sorted by timestamp).
pub fn drain_trace() -> Vec<TraceEvent> {
    flush_thread();
    collector().drain_trace()
}

#[cfg(test)]
mod tests {
    use super::*;

    // The level flag and collector are process-global, and the default test
    // harness runs #[test] fns on parallel threads — so everything that
    // toggles the level lives in this one serialized test.
    #[test]
    fn end_to_end_levels_scopes_spans_and_exports() {
        // Off: nothing records.
        set_level(TelemetryLevel::Off);
        let base = snapshot();
        count("lib_test.counter", 3);
        observe("lib_test.histo", 42);
        let t = Timer::start();
        assert!(!t.is_active());
        assert_eq!(t.finish("lib_test.timer", "test"), Duration::ZERO);
        let after_off = snapshot();
        assert_eq!(after_off.delta_since(&base), MetricsSnapshot::default());

        // Counters: metrics yes, trace no.
        set_level(TelemetryLevel::Counters);
        let before = snapshot();
        count("lib_test.counter", 3);
        count_indexed("lib_test.per_worker", 2, 5);
        {
            let _scope = scoped("mech_a");
            assert_eq!(current_scope(), "mech_a");
            {
                let _inner = scoped("mech_b");
                assert_eq!(current_scope(), "mech_b");
            }
            assert_eq!(current_scope(), "mech_a");
            let _span = span("lib_test.span", "test");
        }
        assert_eq!(current_scope(), "");
        instant("lib_test.instant", "test", vec![]);
        flush_thread();
        let delta = snapshot().delta_since(&before);
        assert_eq!(delta.counter("", "lib_test.counter"), 3);
        assert_eq!(
            delta.counters.get(&MetricKey {
                scope: "",
                name: "lib_test.per_worker",
                index: 2
            }),
            Some(&5)
        );
        let hist = delta
            .histogram("mech_a", "lib_test.span")
            .expect("span histogram");
        assert_eq!(hist.count, 1);
        assert!(drain_trace()
            .iter()
            .all(|e| !e.name.starts_with("lib_test")));

        // Full: trace events flow, scoped and timestamp-ordered.
        set_level(TelemetryLevel::Full);
        {
            let _scope = scoped("mech_c");
            let _span = span("lib_test.traced", "test");
            std::thread::sleep(Duration::from_millis(1));
        }
        instant("lib_test.mark", "test", vec![("k", "v".into())]);
        let trace = drain_trace();
        let span_ev = trace
            .iter()
            .find(|e| e.name == "lib_test.traced")
            .expect("span event");
        assert_eq!(span_ev.scope, "mech_c");
        assert!(span_ev.dur_ns.unwrap() >= 1_000_000);
        let mark = trace
            .iter()
            .find(|e| e.name == "lib_test.mark")
            .expect("instant");
        assert!(mark.dur_ns.is_none());
        assert_eq!(mark.args, vec![("k", "v".to_string())]);
        assert!(trace.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));

        // Worker threads flush on exit and get distinct tids.
        let main_tid = thread_id();
        std::thread::spawn(|| {
            let _span = span("lib_test.worker_span", "test");
        })
        .join()
        .unwrap();
        let trace = drain_trace();
        let worker = trace
            .iter()
            .find(|e| e.name == "lib_test.worker_span")
            .expect("worker span flushed on thread exit");
        assert_ne!(worker.tid, main_tid);

        // Collector cap drops and counts overflow.
        let dropped_before = collector().trace_dropped();
        collector().set_trace_capacity(2);
        for _ in 0..8 {
            instant("lib_test.flood", "test", vec![]);
        }
        let flooded = drain_trace();
        assert!(flooded.len() <= 2);
        assert!(collector().trace_dropped() > dropped_before);
        collector().set_trace_capacity(DEFAULT_TRACE_CAPACITY);

        set_level(TelemetryLevel::Off);
        assert_eq!(level(), TelemetryLevel::Off);
    }

    #[test]
    fn level_parse_round_trips() {
        for l in [
            TelemetryLevel::Off,
            TelemetryLevel::Counters,
            TelemetryLevel::Full,
        ] {
            assert_eq!(TelemetryLevel::parse(l.name()), Some(l));
        }
        assert_eq!(TelemetryLevel::parse("FULL"), Some(TelemetryLevel::Full));
        assert_eq!(TelemetryLevel::parse("bogus"), None);
    }
}
