//! A fixed-capacity overwrite-oldest ring buffer.
//!
//! Each tracing thread owns one of these privately (no locking on the push
//! path); when the buffer fills it is flushed wholesale into the process-wide
//! [`Collector`](crate::Collector). The overwrite semantics only matter if a
//! flush sink is unavailable, but they are part of the data structure's
//! contract and are tested independently.

/// A bounded FIFO that overwrites its oldest element when full.
#[derive(Debug)]
pub struct RingBuffer<T> {
    slots: Vec<Option<T>>,
    head: usize,
    len: usize,
    dropped: u64,
}

impl<T> RingBuffer<T> {
    /// Creates a ring buffer holding at most `capacity` elements.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "ring buffer capacity must be non-zero");
        let mut slots = Vec::with_capacity(capacity);
        slots.resize_with(capacity, || None);
        Self {
            slots,
            head: 0,
            len: 0,
            dropped: 0,
        }
    }

    /// Appends an element. If the buffer is full, the oldest element is
    /// overwritten and returned, and the dropped counter is bumped.
    pub fn push(&mut self, item: T) -> Option<T> {
        let capacity = self.slots.len();
        if self.len < capacity {
            let idx = (self.head + self.len) % capacity;
            self.slots[idx] = Some(item);
            self.len += 1;
            None
        } else {
            let old = self.slots[self.head].replace(item);
            self.head = (self.head + 1) % capacity;
            self.dropped += 1;
            old
        }
    }

    /// Removes and returns all buffered elements in insertion order.
    pub fn drain(&mut self) -> Vec<T> {
        let capacity = self.slots.len();
        let mut out = Vec::with_capacity(self.len);
        for i in 0..self.len {
            let idx = (self.head + i) % capacity;
            if let Some(item) = self.slots[idx].take() {
                out.push(item);
            }
        }
        self.head = 0;
        self.len = 0;
        out
    }

    /// The number of buffered elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns `true` when the next push would overwrite the oldest element.
    pub fn is_full(&self) -> bool {
        self.len == self.slots.len()
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// How many elements have been overwritten since creation.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_then_wraps_overwriting_oldest() {
        let mut ring = RingBuffer::with_capacity(3);
        assert!(ring.is_empty());
        assert_eq!(ring.push(1), None);
        assert_eq!(ring.push(2), None);
        assert_eq!(ring.push(3), None);
        assert!(ring.is_full());
        // Fourth push evicts the oldest (1).
        assert_eq!(ring.push(4), Some(1));
        assert_eq!(ring.push(5), Some(2));
        assert_eq!(ring.dropped(), 2);
        assert_eq!(ring.drain(), vec![3, 4, 5]);
        assert!(ring.is_empty());
    }

    #[test]
    fn drain_preserves_insertion_order_across_wrap() {
        let mut ring = RingBuffer::with_capacity(4);
        for i in 0..11 {
            ring.push(i);
        }
        // Capacity 4, pushed 0..=10: the last four survive, in order.
        assert_eq!(ring.drain(), vec![7, 8, 9, 10]);
        assert_eq!(ring.dropped(), 7);
        // Reusable after a drain.
        ring.push(42);
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.drain(), vec![42]);
    }

    #[test]
    fn capacity_one_always_keeps_latest() {
        let mut ring = RingBuffer::with_capacity(1);
        assert_eq!(ring.push("a"), None);
        assert_eq!(ring.push("b"), Some("a"));
        assert_eq!(ring.push("c"), Some("b"));
        assert_eq!(ring.drain(), vec!["c"]);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_rejected() {
        let _ = RingBuffer::<u8>::with_capacity(0);
    }
}
